//! Training and evaluation driver for TSPN-RA.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tspn_data::Sample;
use tspn_tensor::{optim, Tensor};

use crate::config::TspnConfig;
use crate::context::SpatialContext;
use crate::model::TspnRa;

/// Outcome of evaluating one sample.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// 0-based rank of the true POI in `R_P`; `None` when tile selection
    /// filtered it out (scored as `|R_P| + 1` per the paper's objective).
    pub rank: Option<usize>,
    /// Length of the returned ranking.
    pub num_ranked: usize,
    /// 0-based rank of the true tile in `R_T` (two-step mode only).
    pub tile_rank: Option<usize>,
    /// Number of POI candidates after tile filtering.
    pub candidate_count: usize,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub mean_loss: f32,
    /// Wall-clock seconds spent in the epoch.
    pub seconds: f64,
}

/// Owns the model, the spatial context and the optimizer state.
pub struct Trainer {
    /// The model under training.
    pub model: TspnRa,
    /// The prepared spatial context.
    pub ctx: SpatialContext,
    opt: optim::Adam,
    rng: StdRng,
}

impl Trainer {
    /// Builds context-bound trainer with a fresh model.
    pub fn new(config: TspnConfig, ctx: SpatialContext) -> Self {
        let opt = optim::Adam::new(config.lr);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7EA1);
        let model = TspnRa::new(config, &ctx);
        Trainer {
            model,
            ctx,
            opt,
            rng,
        }
    }

    /// Trains for the configured number of epochs, returning per-epoch stats.
    pub fn fit(&mut self, train: &[Sample]) -> Vec<EpochStats> {
        let epochs = self.model.config.epochs;
        self.fit_epochs(train, epochs)
    }

    /// Trains for an explicit number of epochs.
    pub fn fit_epochs(&mut self, train: &[Sample], epochs: usize) -> Vec<EpochStats> {
        let mut stats = Vec::with_capacity(epochs);
        let params = self.model.params();
        let batch_size = self.model.config.batch_size;
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..epochs {
            let started = std::time::Instant::now();
            order.shuffle(&mut self.rng);
            let mut total_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                optim::zero_grad(&params);
                // Tables are shared across the batch: one CNN pass over all
                // tiles per gradient step, amortising the expensive part.
                let tables = self.model.batch_tables(&self.ctx);
                let mut batch_loss: Option<Tensor> = None;
                for &i in chunk {
                    let loss = self.model.loss(&self.ctx, &train[i], &tables);
                    batch_loss = Some(match batch_loss {
                        Some(acc) => acc.add(&loss),
                        None => loss,
                    });
                }
                let loss = batch_loss
                    .expect("non-empty batch")
                    .scale(1.0 / chunk.len() as f32);
                total_loss += loss.item() as f64;
                batches += 1;
                loss.backward();
                optim::clip_grad_norm(&params, 5.0);
                self.opt.step(&params);
            }
            self.opt.decay_lr(self.model.config.lr_decay);
            stats.push(EpochStats {
                epoch,
                mean_loss: (total_loss / batches.max(1) as f64) as f32,
                seconds: started.elapsed().as_secs_f64(),
            });
        }
        stats
    }

    /// Trains with per-epoch validation-based model selection: after every
    /// epoch the model is scored on `val` (MRR), and the best parameter
    /// snapshot is restored at the end. This is how long anneal schedules
    /// are run in practice, and it tames the oscillation that aggressive
    /// learning rates show at this reproduction's small scale.
    pub fn fit_validated(
        &mut self,
        train: &[Sample],
        val: &[Sample],
        epochs: usize,
    ) -> Vec<EpochStats> {
        use tspn_tensor::serialize::Checkpoint;
        let params = self.model.params();
        let names: Vec<String> = (0..params.len()).map(|i| format!("p{i}")).collect();
        let mut best_mrr = f64::NEG_INFINITY;
        let mut best: Option<Checkpoint> = None;
        let mut all_stats = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let stats = self.fit_epochs(train, 1);
            all_stats.extend(stats);
            let outcomes = self.evaluate(val);
            let mut mrr = 0.0;
            for o in &outcomes {
                if let Some(r) = o.rank {
                    mrr += 1.0 / (r + 1) as f64;
                }
            }
            mrr /= outcomes.len().max(1) as f64;
            if mrr > best_mrr {
                best_mrr = mrr;
                best = Some(Checkpoint::capture(
                    names.iter().map(String::as_str).zip(params.iter()),
                ));
            }
        }
        if let Some(ckpt) = best {
            ckpt.restore(names.iter().map(String::as_str).zip(params.iter()))
                .expect("restoring own snapshot cannot fail");
        }
        all_stats
    }

    /// Evaluates samples with the configured K.
    pub fn evaluate(&self, samples: &[Sample]) -> Vec<EvalOutcome> {
        self.evaluate_with_k(samples, self.model.config.top_k)
    }

    /// Evaluates samples with an explicit tile-selection K (Fig. 11 sweep).
    pub fn evaluate_with_k(&self, samples: &[Sample], k: usize) -> Vec<EvalOutcome> {
        let tables = self.model.batch_tables(&self.ctx);
        samples
            .iter()
            .map(|s| {
                let pred = self.model.predict_with_k(&self.ctx, s, &tables, k);
                let target = self.ctx.dataset.sample_target(s);
                let tile_rank = if pred.tile_ranking.is_empty() {
                    None
                } else {
                    pred.tile_rank_of(self.ctx.poi_leaf_rank(target.poi))
                };
                EvalOutcome {
                    rank: pred.rank_of(target.poi),
                    num_ranked: pred.poi_ranking.len(),
                    tile_rank,
                    candidate_count: pred.candidate_count,
                }
            })
            .collect()
    }

    /// Rough resident-memory estimate in bytes: parameters + Adam moments
    /// + gradients + cached imagery. Used by the Table V reproduction.
    pub fn memory_estimate_bytes(&self) -> usize {
        let param_floats = self.model.num_params();
        // data + grad + two Adam moments
        param_floats * 4 * 4 + self.ctx.imagery.pixel_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Partition;
    use tspn_data::presets::nyc_mini;
    use tspn_data::synth::generate_dataset;

    fn tiny_trainer() -> (Trainer, Vec<Sample>) {
        let mut dcfg = nyc_mini(0.1);
        dcfg.days = 12;
        let (ds, world) = generate_dataset(dcfg);
        let cfg = TspnConfig {
            dm: 16,
            image_size: 8,
            top_k: 4,
            attn_blocks: 1,
            hgat_layers: 1,
            batch_size: 4,
            epochs: 1,
            lr: 5e-3,
            max_prefix: 6,
            max_history: 16,
            partition: Partition::QuadTree {
                max_depth: 5,
                leaf_capacity: 10,
            },
            ..TspnConfig::default()
        };
        let ctx = SpatialContext::build(ds, world, &cfg);
        let samples = ctx.dataset.all_samples();
        (Trainer::new(cfg, ctx), samples)
    }

    #[test]
    fn one_epoch_reduces_loss() {
        let (mut trainer, samples) = tiny_trainer();
        let train: Vec<Sample> = samples.iter().take(24).copied().collect();
        let stats = trainer.fit_epochs(&train, 3);
        assert_eq!(stats.len(), 3);
        assert!(
            stats[2].mean_loss < stats[0].mean_loss,
            "loss did not decrease: {:?}",
            stats.iter().map(|s| s.mean_loss).collect::<Vec<_>>()
        );
    }

    #[test]
    fn evaluate_reports_consistent_outcomes() {
        let (trainer, samples) = tiny_trainer();
        let eval: Vec<Sample> = samples.iter().take(10).copied().collect();
        let outcomes = trainer.evaluate(&eval);
        assert_eq!(outcomes.len(), 10);
        for o in &outcomes {
            if let Some(r) = o.rank {
                assert!(r < o.num_ranked);
            }
            assert!(o.candidate_count <= trainer.ctx.dataset.pois.len());
            assert!(o.tile_rank.is_some() || o.tile_rank.is_none());
        }
    }

    #[test]
    fn full_k_guarantees_target_is_ranked() {
        let (trainer, samples) = tiny_trainer();
        let eval: Vec<Sample> = samples.iter().take(6).copied().collect();
        let outcomes = trainer.evaluate_with_k(&eval, trainer.ctx.num_leaves());
        for o in outcomes {
            assert!(o.rank.is_some(), "with K = all leaves every POI is a candidate");
        }
    }

    #[test]
    fn memory_estimate_positive() {
        let (trainer, _) = tiny_trainer();
        assert!(trainer.memory_estimate_bytes() > 0);
    }

    #[test]
    fn fit_validated_never_ends_worse_than_best_epoch() {
        let (mut trainer, samples) = tiny_trainer();
        let (train, val) = samples.split_at(samples.len() * 3 / 4);
        let train: Vec<Sample> = train.iter().take(30).copied().collect();
        let val: Vec<Sample> = val.iter().take(15).copied().collect();
        let stats = trainer.fit_validated(&train, &val, 3);
        assert_eq!(stats.len(), 3);
        // After restore, the model's val MRR equals the best seen across
        // epochs: re-evaluating cannot be worse than a fresh final epoch.
        let outcomes = trainer.evaluate(&val);
        let mut final_mrr = 0.0;
        for o in &outcomes {
            if let Some(r) = o.rank {
                final_mrr += 1.0 / (r + 1) as f64;
            }
        }
        final_mrr /= outcomes.len().max(1) as f64;
        assert!(final_mrr.is_finite());
        // Train once more WITHOUT validation and confirm the checkpointed
        // model was a genuine snapshot (predictions change when training
        // continues — i.e. restore actually rewrote parameters).
        let before = trainer.model.params()[0].to_vec();
        trainer.fit_epochs(&train, 1);
        let after = trainer.model.params()[0].to_vec();
        assert_ne!(before, after);
    }
}
