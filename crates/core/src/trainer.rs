//! Training and evaluation driver for TSPN-RA.
//!
//! Both evaluation and per-batch gradient computation are data-parallel:
//! samples are sharded across the persistent worker pool
//! ([`tspn_tensor::parallel`]), and every pool thread owns a full model
//! **replica** (the autodiff tape is single-threaded `Rc`, so replicas —
//! cached per thread and kept in sync from the owner — are how the tape
//! scales across cores). Within a shard the samples no longer run one at
//! a time: each shard (and each serial batch) is one padded, masked
//! batched forward ([`crate::TspnRa::forward_batch`]), so the
//! ~50-node-per-sample tape overhead is paid once per batch. Shard work
//! is dispatched per batch; nothing occupies a worker between batches,
//! so concurrent trainers and evaluations interleave freely on the
//! shared pool.
//!
//! ## Shared-tables ownership rule
//!
//! The embedding-tables tape ([`crate::TspnRa::batch_tables`]: the CNN
//! pass over every tile plus the POI table merge) is built **once per
//! gradient step, on the dispatching thread** — never inside a shard.
//! Shards receive the table *values* and wrap them in local
//! [`Tensor::param`] leaves; their backward passes accumulate table
//! gradients into those leaves, which the owner merges in shard order and
//! pushes through its own tape with [`Tensor::backward_seeded`] — one
//! im2col/embedding tape per step instead of one per shard. Only the
//! owner ever differentiates through the tables, so the table parameters
//! (the leading [`crate::TspnRa::table_params_len`] entries of `params()`)
//! are **never synchronised to replicas** — shards must not (and cannot)
//! read them.
//!
//! ## Delta-sync publish/version protocol
//!
//! Non-table ("downstream") parameters reach replicas through a
//! double-buffered publish area instead of a whole-model snapshot. The
//! owner keeps, per downstream parameter, a publish buffer plus a
//! monotonic version stamp; [`optim::Adam::step_scaled`] reports which
//! parameters it actually moved, and only those get re-published (copy +
//! version bump). Each replica remembers the version it last copied for
//! every parameter and refreshes exactly the stale ones at shard start —
//! O(changed params) per batch instead of O(all params). External
//! parameter mutation ([`Trainer::mark_model_dirty`]) bumps every stamp.
//! `TSPN_TRAIN_DELTA_SYNC=0` (or [`Trainer::set_delta_sync`]) keeps the
//! full-copy fallback: every publish buffer is rewritten and every
//! replica copies all of them each batch. Both modes copy identical
//! values, so training is **bitwise identical across sync modes**.
//!
//! ## Determinism contract
//!
//! * **Evaluation** is bitwise identical for every thread count: replicas
//!   restore the exact parameter values, forward passes are deterministic
//!   (the GEMM kernels are bitwise thread-count-invariant), and outcomes
//!   are reassembled in sample order.
//! * **Training** is deterministic for a fixed `(seed, thread count)`:
//!   each batch is split into `min(threads, batch)` contiguous shards,
//!   every shard's dropout RNG is seeded from `(seed, step, shard)`, and
//!   shard gradients (downstream and table-leaf alike) merge in shard
//!   order. A shard's result never depends on which pool thread computes
//!   it (replica parameters are refreshed to the published values, and
//!   every task runs under the worker scope), so the schedule is
//!   irrelevant.
//! * **Optimizer updates** run as one fused pass with the clip factor
//!   folded in ([`optim::grad_global_norm`] + [`optim::Adam::step_scaled`]),
//!   bitwise identical to the retired clip-then-step sequence on both
//!   kernel tiers.
//!
//! Thread count comes from [`tspn_tensor::parallel::num_threads`]
//! (`TSPN_NUM_THREADS` to override; `1` forces the serial path).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tspn_data::Sample;
use tspn_tensor::serialize::Checkpoint;
use tspn_tensor::{optim, parallel, pool, Tensor};

use crate::config::TspnConfig;
use crate::context::SpatialContext;
use crate::model::{BatchTables, Prediction, TspnRa};
use crate::predictor::{Query, TopK};
use crate::subject::Subject;

/// Identity source for trainer instances; keys the per-thread replica
/// cache.
static NEXT_TRAINER_ID: AtomicU64 = AtomicU64::new(1);

/// How many distinct trainers' replicas one pool thread keeps alive. Two
/// covers the common case (a trainer plus a second model under
/// comparison) without letting long test runs pin arbitrary memory.
const MAX_CACHED_REPLICAS: usize = 2;

/// Queries per padded batched forward on the prediction paths: large
/// enough to amortise per-batch fixed costs, small enough to bound the
/// padded `[chunk·S, dm]` scratch at paper scale. Per-sample results are
/// chunk-size-invariant (bitwise), so this is purely a memory/locality
/// knob.
const PRED_CHUNK: usize = 64;

/// One cached model replica, pinned to the thread that built it (the tape
/// is `Rc`-based and must never migrate).
struct ReplicaSlot {
    trainer_id: u64,
    replica: TspnRa,
    /// `replica.params()`, in the same order as the owning trainer's.
    params: Vec<Tensor>,
    /// Per-downstream-parameter version stamps last copied from the
    /// owner's publish area (see the module docs); empty = never synced,
    /// which forces a full copy on first use.
    seen: Vec<u64>,
}

thread_local! {
    /// LRU cache (most recent last) of model replicas on this pool thread.
    static REPLICAS: RefCell<Vec<ReplicaSlot>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's replica for `trainer_id`, building one on
/// first use. The replica survives across batches and fit/evaluate calls,
/// so the per-shard cost is one parameter overwrite, not a model build.
fn with_replica<R>(
    trainer_id: u64,
    cfg: &TspnConfig,
    ctx: &SpatialContext,
    f: impl FnOnce(&TspnRa, &[Tensor], &mut Vec<u64>) -> R,
) -> R {
    REPLICAS.with(|cell| {
        let mut cache = cell.borrow_mut();
        if let Some(i) = cache.iter().position(|s| s.trainer_id == trainer_id) {
            let slot = cache.remove(i);
            cache.push(slot);
        } else {
            if cache.len() >= MAX_CACHED_REPLICAS {
                cache.remove(0);
            }
            let replica = TspnRa::new(cfg.clone(), ctx);
            let params = replica.params();
            cache.push(ReplicaSlot {
                trainer_id,
                replica,
                params,
                seen: Vec::new(),
            });
        }
        let slot = cache.last_mut().expect("replica cached above");
        let ReplicaSlot {
            replica,
            params,
            seen,
            ..
        } = slot;
        f(replica, params, seen)
    })
}

/// Outcome of evaluating one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOutcome {
    /// 0-based rank of the true POI in `R_P`; `None` when tile selection
    /// filtered it out (scored as `|R_P| + 1` per the paper's objective).
    pub rank: Option<usize>,
    /// Length of the returned ranking.
    pub num_ranked: usize,
    /// 0-based rank of the true tile in `R_T` (two-step mode only).
    pub tile_rank: Option<usize>,
    /// Number of POI candidates after tile filtering.
    pub candidate_count: usize,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub mean_loss: f32,
    /// Wall-clock seconds spent in the epoch.
    pub seconds: f64,
}

/// Batch-tables cache key: `(parameter version, context revision)`.
type CacheKey = (u64, u64);

/// Owner side of the delta-sync protocol (module docs): per-downstream-
/// parameter publish buffers plus monotonic version stamps. Shard
/// closures borrow it read-only while a batch is in flight; the optimizer
/// epilogue republishes the parameters it touched.
#[derive(Default)]
struct SyncState {
    /// Version stamp per downstream parameter; starts at 1 (replicas
    /// start at "never synced"), bumped on every republish, and never
    /// reset, so replica stamps stay comparable for the trainer's life.
    versions: Vec<u64>,
    /// Published value per downstream parameter. Plain `Vec`s (not pool
    /// buffers): they live for the trainer's lifetime and are rewritten
    /// in place, so steady-state batches never reallocate them.
    publish: Vec<Vec<f32>>,
    /// Set by [`Trainer::mark_model_dirty`]: parameters changed outside
    /// the optimizer, so every buffer must republish with a version bump.
    stale: bool,
}

impl SyncState {
    /// Brings the publish area up to date before a batch dispatch.
    /// `down` is the downstream parameter suffix; in full-copy mode
    /// (`delta == false`) every buffer is rewritten every batch.
    fn prepare(&mut self, down: &[Tensor], delta: bool) {
        if self.versions.len() != down.len() {
            self.versions = vec![1; down.len()];
            self.publish = down.iter().map(|p| p.to_vec()).collect();
            self.stale = false;
        } else if self.stale || !delta {
            for (buf, p) in self.publish.iter_mut().zip(down) {
                buf.clear();
                buf.extend_from_slice(&p.data());
            }
            if self.stale {
                for v in &mut self.versions {
                    *v += 1;
                }
            }
            self.stale = false;
        }
    }

    /// Republishes one downstream parameter after the optimizer moved it.
    fn republish(&mut self, j: usize, p: &Tensor) {
        self.publish[j].clear();
        self.publish[j].extend_from_slice(&p.data());
        self.versions[j] += 1;
    }
}

/// Copies stale published parameters into a replica's downstream suffix
/// and advances its stamps. An empty or mismatched `seen` (fresh replica,
/// or full-copy mode) copies everything.
fn refresh_replica(rdown: &[Tensor], seen: &mut Vec<u64>, sync: &SyncState, delta: bool) {
    if delta && seen.len() == sync.versions.len() {
        for j in 0..rdown.len() {
            if sync.versions[j] > seen[j] {
                rdown[j].set_data(&sync.publish[j]);
                seen[j] = sync.versions[j];
            }
        }
    } else {
        for (p, buf) in rdown.iter().zip(&sync.publish) {
            p.set_data(buf);
        }
        seen.clear();
        seen.extend_from_slice(&sync.versions);
    }
}

/// Owns the model, the spatial context and the optimizer state.
pub struct Trainer {
    /// The model under training.
    pub model: TspnRa,
    /// The prepared spatial context.
    pub ctx: SpatialContext,
    /// Process-unique identity; keys the pool threads' replica caches.
    id: u64,
    opt: optim::Adam,
    rng: StdRng,
    /// Monotonic counter bumped whenever parameters change; keys the
    /// batch-tables cache together with the context revision.
    version: Cell<u64>,
    /// Cached `batch_tables` for evaluation, keyed by
    /// `(param version, ctx revision)`.
    tables_cache: RefCell<Option<(CacheKey, Rc<BatchTables>)>>,
    /// Delta parameter sync on the sharded path (module docs); the
    /// full-copy fallback is bitwise identical. Defaults from
    /// `TSPN_TRAIN_DELTA_SYNC` (`0` disables) at construction.
    delta_sync: bool,
    /// Owner side of the publish/version protocol.
    sync: RefCell<SyncState>,
}

impl Trainer {
    /// Builds context-bound trainer with a fresh model.
    pub fn new(config: TspnConfig, ctx: SpatialContext) -> Self {
        let opt = optim::Adam::new(config.lr);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7EA1);
        let model = TspnRa::new(config, &ctx);
        Trainer {
            model,
            ctx,
            id: NEXT_TRAINER_ID.fetch_add(1, Ordering::Relaxed),
            opt,
            rng,
            version: Cell::new(0),
            tables_cache: RefCell::new(None),
            delta_sync: std::env::var("TSPN_TRAIN_DELTA_SYNC").map_or(true, |v| v != "0"),
            sync: RefCell::new(SyncState::default()),
        }
    }

    /// Switches the sharded path between delta parameter sync and the
    /// full-copy fallback (both bitwise identical; see the module docs).
    /// Programmatic override of the `TSPN_TRAIN_DELTA_SYNC` default — env
    /// reads race across parallel tests, so tests set this explicitly.
    pub fn set_delta_sync(&mut self, on: bool) {
        if self.delta_sync != on {
            self.delta_sync = on;
            self.mark_model_dirty();
        }
    }

    /// Whether the sharded path uses delta parameter sync.
    pub fn delta_sync(&self) -> bool {
        self.delta_sync
    }

    /// Invalidates cached derived state (the evaluation batch tables and
    /// the delta-sync publish area). The fit/restore paths call this
    /// automatically; call it manually after mutating `model` parameters
    /// from outside the trainer.
    pub fn mark_model_dirty(&self) {
        self.version.set(self.version.get() + 1);
        self.sync.borrow_mut().stale = true;
    }

    /// The batch tables for the current parameters and context, computed
    /// at most once per `(param version, ctx revision)` pair — so both
    /// optimizer steps and `ctx.swap_imagery` invalidate it.
    fn shared_tables(&self) -> Rc<BatchTables> {
        let key = (self.version.get(), self.ctx.revision());
        let mut cache = self.tables_cache.borrow_mut();
        if let Some((k, tables)) = cache.as_ref() {
            if *k == key {
                return Rc::clone(tables);
            }
        }
        // Evaluation never differentiates through the tables, so skip the
        // tape entirely (the CNN forward over every tile dominates here).
        let tables = Rc::new(Tensor::no_grad(|| self.model.batch_tables(&self.ctx)));
        *cache = Some((key, Rc::clone(&tables)));
        tables
    }

    /// Trains for the configured number of epochs, returning per-epoch stats.
    pub fn fit(&mut self, train: &[Sample]) -> Vec<EpochStats> {
        let epochs = self.model.config.epochs;
        self.fit_epochs(train, epochs)
    }

    /// Trains for an explicit number of epochs.
    ///
    /// With more than one thread available, each batch's gradient is
    /// computed across per-thread model replicas (see the module docs for
    /// the determinism contract).
    pub fn fit_epochs(&mut self, train: &[Sample], epochs: usize) -> Vec<EpochStats> {
        let workers = parallel::num_threads();
        let stats = if workers > 1 && train.len() >= 2 && epochs > 0 {
            self.fit_epochs_sharded(train, epochs, workers)
        } else {
            self.fit_epochs_serial(train, epochs)
        };
        self.mark_model_dirty();
        stats
    }

    /// Single-threaded path: one padded batched forward per batch (the
    /// dropout stream and the loss summation order match the retired
    /// per-sample loop exactly, so fixed-seed runs reproduce).
    fn fit_epochs_serial(&mut self, train: &[Sample], epochs: usize) -> Vec<EpochStats> {
        let mut stats = Vec::with_capacity(epochs);
        let params = self.model.params();
        let batch_size = self.model.config.batch_size;
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..epochs {
            // tspn-lint: allow(wall-clock) — epoch wall time is reported in EpochStats metadata only and never feeds a computed value
            let started = std::time::Instant::now();
            order.shuffle(&mut self.rng);
            let mut total_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                optim::zero_grad(&params);
                // Tables are shared across the batch: one CNN pass over all
                // tiles per gradient step, amortising the expensive part.
                let tables = self.model.batch_tables(&self.ctx);
                let batch: Vec<Sample> = chunk.iter().map(|&i| train[i]).collect();
                let loss = self
                    .model
                    .loss_batch(&self.ctx, &batch, &tables)
                    .sum_all()
                    .scale(1.0 / chunk.len() as f32);
                total_loss += loss.item() as f64;
                batches += 1;
                loss.backward();
                // Fused clip + update: bitwise identical to the retired
                // clip_grad_norm + step sequence (see optim module docs).
                let scale = optim::clip_scale(optim::grad_global_norm(&params), 5.0);
                self.opt.step_scaled(&params, scale, |_| {});
            }
            self.opt.decay_lr(self.model.config.lr_decay);
            stats.push(EpochStats {
                epoch,
                mean_loss: (total_loss / batches.max(1) as f64) as f32,
                seconds: started.elapsed().as_secs_f64(),
            });
        }
        stats
    }

    /// Data-parallel path: the owner builds the shared tables tape once
    /// per batch and publishes only changed downstream parameters; shards
    /// run on cached replicas and return (table-leaf + downstream)
    /// gradients, which merge in shard order on this thread (module docs
    /// cover the ownership and sync protocols).
    fn fit_epochs_sharded(
        &mut self,
        train: &[Sample],
        epochs: usize,
        workers: usize,
    ) -> Vec<EpochStats> {
        let Trainer {
            ref model,
            ref ctx,
            id: trainer_id,
            ref mut opt,
            ref mut rng,
            ref sync,
            delta_sync,
            ..
        } = *self;
        let params = model.params();
        let tpl = model.table_params_len();
        let down = &params[tpl..];
        let batch_size = model.config.batch_size;
        let lr_decay = model.config.lr_decay;
        let seed = model.config.seed;
        let cfg = model.config.clone();
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut stats = Vec::with_capacity(epochs);
        let mut sync = sync.borrow_mut();

        let mut step = opt.steps();
        for epoch in 0..epochs {
            // tspn-lint: allow(wall-clock) — epoch wall time is reported in EpochStats metadata only and never feeds a computed value
            let started = std::time::Instant::now();
            order.shuffle(rng);
            let mut total_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                sync.prepare(down, delta_sync);
                // Shared tables: ONE tape on this thread per step. Shards
                // see only the forward values (as fresh leaves), so the
                // im2col/embedding forward never runs per shard.
                let tables = model.batch_tables(ctx);
                let tiles_shape = tables.tiles.shape().0.clone();
                let pois_shape = tables.pois.shape().0.clone();
                let tiles_vals = tables.tiles.data();
                let pois_vals = tables.pois.data();
                // Shard layout depends only on (batch len, workers), so a
                // fixed thread count reproduces exactly; shard results are
                // additionally independent of which pool thread runs them.
                let shards = workers.min(chunk.len());
                let per_shard = chunk.len().div_ceil(shards);
                let inv_batch = 1.0 / chunk.len() as f32;
                let jobs: Vec<_> = chunk
                    .chunks(per_shard)
                    .enumerate()
                    .map(|(shard_id, shard)| {
                        let samples: Vec<Sample> = shard.iter().map(|&i| train[i]).collect();
                        let dropout_seed = seed
                            ^ step.wrapping_mul(0x9E3779B97F4A7C15)
                            ^ (shard_id as u64).wrapping_mul(0xD1B54A32D192ED03);
                        let cfg = &cfg;
                        let sync: &SyncState = &sync;
                        let (tiles_vals, pois_vals) = (&*tiles_vals, &*pois_vals);
                        let (tiles_shape, pois_shape) = (&tiles_shape, &pois_shape);
                        move || {
                            with_replica(trainer_id, cfg, ctx, |replica, rparams, seen| {
                                refresh_replica(&rparams[tpl..], seen, sync, delta_sync);
                                optim::zero_grad(rparams);
                                replica.reseed_dropout(dropout_seed);
                                // Table values as gradient-collecting
                                // leaves; the tape behind them stays with
                                // the owner.
                                let tables = BatchTables {
                                    tiles: Tensor::param(
                                        pool::take_copied(tiles_vals),
                                        tiles_shape.clone(),
                                    ),
                                    pois: Tensor::param(
                                        pool::take_copied(pois_vals),
                                        pois_shape.clone(),
                                    ),
                                };
                                // One padded batched forward per shard.
                                let loss = replica
                                    .loss_batch(ctx, &samples, &tables)
                                    .sum_all()
                                    .scale(inv_batch);
                                let value = loss.item();
                                loss.backward();
                                let leaf_grad = |t: &Tensor| {
                                    t.with_grad_ref(|g| match g {
                                        Some(g) => pool::take_copied(g),
                                        None => pool::take_zeroed(t.len()),
                                    })
                                };
                                let tiles_grad = leaf_grad(&tables.tiles);
                                let pois_grad = leaf_grad(&tables.pois);
                                let grads: Vec<Vec<f32>> =
                                    rparams[tpl..].iter().map(leaf_grad).collect();
                                (value, tiles_grad, pois_grad, grads)
                            })
                        }
                    })
                    .collect();
                // Dispatch and merge; a panicking shard re-raises here
                // after the batch drains (no half-applied updates).
                let results = parallel::map_scoped(jobs);
                drop(tiles_vals);
                drop(pois_vals);
                optim::zero_grad(&params);
                let mut batch_loss = 0.0f32;
                let mut tiles_merged: Option<Vec<f32>> = None;
                let mut pois_merged: Option<Vec<f32>> = None;
                let merge = |acc: &mut Option<Vec<f32>>, g: Vec<f32>| match acc {
                    None => *acc = Some(g),
                    Some(acc) => {
                        for (a, b) in acc.iter_mut().zip(&g) {
                            *a += b;
                        }
                        pool::give(g);
                    }
                };
                for (loss, tiles_grad, pois_grad, grads) in results {
                    batch_loss += loss;
                    merge(&mut tiles_merged, tiles_grad);
                    merge(&mut pois_merged, pois_grad);
                    for (p, g) in down.iter().zip(&grads) {
                        p.accumulate_grad(g);
                    }
                    for g in grads {
                        pool::give(g);
                    }
                }
                // Backpropagate the merged table gradients through the
                // owner's tape — the tiles and POI tapes are disjoint, so
                // two seeded walks cover the whole tables graph.
                let tiles_merged = tiles_merged.expect("at least one shard ran");
                let pois_merged = pois_merged.expect("at least one shard ran");
                tables.tiles.backward_seeded(&tiles_merged);
                tables.pois.backward_seeded(&pois_merged);
                pool::give(tiles_merged);
                pool::give(pois_merged);
                total_loss += batch_loss as f64;
                batches += 1;
                // Fused clip + update; touched downstream parameters are
                // republished for the next batch's replica refresh.
                let scale = optim::clip_scale(optim::grad_global_norm(&params), 5.0);
                opt.step_scaled(&params, scale, |i| {
                    if delta_sync && i >= tpl {
                        sync.republish(i - tpl, &params[i]);
                    }
                });
                step += 1;
                // Drop the tables tape, then spill this thread's local
                // buffer cache to the shared pool: the dispatching thread
                // may have run a shard job itself, and buffers parked in
                // its local cache would be invisible to whichever worker
                // draws that shard next batch. (Workers spill when idle.)
                drop(tables);
                pool::flush_thread_local();
            }
            opt.decay_lr(lr_decay);
            stats.push(EpochStats {
                epoch,
                mean_loss: (total_loss / batches.max(1) as f64) as f32,
                seconds: started.elapsed().as_secs_f64(),
            });
        }
        stats
    }

    /// Trains with per-epoch validation-based model selection: after every
    /// epoch the model is scored on `val` (MRR), and the best parameter
    /// snapshot is restored at the end. This is how long anneal schedules
    /// are run in practice, and it tames the oscillation that aggressive
    /// learning rates show at this reproduction's small scale.
    pub fn fit_validated(
        &mut self,
        train: &[Sample],
        val: &[Sample],
        epochs: usize,
    ) -> Vec<EpochStats> {
        let mut best_mrr = f64::NEG_INFINITY;
        let mut best: Option<Checkpoint> = None;
        let mut all_stats = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let stats = self.fit_epochs(train, 1);
            all_stats.extend(stats);
            let outcomes = self.evaluate(val);
            let mut mrr = 0.0;
            for o in &outcomes {
                if let Some(r) = o.rank {
                    mrr += 1.0 / (r + 1) as f64;
                }
            }
            mrr /= outcomes.len().max(1) as f64;
            if mrr > best_mrr {
                best_mrr = mrr;
                // Re-capture into the previous snapshot's allocations.
                match &mut best {
                    Some(ckpt) => self.model.save_into(ckpt),
                    None => best = Some(self.model.save()),
                }
            }
        }
        if let Some(ckpt) = best {
            self.model
                .load(&ckpt)
                .expect("restoring own snapshot cannot fail");
            self.mark_model_dirty();
        }
        all_stats
    }

    /// Evaluates samples with the configured K.
    pub fn evaluate(&self, samples: &[Sample]) -> Vec<EvalOutcome> {
        self.evaluate_with_k(samples, self.model.config.top_k)
    }

    /// Evaluates samples with an explicit tile-selection K (Fig. 11 sweep).
    ///
    /// Shards samples across the persistent worker pool (forward-only
    /// model replicas, cached per pool thread); results are bitwise
    /// identical for every thread count. Evaluation and online serving
    /// ([`Trainer::predict_batch`]) run through the same
    /// [`Trainer::predict_mapped`] machinery, so a served ranking is the
    /// offline ranking, bitwise.
    pub fn evaluate_with_k(&self, samples: &[Sample], k: usize) -> Vec<EvalOutcome> {
        let queries: Vec<Query> = samples
            .iter()
            .map(|&sample| Query::new(sample, k))
            .collect();
        self.predict_mapped(&queries, outcome_of)
    }

    /// The single-threaded evaluation path (kept callable for determinism
    /// tests); uses the version-keyed batch-tables cache.
    pub fn evaluate_with_k_serial(&self, samples: &[Sample], k: usize) -> Vec<EvalOutcome> {
        let queries: Vec<Query> = samples
            .iter()
            .map(|&sample| Query::new(sample, k))
            .collect();
        self.predict_mapped_serial(&queries, outcome_of)
    }

    /// Answers a batch of prediction queries, sharded across the
    /// persistent worker pool exactly like [`Trainer::evaluate_with_k`];
    /// results are in query order and bitwise identical to answering each
    /// query alone on the serial path.
    pub fn predict_batch(&self, queries: &[Query]) -> Vec<TopK> {
        self.predict_mapped(queries, |_ctx, q, pred| TopK::from_prediction(pred, q.top))
    }

    /// Single-query answer on the retained **per-subject reference path**
    /// ([`crate::TspnRa::predict_subject_with_k`]); the batched paths are
    /// asserted bitwise against this.
    pub fn predict_one(&self, query: &Query) -> TopK {
        let tables = self.shared_tables();
        let pred = self
            .model
            .predict_subject_with_k(&self.ctx, &query.subject, &tables, query.k);
        TopK::from_prediction(pred, query.top)
    }

    /// Query indices sorted by effective prefix length (ties by index):
    /// co-batching like-length prefixes keeps the padded `[B·S, dm]`
    /// tensors dense, and per-subject results are batch-composition
    /// invariant (bitwise), so the ordering is purely a perf knob.
    fn length_sorted_order(&self, queries: &[Query]) -> Vec<usize> {
        let cap = self.model.config.max_prefix;
        let mut order: Vec<usize> = (0..queries.len()).collect();
        // History-free subjects are grouped apart; that keeps chunks
        // homogeneous so the fusion stack's cross-attention row partition
        // takes its all-or-nothing fast paths.
        order.sort_by_key(|&i| {
            let subject = &queries[i].subject;
            (
                usize::from(subject.has_history()),
                subject.prefix(&self.ctx).len().min(cap),
                i,
            )
        });
        order
    }

    /// Serial prediction over the cached batch tables: one padded batched
    /// forward per [`PRED_CHUNK`] queries on this thread (queries
    /// co-batched by prefix length), each [`Prediction`] mapped through
    /// `f`; results return in query order.
    fn predict_mapped_serial<R>(
        &self,
        queries: &[Query],
        f: impl Fn(&SpatialContext, &Query, Prediction) -> R,
    ) -> Vec<R> {
        let tables = self.shared_tables();
        let order = self.length_sorted_order(queries);
        let mut out: Vec<Option<R>> = (0..queries.len()).map(|_| None).collect();
        for chunk in order.chunks(PRED_CHUNK) {
            let pairs: Vec<(Subject, usize)> = chunk
                .iter()
                .map(|&i| (queries[i].subject.clone(), queries[i].k))
                .collect();
            let preds = self.model.predict_many(&self.ctx, &pairs, &tables);
            for (&i, pred) in chunk.iter().zip(preds) {
                out[i] = Some(f(&self.ctx, &queries[i], pred));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// The shared batched-prediction core: computes (or reuses) the batch
    /// tables once, shards `queries` across the persistent worker pool,
    /// runs each query's two-step prediction on a cached per-thread model
    /// replica and maps it through `f` inside the shard. Falls back to the
    /// serial path for tiny batches or a single-thread budget.
    fn predict_mapped<R, F>(&self, queries: &[Query], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&SpatialContext, &Query, Prediction) -> R + Sync,
    {
        let workers = parallel::num_threads();
        // Dispatch is cheap but each shard still pays a parameter
        // overwrite; tiny sets stay on the cached serial path.
        if workers <= 1 || queries.len() < 4 * workers {
            return self.predict_mapped_serial(queries, &f);
        }
        // The batch tables are computed (or served from cache) exactly
        // once here; shards receive the raw values and wrap them in
        // non-differentiable tensors, so the expensive CNN pass over all
        // tiles never runs per worker — and repeated evaluations with
        // unchanged parameters (the Fig. 11 K-sweep) stay cached.
        let tables = self.shared_tables();
        let tiles_data = tables.tiles.to_vec();
        let tiles_shape = tables.tiles.shape().0.clone();
        let pois_data = tables.pois.to_vec();
        let pois_shape = tables.pois.shape().0.clone();
        drop(tables);
        let params = self.model.params();
        let snapshot: Vec<Vec<f32>> = params
            .iter()
            .map(|p| pool::take_copied(&p.data()))
            .collect();
        let cfg = &self.model.config;
        let ctx = &self.ctx;
        let trainer_id = self.id;
        let f = &f;
        // Shards take contiguous runs of the length-sorted order, so each
        // shard's padded batches stay dense; results scatter back to query
        // order below.
        let order = self.length_sorted_order(queries);
        let per_shard = queries.len().div_ceil(workers);
        let jobs: Vec<_> = order
            .chunks(per_shard)
            .map(|shard| {
                let snapshot = &snapshot;
                let (tiles_data, tiles_shape) = (&tiles_data, &tiles_shape);
                let (pois_data, pois_shape) = (&pois_data, &pois_shape);
                move || {
                    // Full-value overwrite (prediction never steps the
                    // optimizer, so the publish/version protocol does not
                    // apply); replica `seen` stamps are left alone — they
                    // under-report freshness, which is always safe.
                    with_replica(trainer_id, cfg, ctx, |replica, rparams, _seen| {
                        for (p, values) in rparams.iter().zip(snapshot) {
                            p.set_data(values);
                        }
                        let tables = BatchTables {
                            tiles: Tensor::from_vec(
                                pool::take_copied(tiles_data),
                                tiles_shape.clone(),
                            ),
                            pois: Tensor::from_vec(
                                pool::take_copied(pois_data),
                                pois_shape.clone(),
                            ),
                        };
                        let mut results: Vec<R> = Vec::with_capacity(shard.len());
                        for chunk in shard.chunks(PRED_CHUNK) {
                            let pairs: Vec<(Subject, usize)> = chunk
                                .iter()
                                .map(|&i| (queries[i].subject.clone(), queries[i].k))
                                .collect();
                            let preds = replica.predict_many(ctx, &pairs, &tables);
                            results.extend(
                                chunk
                                    .iter()
                                    .zip(preds)
                                    .map(|(&i, pred)| f(ctx, &queries[i], pred)),
                            );
                        }
                        results
                    })
                }
            })
            .collect();
        let flat: Vec<R> = parallel::map_scoped(jobs).into_iter().flatten().collect();
        for buf in snapshot {
            pool::give(buf);
        }
        let mut out: Vec<Option<R>> = (0..queries.len()).map(|_| None).collect();
        for (&i, r) in order.iter().zip(flat) {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// Benchmark hook: one full publish + replica-style refresh round
    /// trip over every downstream parameter (the worst case the delta
    /// protocol avoids). Returns the number of f32 values copied each
    /// way. Hidden: perf_snapshot only.
    #[doc(hidden)]
    pub fn bench_sync_roundtrip(&mut self) -> usize {
        let params = self.model.params();
        let down = &params[self.model.table_params_len()..];
        let sync = self.sync.get_mut();
        sync.stale = true;
        sync.prepare(down, true);
        let mut copied = 0;
        for (p, buf) in down.iter().zip(&sync.publish) {
            p.set_data(buf);
            copied += buf.len();
        }
        copied
    }

    /// Rough resident-memory estimate in bytes: parameters + Adam moments
    /// + gradients + cached imagery. Used by the Table V reproduction.
    pub fn memory_estimate_bytes(&self) -> usize {
        let param_floats = self.model.num_params();
        // data + grad + two Adam moments
        param_floats * 4 * 4 + self.ctx.imagery.pixel_bytes()
    }
}

/// Scores one finished prediction against its sample's ground truth.
fn outcome_of(ctx: &SpatialContext, query: &Query, pred: Prediction) -> EvalOutcome {
    let sample = query
        .indexed_sample()
        .expect("evaluation queries address dataset samples");
    let target = ctx.dataset.sample_target(&sample);
    let tile_rank = if pred.tile_ranking.is_empty() {
        None
    } else {
        pred.tile_rank_of(ctx.poi_leaf_rank(target.poi))
    };
    EvalOutcome {
        rank: pred.rank_of(target.poi),
        num_ranked: pred.poi_ranking.len(),
        tile_rank,
        candidate_count: pred.candidate_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Partition;
    use tspn_data::presets::nyc_mini;
    use tspn_data::synth::generate_dataset;

    fn tiny_trainer() -> (Trainer, Vec<Sample>) {
        let mut dcfg = nyc_mini(0.1);
        dcfg.days = 12;
        let (ds, world) = generate_dataset(dcfg);
        let cfg = TspnConfig {
            dm: 16,
            image_size: 8,
            top_k: 4,
            attn_blocks: 1,
            hgat_layers: 1,
            batch_size: 4,
            epochs: 1,
            lr: 5e-3,
            max_prefix: 6,
            max_history: 16,
            partition: Partition::QuadTree {
                max_depth: 5,
                leaf_capacity: 10,
            },
            ..TspnConfig::default()
        };
        let ctx = SpatialContext::build(ds, world, &cfg);
        let samples = ctx.dataset.all_samples();
        (Trainer::new(cfg, ctx), samples)
    }

    #[test]
    fn one_epoch_reduces_loss() {
        let (mut trainer, samples) = tiny_trainer();
        let train: Vec<Sample> = samples.iter().take(24).copied().collect();
        let stats = trainer.fit_epochs(&train, 3);
        assert_eq!(stats.len(), 3);
        assert!(
            stats[2].mean_loss < stats[0].mean_loss,
            "loss did not decrease: {:?}",
            stats.iter().map(|s| s.mean_loss).collect::<Vec<_>>()
        );
    }

    #[test]
    fn evaluate_reports_consistent_outcomes() {
        let (trainer, samples) = tiny_trainer();
        let eval: Vec<Sample> = samples.iter().take(10).copied().collect();
        let outcomes = trainer.evaluate(&eval);
        assert_eq!(outcomes.len(), 10);
        for o in &outcomes {
            if let Some(r) = o.rank {
                assert!(r < o.num_ranked);
            }
            assert!(o.candidate_count <= trainer.ctx.dataset.pois.len());
            assert!(o.tile_rank.is_some() || o.tile_rank.is_none());
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_exactly() {
        // The acceptance contract: sharded evaluation must return the
        // same ranks as the single-thread path, bitwise. On a single-core
        // machine both calls take the serial path and the test is trivial.
        let (mut trainer, samples) = tiny_trainer();
        let train: Vec<Sample> = samples.iter().take(16).copied().collect();
        trainer.fit_epochs(&train, 1);
        let eval: Vec<Sample> = samples.iter().take(40).copied().collect();
        let parallel = trainer.evaluate(&eval);
        let serial = trainer.evaluate_with_k_serial(&eval, trainer.model.config.top_k);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed_and_threads() {
        let run = || {
            let (mut trainer, samples) = tiny_trainer();
            let train: Vec<Sample> = samples.iter().take(16).copied().collect();
            trainer.fit_epochs(&train, 2);
            trainer
                .model
                .params()
                .iter()
                .flat_map(|p| p.to_vec())
                .collect::<Vec<f32>>()
        };
        assert_eq!(
            run(),
            run(),
            "same seed + thread count must reproduce bitwise"
        );
    }

    #[test]
    fn evaluate_caches_tables_between_calls() {
        let (mut trainer, samples) = tiny_trainer();
        let eval: Vec<Sample> = samples.iter().take(3).copied().collect();
        let _ = trainer.evaluate_with_k_serial(&eval, 4);
        let v1 = trainer.tables_cache.borrow().as_ref().map(|(k, _)| *k);
        let _ = trainer.evaluate_with_k_serial(&eval, 4);
        let v2 = trainer.tables_cache.borrow().as_ref().map(|(k, _)| *k);
        assert_eq!(v1, v2, "unchanged params must reuse the cached tables");
        trainer.mark_model_dirty();
        let _ = trainer.evaluate_with_k_serial(&eval, 4);
        let v3 = trainer.tables_cache.borrow().as_ref().map(|(k, _)| *k);
        assert_ne!(v1, v3, "dirty marker must invalidate the cache");
        // Context mutation (the Fig. 12b noise sweep path) must also
        // invalidate: scoring noisy imagery against clean-imagery tables
        // would silently flatten the dose-response curve.
        let noisy = trainer.ctx.imagery.with_noise(0.5, 3);
        trainer.ctx.swap_imagery(noisy);
        let clean = trainer.evaluate_with_k_serial(&eval, 4);
        let v4 = trainer.tables_cache.borrow().as_ref().map(|(k, _)| *k);
        assert_ne!(v3, v4, "swap_imagery must invalidate the cache");
        let _ = clean;
    }

    #[test]
    #[should_panic(expected = "")]
    fn invalid_sample_panics_rather_than_hanging() {
        // A poisoned shard must surface its panic on the calling thread —
        // on the sharded path a lost worker must not deadlock the batch
        // loop (the serial path panics directly).
        let (mut trainer, _) = tiny_trainer();
        let bogus = Sample {
            user_index: usize::MAX,
            traj_index: 0,
            prefix_len: 1,
        };
        trainer.fit_epochs(&[bogus, bogus], 1);
    }

    #[test]
    fn full_k_guarantees_target_is_ranked() {
        let (trainer, samples) = tiny_trainer();
        let eval: Vec<Sample> = samples.iter().take(6).copied().collect();
        let outcomes = trainer.evaluate_with_k(&eval, trainer.ctx.num_leaves());
        for o in outcomes {
            assert!(
                o.rank.is_some(),
                "with K = all leaves every POI is a candidate"
            );
        }
    }

    #[test]
    fn memory_estimate_positive() {
        let (trainer, _) = tiny_trainer();
        assert!(trainer.memory_estimate_bytes() > 0);
    }

    #[test]
    fn fit_validated_never_ends_worse_than_best_epoch() {
        let (mut trainer, samples) = tiny_trainer();
        let (train, val) = samples.split_at(samples.len() * 3 / 4);
        let train: Vec<Sample> = train.iter().take(30).copied().collect();
        let val: Vec<Sample> = val.iter().take(15).copied().collect();
        let stats = trainer.fit_validated(&train, &val, 3);
        assert_eq!(stats.len(), 3);
        // After restore, the model's val MRR equals the best seen across
        // epochs: re-evaluating cannot be worse than a fresh final epoch.
        let outcomes = trainer.evaluate(&val);
        let mut final_mrr = 0.0;
        for o in &outcomes {
            if let Some(r) = o.rank {
                final_mrr += 1.0 / (r + 1) as f64;
            }
        }
        final_mrr /= outcomes.len().max(1) as f64;
        assert!(final_mrr.is_finite());
        // Train once more WITHOUT validation and confirm the checkpointed
        // model was a genuine snapshot (predictions change when training
        // continues — i.e. restore actually rewrote parameters).
        let before = trainer.model.params()[0].to_vec();
        trainer.fit_epochs(&train, 1);
        let after = trainer.model.params()[0].to_vec();
        assert_ne!(before, after);
    }
}
