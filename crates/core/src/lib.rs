//! # tspn-core
//!
//! The TSPN-RA model — the paper's primary contribution: a Two-Step
//! Prediction Network with Remote sensing Augmentation for next-POI
//! prediction (ICDE 2024).
//!
//! Pipeline (paper Fig. 5):
//!
//! 1. **Data extraction** — [`SpatialContext`] prepares the quad-tree
//!    partition, per-tile remote-sensing imagery, road-derived tile
//!    adjacency, and POI↔tile mappings for a dataset.
//! 2. **Feature embedding** — [`embed::Me1`] (stride-2 CNN over tile
//!    imagery), [`embed::Me2`] (id⊕category POI embeddings),
//!    [`embed::SpatialEncoder`] (Eq. 4 sinusoids),
//!    [`embed::TemporalEncoder`] (48 half-hour slots), and the HGAT
//!    encoding of the QR-P graph into historical knowledge.
//! 3. **Two-step prediction** — [`fusion::FusionModule`] (`MP1`/`MP2`)
//!    fuses the prefix sequence with historical knowledge; the model ranks
//!    leaf tiles by cosine similarity, keeps the top-K, then ranks the
//!    POIs inside them (Sec. V-B), trained with the ArcFace margin loss
//!    (Eq. 8).
//!
//! [`TspnConfig`] carries every hyper-parameter, and [`TspnVariant`] the
//! Table IV ablation switches. [`Trainer`] drives Adam training with the
//! paper's batch-shared embedding tables and decaying learning rate.

#![warn(missing_docs)]

pub mod batch;
mod config;
mod context;
pub mod embed;
pub mod fusion;
mod model;
mod predictor;
mod subject;
mod trainer;

pub use batch::BatchForward;
pub use config::{Partition, TspnConfig, TspnVariant};
pub use context::SpatialContext;
pub use model::{descending_order, top_k_indices, BatchTables, Prediction, TspnRa};
pub use predictor::{Predictor, Query, TopK};
pub use subject::Subject;
pub use trainer::{EpochStats, EvalOutcome, Trainer};
