//! Feature embedding modules (paper Sec. IV):
//!
//! * [`Me1`] — the remote-sensing image encoder (Fig. 6): three successive
//!   stride-2 convolutions (the paper's memory-saving replacement for
//!   max-pooling), flatten, feed-forward to `d_m`, then L2 normalisation,
//! * [`Me2`] — POI embeddings `E_P(p) = α·embed(id) + (1−α)·embed(cate)`
//!   (Eq. 5),
//! * [`SpatialEncoder`] — the 2-D sinusoidal location encoding (Eq. 4),
//! * [`TemporalEncoder`] — 48 learnable half-hour slot embeddings.

use rand::Rng;

use tspn_data::{time_slot, Timestamp, TIME_SLOTS};
use tspn_geo::{BBox, GeoPoint};
use tspn_tensor::nn::{Conv2d, EmbeddingTable, Linear, Module};
use tspn_tensor::Tensor;

/// Remote-sensing image embedding module (`Me1`).
pub struct Me1 {
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    project: Linear,
    image_size: usize,
    dm: usize,
}

impl Me1 {
    /// Channel plan of the three stride-2 convolutions.
    const CHANNELS: [usize; 4] = [3, 8, 16, 16];

    /// Creates the encoder for `image_size²` RGB inputs and `dm` outputs.
    pub fn new(rng: &mut impl Rng, image_size: usize, dm: usize) -> Self {
        assert!(
            image_size >= 8 && image_size.is_power_of_two(),
            "image_size must be a power of two ≥ 8"
        );
        let c = Self::CHANNELS;
        let final_side = image_size / 8; // three stride-2 halvings
        Me1 {
            conv1: Conv2d::new(rng, c[0], c[1], 3, 2, 1),
            conv2: Conv2d::new(rng, c[1], c[2], 3, 2, 1),
            conv3: Conv2d::new(rng, c[2], c[3], 3, 2, 1),
            project: Linear::new(rng, c[3] * final_side * final_side, dm),
            image_size,
            dm,
        }
    }

    /// Embedding dimension.
    pub fn dm(&self) -> usize {
        self.dm
    }

    /// Embeds a stacked `[n, 3, s, s]` batch → unnormalised rows `[n, dm]`.
    ///
    /// The whole batch flows through each convolution as a **single**
    /// im2col + GEMM ([`Tensor::conv2d_batch`]), so the blocked kernels see
    /// one large product per layer instead of `n` tiny ones — the hot path
    /// of `batch_tables`, which embeds every quad-tree tile per gradient
    /// step.
    pub fn embed_batch(&self, batch: &Tensor) -> Tensor {
        let n = batch.shape().dim(0);
        let h1 = self.conv1.forward_batch(batch).relu();
        let h2 = self.conv2.forward_batch(&h1).relu();
        let h3 = self.conv3.forward_batch(&h2).relu();
        // [n, C, fs, fs] is row-major per image, so the flatten to the
        // projection input is a pure reshape.
        let flat = h3.reshape(vec![n, self.project.in_dim()]);
        self.project.forward(&flat)
    }

    /// Embeds a batch of images into unnormalised rows `[n, dm]` — used
    /// when the model mixes in a learnable per-tile correction before the
    /// final normalisation.
    pub fn embed_tiles_raw(&self, images: &[Tensor]) -> Tensor {
        assert!(!images.is_empty(), "no tile images given");
        let s = self.image_size;
        let rows: Vec<Tensor> = images
            .iter()
            .map(|img| {
                assert_eq!(img.shape().0, vec![3, s, s], "image shape mismatch");
                img.reshape(vec![1, 3 * s * s])
            })
            .collect();
        // Stacking through concat keeps per-image gradients flowing for
        // differentiable inputs; the embed itself is fully batched.
        let batch = Tensor::concat_rows(&rows).reshape(vec![images.len(), 3, s, s]);
        self.embed_batch(&batch)
    }

    /// Packs raw CHW float buffers (`3·s·s` each, as stored in the spatial
    /// context) into one pooled `[n, 3, s, s]` input tensor. The result is
    /// a plain leaf (no grad history), so the model may cache it across
    /// steps keyed by the context revision — the copy is pure input
    /// staging, identical every step until the imagery is swapped.
    pub fn pack_tiles_chw(&self, images: &[Vec<f32>]) -> Tensor {
        assert!(!images.is_empty(), "no tile images given");
        let s = self.image_size;
        let plane = 3 * s * s;
        let mut buf = tspn_tensor::pool::take_uninit(images.len() * plane);
        for (i, chw) in images.iter().enumerate() {
            assert_eq!(chw.len(), plane, "image buffer length mismatch");
            buf[i * plane..(i + 1) * plane].copy_from_slice(chw);
        }
        Tensor::from_vec(buf, vec![images.len(), 3, s, s])
    }

    /// Like [`Me1::embed_tiles_raw`], but over raw CHW float buffers via
    /// [`Me1::pack_tiles_chw`]; keeping the context tensor-free is what
    /// lets the trainer share it across threads.
    pub fn embed_tiles_chw(&self, images: &[Vec<f32>]) -> Tensor {
        self.embed_batch(&self.pack_tiles_chw(images))
    }

    /// Embeds a batch of images into the tile embedding table
    /// `E_T [n, dm]`, L2-normalised per row as in the paper.
    pub fn embed_tiles(&self, images: &[Tensor]) -> Tensor {
        self.embed_tiles_raw(images).l2_normalize_rows()
    }
}

impl Module for Me1 {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.conv3.params());
        p.extend(self.project.params());
        p
    }
}

/// POI information embedding module (`Me2`).
pub struct Me2 {
    /// Per-POI id embeddings `[num_pois, dm]`.
    pub id_table: EmbeddingTable,
    /// Per-category embeddings `[num_categories, dm]`.
    pub cate_table: EmbeddingTable,
    alpha: f32,
}

impl Me2 {
    /// Creates the module. `alpha` is the id/category merge ratio; pass
    /// `1.0` for the "No POI Category" ablation.
    pub fn new(
        rng: &mut impl Rng,
        num_pois: usize,
        num_categories: usize,
        dm: usize,
        alpha: f32,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
        Me2 {
            id_table: EmbeddingTable::new(rng, num_pois, dm),
            cate_table: EmbeddingTable::new(rng, num_categories, dm),
            alpha,
        }
    }

    /// The merge ratio α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Embeds POIs given parallel id and category index slices → `[n, dm]`.
    pub fn embed(&self, poi_ids: &[usize], cate_ids: &[usize]) -> Tensor {
        assert_eq!(poi_ids.len(), cate_ids.len(), "id/category length mismatch");
        let ids = self.id_table.lookup(poi_ids);
        if self.alpha >= 1.0 {
            return ids;
        }
        let cates = self.cate_table.lookup(cate_ids);
        ids.scale(self.alpha).add(&cates.scale(1.0 - self.alpha))
    }
}

impl Module for Me2 {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.id_table.params();
        p.extend(self.cate_table.params());
        p
    }
}

/// The sinusoidal spatial encoder `M_s` (Eq. 4): the first `d_m/2`
/// channels encode normalised x, the rest encode normalised y, with
/// interleaved sin/cos at geometrically spaced frequencies.
#[derive(Debug, Clone)]
pub struct SpatialEncoder {
    dm: usize,
    region: BBox,
}

impl SpatialEncoder {
    /// Creates an encoder emitting `dm`-dimensional codes for locations in
    /// `region`.
    pub fn new(dm: usize, region: BBox) -> Self {
        assert!(
            dm >= 4 && dm.is_multiple_of(4),
            "spatial encoder needs dm divisible by 4"
        );
        SpatialEncoder { dm, region }
    }

    /// Raw positional code `h_loc` for a location (paper Eq. 4), without
    /// any learnable component.
    pub fn encode(&self, loc: &GeoPoint) -> Vec<f32> {
        let (x, y) = self.region.normalize(&self.region.clamp(loc));
        self.encode_normalized(x as f32, y as f32)
    }

    /// Encoding of already-normalised unit-square coordinates — the form
    /// plotted in the paper's Fig. 8.
    ///
    /// Note on fidelity: Eq. 4 as printed continues the denominator
    /// exponent `2i/d_m` into the y half (`i ≥ d_m/4`), which would give y
    /// only the low-frequency tail and make similarity almost insensitive
    /// to latitude — contradicting the radially symmetric decay the paper
    /// itself shows in Fig. 8. We therefore restart the frequency ladder
    /// for the y half so both axes cover the full `1 … 10000` denominator
    /// range, which reproduces Fig. 8's behaviour.
    pub fn encode_normalized(&self, x: f32, y: f32) -> Vec<f32> {
        let dm = self.dm;
        let mut h = vec![0.0f32; dm];
        // Positions are scaled up so city-scale differences fall in the
        // sensitive range of the sinusoids.
        let scale = 20.0;
        let quarter = dm / 4;
        for i in 0..quarter {
            let denom = 10_000f32.powf(i as f32 / quarter as f32);
            h[2 * i] = (scale * x / denom).sin();
            h[2 * i + 1] = (scale * x / denom).cos();
        }
        for j in 0..quarter {
            let i = quarter + j;
            let denom = 10_000f32.powf(j as f32 / quarter as f32);
            h[2 * i] = (scale * y / denom).sin();
            h[2 * i + 1] = (scale * y / denom).cos();
        }
        h
    }

    /// Stacks encodings for a location sequence → `[n, dm]` (data tensor;
    /// the encoding has no trainable parameters).
    pub fn encode_seq(&self, locs: &[GeoPoint]) -> Tensor {
        assert!(!locs.is_empty(), "empty location sequence");
        let mut data = Vec::with_capacity(locs.len() * self.dm);
        for loc in locs {
            data.extend(self.encode(loc));
        }
        Tensor::from_vec(data, vec![locs.len(), self.dm])
    }

    /// Cosine similarity between the encodings of two normalised points —
    /// the quantity visualised in Fig. 8.
    pub fn cosine(&self, a: (f32, f32), b: (f32, f32)) -> f32 {
        let ha = self.encode_normalized(a.0, a.1);
        let hb = self.encode_normalized(b.0, b.1);
        let dot: f32 = ha.iter().zip(&hb).map(|(p, q)| p * q).sum();
        let na: f32 = ha.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = hb.iter().map(|v| v * v).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-9)
    }
}

/// The temporal encoder `M_t`: a learnable embedding per half-hour slot.
pub struct TemporalEncoder {
    /// `[48, dm]` slot table.
    pub slots: EmbeddingTable,
}

impl TemporalEncoder {
    /// Creates the encoder.
    pub fn new(rng: &mut impl Rng, dm: usize) -> Self {
        TemporalEncoder {
            slots: EmbeddingTable::new(rng, TIME_SLOTS, dm),
        }
    }

    /// Slot embeddings for a timestamp sequence → `[n, dm]`.
    pub fn encode_seq(&self, times: &[Timestamp]) -> Tensor {
        assert!(!times.is_empty(), "empty time sequence");
        let idx: Vec<usize> = times.iter().map(|&t| time_slot(t)).collect();
        self.slots.lookup(&idx)
    }
}

impl Module for TemporalEncoder {
    fn params(&self) -> Vec<Tensor> {
        self.slots.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn me1_shapes_and_normalisation() {
        let mut rng = StdRng::seed_from_u64(1);
        let me1 = Me1::new(&mut rng, 16, 24);
        let imgs: Vec<Tensor> = (0..3)
            .map(|i| Tensor::full(0.1 * (i as f32 + 1.0), vec![3, 16, 16]))
            .collect();
        let et = me1.embed_tiles(&imgs);
        assert_eq!(et.shape().0, vec![3, 24]);
        // Rows are unit-norm.
        let v = et.to_vec();
        for r in 0..3 {
            let norm: f32 = v[r * 24..(r + 1) * 24]
                .iter()
                .map(|x| x * x)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "row {r} norm {norm}");
        }
    }

    #[test]
    fn me1_distinguishes_different_images() {
        let mut rng = StdRng::seed_from_u64(2);
        let me1 = Me1::new(&mut rng, 16, 16);
        let a = Tensor::full(0.9, vec![3, 16, 16]);
        let mut checker = vec![0.0f32; 3 * 16 * 16];
        for (i, v) in checker.iter_mut().enumerate() {
            *v = if (i / 16 + i % 16) % 2 == 0 { 1.0 } else { 0.0 };
        }
        let b = Tensor::from_vec(checker, vec![3, 16, 16]);
        let et = me1.embed_tiles(&[a, b]).to_vec();
        let dist: f32 = (0..16).map(|i| (et[i] - et[16 + i]).abs()).sum();
        assert!(dist > 0.05, "embeddings too close: {dist}");
    }

    /// The per-image reference pipeline (naive conv loops) for comparison
    /// against the batched im2col + GEMM path.
    fn embed_reference(me1: &Me1, images: &[Vec<f32>]) -> Tensor {
        let s = me1.image_size;
        let rows: Vec<Tensor> = images
            .iter()
            .map(|chw| {
                let x = Tensor::from_vec(chw.clone(), vec![3, s, s]);
                let c1 = &me1.conv1;
                let h1 = x
                    .conv2d_reference(&c1.weight, &c1.bias, c1.stride, c1.padding)
                    .relu();
                let c2 = &me1.conv2;
                let h2 = h1
                    .conv2d_reference(&c2.weight, &c2.bias, c2.stride, c2.padding)
                    .relu();
                let c3 = &me1.conv3;
                let h3 = h2
                    .conv2d_reference(&c3.weight, &c3.bias, c3.stride, c3.padding)
                    .relu();
                me1.project
                    .forward(&h3.flatten().reshape(vec![1, me1.project.in_dim()]))
            })
            .collect();
        Tensor::concat_rows(&rows)
    }

    fn me1_test_images(count: usize) -> Vec<Vec<f32>> {
        (0..count)
            .map(|i| {
                (0..3 * 8 * 8)
                    .map(|v| ((v as f32 + i as f32 * 31.0) * 0.37).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn me1_batched_backward_matches_reference_path() {
        // Analytic gradients of the batched im2col+GEMM pipeline vs the
        // naive per-image reference pipeline on identical parameters —
        // the tight end-to-end guard on the conv backward wiring.
        let mut rng = StdRng::seed_from_u64(9);
        let me1 = Me1::new(&mut rng, 8, 6);
        let images = me1_test_images(3);
        let params = me1.params();

        tspn_tensor::optim::zero_grad(&params);
        me1.embed_tiles_chw(&images).square().sum_all().backward();
        let batched: Vec<Vec<f32>> = params.iter().map(|p| p.grad()).collect();

        tspn_tensor::optim::zero_grad(&params);
        embed_reference(&me1, &images).square().sum_all().backward();
        let reference: Vec<Vec<f32>> = params.iter().map(|p| p.grad()).collect();

        for (pi, (b, r)) in batched.iter().zip(&reference).enumerate() {
            for (i, (bv, rv)) in b.iter().zip(r).enumerate() {
                assert!(
                    (bv - rv).abs() <= 1e-4 * rv.abs().max(1.0),
                    "param {pi} grad {i}: batched {bv} vs reference {rv}"
                );
            }
        }
    }

    #[test]
    fn me1_gradcheck_through_batched_path() {
        // Finite differences through the full batched pipeline: batched
        // im2col+GEMM convs → reshape → projection. Restricted to the
        // projection parameters (the path past every convolution): ReLU
        // kinks make full-parameter finite differences unreliable, and the
        // conv parameters are covered analytically by
        // `me1_batched_backward_matches_reference_path` plus the op-level
        // gradcheck in `tspn-tensor`'s `prop_conv`.
        let mut rng = StdRng::seed_from_u64(9);
        let me1 = Me1::new(&mut rng, 8, 6);
        let images = me1_test_images(2);
        let params = me1.project.params();
        let report = tspn_tensor::gradcheck::grad_check(
            &params,
            move || me1.embed_tiles_chw(&images).square().sum_all().scale(0.1),
            1e-2,
        );
        assert!(
            report.max_rel_err < 5e-2 || report.max_abs_err < 5e-3,
            "batched Me1 gradients disagree with finite differences: {report:?}"
        );
    }

    #[test]
    fn me1_batched_embedding_is_thread_count_invariant() {
        // Forced-serial (worker scope) vs top-level (pool dispatch) runs
        // must agree bitwise — the forced TSPN_NUM_THREADS=3 CI lane turns
        // this into a real multi-thread equivalence check.
        let mut rng = StdRng::seed_from_u64(10);
        let me1 = Me1::new(&mut rng, 16, 24);
        let images: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                (0..3 * 16 * 16)
                    .map(|v| ((v * (i + 3)) % 23) as f32 * 0.08 - 0.9)
                    .collect()
            })
            .collect();
        let top = me1.embed_tiles_chw(&images).to_vec();
        let serial =
            tspn_tensor::parallel::with_worker_scope(|| me1.embed_tiles_chw(&images).to_vec());
        assert!(
            top == serial,
            "Me1 embedding depends on the worker-pool thread count"
        );
    }

    #[test]
    fn me2_blends_id_and_category() {
        let mut rng = StdRng::seed_from_u64(3);
        let me2 = Me2::new(&mut rng, 10, 4, 8, 0.5);
        // Two POIs sharing a category are pulled together relative to the
        // pure-id distance.
        let same_cat = me2.embed(&[0, 1], &[2, 2]).to_vec();
        let id_only = Me2::new(&mut rng, 10, 4, 8, 1.0);
        assert_eq!(same_cat.len(), 16);
        assert_eq!(id_only.embed(&[0], &[0]).cols(), 8);
    }

    #[test]
    fn me2_alpha_one_ignores_category_table() {
        let mut rng = StdRng::seed_from_u64(4);
        let me2 = Me2::new(&mut rng, 5, 3, 6, 1.0);
        let a = me2.embed(&[2], &[0]).to_vec();
        let b = me2.embed(&[2], &[2]).to_vec();
        assert_eq!(a, b, "alpha=1 must not depend on category");
    }

    #[test]
    fn spatial_similarity_decays_with_distance() {
        // The Fig. 8 property: nearby points have higher cosine similarity.
        let enc = SpatialEncoder::new(32, BBox::new(0.0, 0.0, 1.0, 1.0));
        let anchor = (0.42, 0.38);
        let near = enc.cosine(anchor, (0.44, 0.40));
        let mid = enc.cosine(anchor, (0.60, 0.55));
        let far = enc.cosine(anchor, (0.95, 0.90));
        assert!(near > mid, "near {near} vs mid {mid}");
        assert!(mid > far, "mid {mid} vs far {far}");
        assert!(
            near > 0.8,
            "adjacent points should be highly similar: {near}"
        );
    }

    #[test]
    fn spatial_encoding_separates_x_and_y() {
        let enc = SpatialEncoder::new(16, BBox::new(0.0, 0.0, 1.0, 1.0));
        let a = enc.encode_normalized(0.2, 0.7);
        let b = enc.encode_normalized(0.7, 0.2);
        assert_ne!(a, b, "x/y swapped encodings must differ");
        // First half encodes x only.
        let c = enc.encode_normalized(0.2, 0.9);
        assert_eq!(&a[..8], &c[..8], "x half should be independent of y");
    }

    #[test]
    fn temporal_encoder_is_slot_periodic() {
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TemporalEncoder::new(&mut rng, 8);
        let day = 86_400;
        let same = enc.encode_seq(&[3_600, day + 3_600]).to_vec();
        assert_eq!(&same[..8], &same[8..], "same slot next day must match");
        let differ = enc.encode_seq(&[3_600, 13 * 3_600]).to_vec();
        assert_ne!(&differ[..8], &differ[8..]);
    }

    #[test]
    fn temporal_encoder_is_trainable() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = TemporalEncoder::new(&mut rng, 4);
        let out = enc.encode_seq(&[0]);
        let loss = out.square().sum_all();
        loss.backward();
        assert!(enc.slots.weight.grad().iter().any(|g| g.abs() > 0.0));
    }
}
