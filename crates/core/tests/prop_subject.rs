//! The payload-addressing acceptance contract: an ad-hoc subject built
//! from a sample's raw check-in stream must predict **bitwise**
//! identically to the dataset-indexed sample — for every trajectory in
//! the dataset, at every batch composition mixing indexed, payload, and
//! session-style (incrementally assembled) queries, on both the batched
//! pool-sharded path and the per-subject reference path.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use tspn_core::{Partition, Predictor, Query, SpatialContext, Subject, TspnConfig, TspnRa};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::{AdHocTrajectory, Sample, UserId, Visit, DEFAULT_GAP_SECS};

fn config() -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 1,
        hgat_layers: 1,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        ..TspnConfig::default()
    }
}

/// Context and samples are immutable, `Sync`, and expensive; build once.
/// Models/predictors are built per test (the tape is `Rc`-based and
/// thread-pinned); the fixed seeds make every instance bitwise identical.
fn setup_ctx() -> &'static (SpatialContext, Vec<Sample>) {
    static SETUP: OnceLock<(SpatialContext, Vec<Sample>)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut dcfg = nyc_mini(0.1);
        dcfg.days = 12;
        let (ds, world) = generate_dataset(dcfg);
        let ctx = SpatialContext::build(ds, world, &config());
        let samples = ctx.dataset.all_samples();
        (ctx, samples)
    })
}

/// A fresh deterministic predictor over its own copy of the dataset
/// (identical to `setup_ctx`'s by construction).
fn setup_predictor() -> (Predictor, Vec<Sample>) {
    let mut dcfg = nyc_mini(0.1);
    dcfg.days = 12;
    let (ds, world) = generate_dataset(dcfg);
    let ctx = SpatialContext::build(ds, world, &config());
    let samples = ctx.dataset.all_samples();
    (Predictor::new(config(), ctx), samples)
}

/// The payload subject equivalent to an indexed sample: its raw check-in
/// stream, re-split server-style at the trajectory gap.
fn payload_subject(ctx: &SpatialContext, s: &Sample) -> Arc<AdHocTrajectory> {
    let stream = ctx.dataset.sample_checkins(s);
    Arc::new(
        AdHocTrajectory::from_checkins(UserId(s.user_index), &stream, DEFAULT_GAP_SECS)
            .expect("dataset streams are valid"),
    )
}

/// A session-style subject: the same stream assembled from incremental
/// appends (history first, then the current prefix visit by visit), as
/// the server-side session store accumulates it.
fn session_subject(ctx: &SpatialContext, s: &Sample) -> Arc<AdHocTrajectory> {
    let stream = ctx.dataset.sample_checkins(s);
    let mut assembled: Vec<Visit> = Vec::new();
    let history_len = stream.len() - s.prefix_len.min(stream.len());
    assembled.extend_from_slice(&stream[..history_len]);
    for v in &stream[history_len..] {
        assembled.push(*v); // one append per observed visit
    }
    Arc::new(
        AdHocTrajectory::from_checkins(UserId(s.user_index), &assembled, DEFAULT_GAP_SECS)
            .expect("assembled streams are valid"),
    )
}

#[test]
fn every_in_dataset_trajectory_predicts_identically_by_payload_and_index() {
    // Exhaustive over the dataset, including the true online next-visit
    // queries (prefix_len == trajectory length, which all_samples never
    // yields): one big mixed batch of indexed/payload pairs, answered by
    // the batched pool-sharded path, then spot-checked per-subject.
    let (pred, samples) = setup_predictor();
    let samples = &samples;
    let ctx = pred.ctx();
    let mut queries: Vec<Query> = Vec::with_capacity(samples.len() * 2);
    for s in samples {
        queries.push(Query::with_top(*s, 4, 10));
        queries.push(Query {
            subject: Subject::AdHoc(payload_subject(ctx, s)),
            k: 4,
            top: 10,
        });
    }
    // Next-visit queries for every trajectory's full length.
    let mut next_visit: Vec<Sample> = Vec::new();
    for (ui, user) in ctx.dataset.users.iter().enumerate() {
        for (ti, traj) in user.trajectories.iter().enumerate() {
            next_visit.push(Sample {
                user_index: ui,
                traj_index: ti,
                prefix_len: traj.visits.len(),
            });
        }
    }
    for s in &next_visit {
        queries.push(Query::with_top(*s, 4, 10));
        queries.push(Query {
            subject: Subject::AdHoc(payload_subject(ctx, s)),
            k: 4,
            top: 10,
        });
    }

    let answers = pred.predict_batch(&queries);
    for pair in answers.chunks(2) {
        assert_eq!(pair[0], pair[1], "payload diverged from index");
    }
    // Reference-path spot checks (first, last, and a middle pair).
    for i in [0usize, (queries.len() / 2) & !1, queries.len() - 2] {
        let indexed = pred.predict_one(&queries[i]);
        let payload = pred.predict_one(&queries[i + 1]);
        assert_eq!(indexed, payload);
        assert_eq!(indexed, answers[i]);
    }
}

#[test]
fn validation_accepts_all_payloads_and_rejects_corrupted_ones() {
    let (pred, samples) = setup_predictor();
    let ctx = pred.ctx();
    for s in samples.iter().take(8) {
        let subject = Subject::AdHoc(payload_subject(ctx, s));
        pred.validate_subject(&subject).expect("valid payload");
    }
    let vocab = ctx.dataset.pois.len();
    let bad = Subject::AdHoc(Arc::new(AdHocTrajectory {
        user: UserId(0),
        history: Vec::new(),
        current: vec![Visit {
            poi: tspn_data::PoiId(vocab + 3),
            time: 0,
        }],
    }));
    assert!(pred.validate_subject(&bad).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random batch compositions: indexed, payload, and session-style
    /// subjects with mixed `k`, shuffled and with duplicates, run through
    /// one batched `predict_many` tape. Every answer must equal the
    /// indexed per-subject reference, bitwise — regardless of which other
    /// address modes share the batch.
    #[test]
    fn mixed_compositions_answer_bitwise_identically(
        picks in proptest::collection::vec((0..10_000usize, 0..3u8, 1..6usize), 1..24)
    ) {
        let (ctx, samples) = setup_ctx();
        let model = TspnRa::new(config(), ctx);
        let tables = tspn_tensor::Tensor::no_grad(|| model.batch_tables(ctx));
        let queries: Vec<(Subject, usize)> = picks
            .iter()
            .map(|&(i, mode, k)| {
                let s = samples[i % samples.len()];
                let subject = match mode {
                    0 => Subject::from(s),
                    1 => Subject::AdHoc(payload_subject(ctx, &s)),
                    _ => Subject::AdHoc(session_subject(ctx, &s)),
                };
                (subject, k)
            })
            .collect();
        let answers = model.predict_many(ctx, &queries, &tables);
        for (&(i, _, k), got) in picks.iter().zip(&answers) {
            let s = samples[i % samples.len()];
            let want = model.predict_with_k(ctx, &s, &tables, k);
            prop_assert_eq!(&got.poi_ranking, &want.poi_ranking, "composition broke {:?}", s);
            prop_assert_eq!(&got.tile_ranking, &want.tile_ranking);
            prop_assert_eq!(got.candidate_count, want.candidate_count);
        }
    }
}
