//! Property tests for the padded, masked batched forward: per-sample
//! losses, forward outputs and rankings must be **bitwise** identical to
//! the per-sample reference at every batch size, batch composition and
//! thread count; gradients must be bitwise identical for a batch of one
//! and bitwise thread-count-invariant at every size (multi-sample
//! gradients agree with the reference to float associativity — shared
//! tables receive the same contributions grouped per batched op instead
//! of per sample).

use std::sync::OnceLock;

use proptest::prelude::*;

use tspn_core::{Partition, SpatialContext, Subject, TspnConfig, TspnRa};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::Sample;
use tspn_tensor::{optim, parallel, Tensor};

fn config() -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 2,
        hgat_layers: 1,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        ..TspnConfig::default()
    }
}

/// Context and samples are immutable and expensive; build them once.
fn setup() -> &'static (SpatialContext, Vec<Sample>) {
    static SETUP: OnceLock<(SpatialContext, Vec<Sample>)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut dcfg = nyc_mini(0.1);
        dcfg.days = 14;
        let (ds, world) = generate_dataset(dcfg);
        let ctx = SpatialContext::build(ds, world, &config());
        let samples = ctx.dataset.all_samples();
        (ctx, samples)
    })
}

/// Picks a ragged batch: `span` indexes spread across the sample set so
/// prefix lengths 1‥max_prefix all occur.
fn pick(samples: &[Sample], picks: &[usize]) -> Vec<Sample> {
    picks.iter().map(|&i| samples[i % samples.len()]).collect()
}

/// Per-sample reference: losses under the same dropout stream.
fn reference_losses(model: &TspnRa, ctx: &SpatialContext, batch: &[Sample]) -> Vec<f32> {
    let tables = model.batch_tables(ctx);
    model.reseed_dropout(0xBEEF);
    batch
        .iter()
        .map(|s| model.loss(ctx, s, &tables).item())
        .collect()
}

fn batched_losses(model: &TspnRa, ctx: &SpatialContext, batch: &[Sample]) -> Vec<f32> {
    let tables = model.batch_tables(ctx);
    model.reseed_dropout(0xBEEF);
    model.loss_batch(ctx, batch, &tables).to_vec()
}

/// Gradient snapshot after one backward from the mean batch loss.
fn grads_of(loss: Tensor, params: &[Tensor]) -> Vec<Vec<f32>> {
    optim::zero_grad(params);
    loss.backward();
    params.iter().map(|p| p.grad()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_losses_match_per_sample_reference_bitwise(
        picks in proptest::collection::vec(0..10_000usize, 1..12)
    ) {
        let (ctx, samples) = setup();
        let batch = pick(samples, &picks);
        let model = TspnRa::new(config(), ctx);
        let reference = reference_losses(&model, ctx, &batch);
        let batched = batched_losses(&model, ctx, &batch);
        assert!(
            batched == reference,
            "losses diverged for picks {picks:?}:\n batched  {batched:?}\n reference {reference:?}"
        );
    }

    #[test]
    fn batched_rankings_match_per_sample_reference_bitwise(
        picks in proptest::collection::vec(0..10_000usize, 1..10),
        k in 1..6usize
    ) {
        let (ctx, samples) = setup();
        let batch = pick(samples, &picks);
        let model = TspnRa::new(config(), ctx);
        let tables = Tensor::no_grad(|| model.batch_tables(ctx));
        let queries: Vec<(Subject, usize)> = batch.iter().map(|&s| (Subject::from(s), k)).collect();
        let many = model.predict_many(ctx, &queries, &tables);
        for (s, got) in batch.iter().zip(&many) {
            let want = model.predict_with_k(ctx, s, &tables, k);
            prop_assert_eq!(&got.tile_ranking, &want.tile_ranking);
            prop_assert_eq!(&got.poi_ranking, &want.poi_ranking);
            prop_assert_eq!(got.candidate_count, want.candidate_count);
        }
    }
}

#[test]
fn fixed_batch_sizes_one_two_odd_max_match_reference_bitwise() {
    // The sizes the issue names explicitly, with ragged prefixes: 1, 2,
    // odd, and the full configured batch size upper bound.
    let (ctx, samples) = setup();
    let model = TspnRa::new(config(), ctx);
    for &(start, len) in &[(0usize, 1usize), (3, 2), (10, 5), (17, 16)] {
        let batch = pick(samples, &(start..start + len).collect::<Vec<_>>());
        let reference = reference_losses(&model, ctx, &batch);
        let batched = batched_losses(&model, ctx, &batch);
        assert!(
            batched == reference,
            "size {len}: batched {batched:?} vs reference {reference:?}"
        );
    }
}

#[test]
fn single_sample_gradients_match_reference_bitwise() {
    // With one sample the batched tape performs the reference tape's ops
    // in the reference order, so even the gradients are bit-for-bit.
    let (ctx, samples) = setup();
    let model = TspnRa::new(config(), ctx);
    let params = model.params();
    for &i in &[0usize, 7, 23] {
        let batch = pick(samples, &[i]);
        let tables = model.batch_tables(ctx);
        model.reseed_dropout(42);
        let reference = grads_of(model.loss(ctx, &batch[0], &tables), &params);
        let tables = model.batch_tables(ctx);
        model.reseed_dropout(42);
        let batched = grads_of(
            model.loss_batch(ctx, &batch, &tables).sum_all().scale(1.0),
            &params,
        );
        for (pi, (b, r)) in batched.iter().zip(&reference).enumerate() {
            assert!(b == r, "sample {i}: param {pi} gradients diverged");
        }
    }
}

#[test]
fn multi_sample_gradients_match_reference_within_tolerance() {
    // Multi-sample batches group each parameter's per-sample gradient
    // contributions per batched op instead of per sample; the sums agree
    // to float associativity.
    let (ctx, samples) = setup();
    let model = TspnRa::new(config(), ctx);
    let params = model.params();
    let batch = pick(samples, &(5..12).collect::<Vec<_>>());

    let tables = model.batch_tables(ctx);
    model.reseed_dropout(7);
    let inv = 1.0 / batch.len() as f32;
    let batched = grads_of(
        model.loss_batch(ctx, &batch, &tables).sum_all().scale(inv),
        &params,
    );

    let tables = model.batch_tables(ctx);
    model.reseed_dropout(7);
    let mut acc: Option<Tensor> = None;
    for s in &batch {
        let loss = model.loss(ctx, s, &tables);
        acc = Some(match acc {
            Some(a) => a.add(&loss),
            None => loss,
        });
    }
    let reference = grads_of(acc.expect("non-empty").scale(inv), &params);

    for (pi, (b, r)) in batched.iter().zip(&reference).enumerate() {
        for (j, (bv, rv)) in b.iter().zip(r).enumerate() {
            assert!(
                (bv - rv).abs() <= 2e-4 * rv.abs().max(1.0),
                "param {pi} grad {j}: batched {bv} vs reference {rv}"
            );
        }
    }
}

#[test]
fn batched_forward_is_thread_count_invariant() {
    // Forced-serial (worker scope) and top-level (pool dispatch) runs
    // must agree bitwise on losses, gradients and rankings; under the
    // CI's TSPN_NUM_THREADS=3 lane this is a real multi-thread check.
    let (ctx, samples) = setup();
    let model = TspnRa::new(config(), ctx);
    let params = model.params();
    let batch = pick(samples, &(0..9).collect::<Vec<_>>());
    let run = |forced_serial: bool| {
        let body = || {
            let tables = model.batch_tables(ctx);
            model.reseed_dropout(11);
            let losses = model.loss_batch(ctx, &batch, &tables).to_vec();
            let tables = model.batch_tables(ctx);
            model.reseed_dropout(11);
            let grads = grads_of(model.loss_batch(ctx, &batch, &tables).sum_all(), &params);
            let tables = Tensor::no_grad(|| model.batch_tables(ctx));
            let queries: Vec<(Subject, usize)> =
                batch.iter().map(|&s| (Subject::from(s), 4)).collect();
            let rankings: Vec<Vec<usize>> = model
                .predict_many(ctx, &queries, &tables)
                .into_iter()
                .map(|p| p.tile_ranking)
                .collect();
            (losses, grads, rankings)
        };
        if forced_serial {
            parallel::with_worker_scope(body)
        } else {
            body()
        }
    };
    let top = run(false);
    let serial = run(true);
    assert!(top.0 == serial.0, "losses depend on the thread count");
    assert!(top.1 == serial.1, "gradients depend on the thread count");
    assert!(top.2 == serial.2, "rankings depend on the thread count");
}

#[test]
fn ragged_prefixes_cover_length_one_and_max() {
    // Guard that the test corpus really is ragged: the picked spreads
    // must include a length-1 prefix and the configured maximum, so the
    // padding paths above are genuinely exercised.
    let (_ctx, samples) = setup();
    let lens: Vec<usize> = samples
        .iter()
        .take(40)
        .map(|s| s.prefix_len.min(config().max_prefix))
        .collect();
    assert!(lens.contains(&1), "no length-1 prefix in the corpus head");
    assert!(
        lens.iter().any(|&l| l >= 4),
        "no long prefix in the corpus head: {lens:?}"
    );
}
