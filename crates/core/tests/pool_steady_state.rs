//! Pool acceptance at the full-model level: after a warm-up epoch, the
//! training loop must be served overwhelmingly from recycled buffers.
//!
//! Lives in its own integration binary (= its own process) so the
//! process-global pool counters see only this test's traffic; an exact
//! zero-miss assertion for a fixed-shape loop lives in tspn-tensor's
//! `steady_state_alloc` test. Full model training keeps a small miss tail
//! because per-sample candidate sets produce occasional first-seen buffer
//! lengths.

use tspn_core::{Partition, SpatialContext, Trainer, TspnConfig};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::Sample;
use tspn_tensor::pool;

#[test]
fn steady_state_training_mostly_hits_the_buffer_pool() {
    let mut dcfg = nyc_mini(0.1);
    dcfg.days = 12;
    let (ds, world) = generate_dataset(dcfg);
    let cfg = TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 1,
        hgat_layers: 1,
        batch_size: 4,
        epochs: 1,
        lr: 5e-3,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        ..TspnConfig::default()
    };
    let ctx = SpatialContext::build(ds, world, &cfg);
    let samples = ctx.dataset.all_samples();
    let mut trainer = Trainer::new(cfg, ctx);
    let train: Vec<Sample> = samples.iter().take(16).copied().collect();

    // Warm-up: first-seen lengths allocate. The dense jagged batched
    // forward sizes its sequence tensors by each batch's total live
    // length, so different shuffles produce different buffer lengths —
    // a few epochs cover the length distribution.
    trainer.fit_epochs(&train, 3);
    pool::reset_stats();
    trainer.fit_epochs(&train, 1);
    let stats = pool::stats();
    assert!(
        stats.hits + stats.misses > 1000,
        "expected substantial pool traffic, saw {stats:?}"
    );
    // The jagged batch tensors' lengths depend on each shuffled batch's
    // total live positions, so a fresh shuffle keeps producing a few
    // first-seen lengths; the bulk of the traffic must still recycle.
    assert!(
        stats.hit_rate() > 0.85,
        "steady-state hit rate too low: {stats:?}"
    );
}
