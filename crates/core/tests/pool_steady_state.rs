//! Pool acceptance at the full-model level: after a warm-up epoch, the
//! training loop must be served overwhelmingly from recycled buffers.
//!
//! Lives in its own integration binary (= its own process) so the
//! process-global pool counters see only this test's traffic; an exact
//! zero-miss assertion for a fixed-shape loop lives in tspn-tensor's
//! `steady_state_alloc` test. Full model training keeps a small miss tail
//! because per-sample candidate sets produce occasional first-seen buffer
//! lengths.

use std::sync::Mutex;

use tspn_core::{Partition, SpatialContext, Trainer, TspnConfig};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::Sample;
use tspn_tensor::pool;

/// The pool counters are process-global; serialise the tests so each
/// sees only its own traffic.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn build_trainer() -> (Trainer, Vec<Sample>) {
    let mut dcfg = nyc_mini(0.1);
    dcfg.days = 12;
    let (ds, world) = generate_dataset(dcfg);
    let cfg = TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 1,
        hgat_layers: 1,
        batch_size: 4,
        epochs: 1,
        lr: 5e-3,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        ..TspnConfig::default()
    };
    let ctx = SpatialContext::build(ds, world, &cfg);
    let samples = ctx.dataset.all_samples();
    (Trainer::new(cfg, ctx), samples)
}

#[test]
fn steady_state_training_mostly_hits_the_buffer_pool() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mut trainer, samples) = build_trainer();
    let train: Vec<Sample> = samples.iter().take(16).copied().collect();

    // Warm-up: first-seen lengths allocate. The dense jagged batched
    // forward sizes its sequence tensors by each batch's total live
    // length, so different shuffles produce different buffer lengths —
    // a few epochs cover the length distribution.
    trainer.fit_epochs(&train, 3);
    pool::reset_stats();
    trainer.fit_epochs(&train, 1);
    let stats = pool::stats();
    assert!(
        stats.hits + stats.misses > 1000,
        "expected substantial pool traffic, saw {stats:?}"
    );
    // The jagged batch tensors' lengths depend on each shuffled batch's
    // total live positions, so a fresh shuffle keeps producing a few
    // first-seen lengths; the bulk of the traffic must still recycle.
    assert!(
        stats.hit_rate() > 0.85,
        "steady-state hit rate too low: {stats:?}"
    );
}

#[test]
fn steady_state_sharded_step_allocates_zero_tensor_buffers() {
    // The PR-9 acceptance bar for the sharded hot path: with shared
    // tables and delta sync, a steady-state sharded training epoch must
    // be served ENTIRELY from recycled buffers — pool misses == 0.
    // Repeating one sample keeps every tensor geometry identical across
    // batches regardless of shuffle order, and worker idle-spill plus
    // the trainer's per-step `pool::flush_thread_local` make warmed
    // buffers visible to every thread, so shard-to-thread assignment
    // cannot strand them. What remains scheduling-dependent is how many
    // buffers "enough" is: mid-batch, a checkout on one thread may be
    // served by a buffer another thread just spilled, so an unlucky
    // interleaving can demand one more. Nothing is discarded at this
    // scale, so the pool only grows — each unlucky interleaving
    // allocates at most once and the loop below must converge to
    // zero-miss epochs almost immediately. A hot path that allocated
    // per step would never converge and fails the bound. With
    // TSPN_NUM_THREADS=1 the serial path runs instead and clears the
    // bar on the first measured epoch.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mut trainer, samples) = build_trainer();
    trainer.set_delta_sync(true);
    let train = vec![samples[0]; 4];

    trainer.fit_epochs(&train, 3);
    let mut last = None;
    for _ in 0..6 {
        pool::reset_stats();
        trainer.fit_epochs(&train, 1);
        let stats = pool::stats();
        assert!(
            stats.hits > 200,
            "expected substantial pool traffic, saw {stats:?}"
        );
        if stats.misses == 0 {
            return;
        }
        last = Some(stats);
    }
    panic!("sharded steady state kept allocating tensor buffers: {last:?}");
}
