//! Property tests for the PR-9 training hot path: the delta parameter
//! sync must be bitwise identical to the full-copy fallback at every
//! batch size and thread count, and the shared-tables decomposition
//! (owner tape + shard gradient leaves + seeded backward) must reproduce
//! the straight-through serial tape bitwise.
//!
//! Thread count is whatever `TSPN_NUM_THREADS` says: at 1 both sync
//! modes take the serial path (trivially equal); CI re-runs this suite
//! with `TSPN_NUM_THREADS=3` (and `TSPN_SIMD=0`), where the sharded
//! machinery is fully exercised.

use std::sync::OnceLock;

use tspn_core::{BatchTables, Partition, SpatialContext, Trainer, TspnConfig, TspnRa};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::Sample;
use tspn_tensor::{optim, Tensor};

fn config(batch_size: usize) -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 1,
        hgat_layers: 1,
        batch_size,
        lr: 5e-3,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        ..TspnConfig::default()
    }
}

/// Context and samples are immutable and expensive; build them once.
fn setup() -> &'static (SpatialContext, Vec<Sample>) {
    static SETUP: OnceLock<(SpatialContext, Vec<Sample>)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut dcfg = nyc_mini(0.1);
        dcfg.days = 12;
        let (ds, world) = generate_dataset(dcfg);
        let ctx = SpatialContext::build(ds, world, &config(4));
        let samples = ctx.dataset.all_samples();
        (ctx, samples)
    })
}

fn flat_params(trainer: &Trainer) -> Vec<u32> {
    trainer
        .model
        .params()
        .iter()
        .flat_map(|p| p.to_vec())
        .map(f32::to_bits)
        .collect()
}

/// Trains `epochs` epochs with the given sync mode and returns the final
/// parameter bits.
fn train_with_sync(batch_size: usize, delta: bool, epochs: usize) -> Vec<u32> {
    let (ctx, samples) = setup();
    let mut trainer = Trainer::new(config(batch_size), ctx.clone());
    trainer.set_delta_sync(delta);
    let train: Vec<Sample> = samples.iter().take(17).copied().collect();
    trainer.fit_epochs(&train, epochs);
    flat_params(&trainer)
}

#[test]
fn delta_sync_is_bitwise_identical_to_full_copy_across_batch_sizes() {
    for batch_size in [1, 3, 4, 8] {
        let delta = train_with_sync(batch_size, true, 2);
        let full = train_with_sync(batch_size, false, 2);
        assert_eq!(
            delta, full,
            "sync modes diverged at batch_size {batch_size}"
        );
    }
}

#[test]
fn delta_sync_survives_external_parameter_mutation() {
    // mark_model_dirty must force a republish: train, clobber a
    // parameter out-of-band, train again — both modes must agree.
    let run = |delta: bool| {
        let (ctx, samples) = setup();
        let mut trainer = Trainer::new(config(4), ctx.clone());
        trainer.set_delta_sync(delta);
        let train: Vec<Sample> = samples.iter().take(12).copied().collect();
        trainer.fit_epochs(&train, 1);
        let p = &trainer.model.params()[trainer.model.table_params_len()];
        let doctored: Vec<f32> = p.to_vec().iter().map(|v| v * 0.5).collect();
        p.set_data(&doctored);
        trainer.mark_model_dirty();
        trainer.fit_epochs(&train, 1);
        flat_params(&trainer)
    };
    assert_eq!(run(true), run(false), "dirty-mark republish diverged");
}

#[test]
fn shared_tables_gradients_match_straight_through_tape_bitwise() {
    // Reference: one serial tape, loss differentiated straight through
    // batch_tables. Decomposed: the same loss against value-leaves (what
    // a shard sees), then the merged leaf gradients pushed through a
    // separately built tables tape with backward_seeded (what the owner
    // does). Leaf gradients must equal the reference's tables-node
    // gradients, and the final parameter gradients must match bitwise.
    let (ctx, samples) = setup();
    let batch: Vec<Sample> = samples.iter().take(6).copied().collect();
    let seed = 0x5EED;

    // --- straight-through reference ---
    let model_a = TspnRa::new(config(4), ctx);
    let params_a = model_a.params();
    let tables_a = model_a.batch_tables(ctx);
    model_a.reseed_dropout(seed);
    optim::zero_grad(&params_a);
    let loss_a = model_a
        .loss_batch(ctx, &batch, &tables_a)
        .sum_all()
        .scale(1.0 / batch.len() as f32);
    loss_a.backward();
    let tiles_grad_ref = tables_a.tiles.grad();
    let pois_grad_ref = tables_a.pois.grad();
    let grads_a: Vec<Vec<f32>> = params_a.iter().map(|p| p.grad()).collect();

    // --- shared-tables decomposition (same init: same config seed) ---
    let model_b = TspnRa::new(config(4), ctx);
    let params_b = model_b.params();
    let tables_tape = model_b.batch_tables(ctx);
    let leaves = BatchTables {
        tiles: Tensor::param(
            tables_tape.tiles.to_vec(),
            tables_tape.tiles.shape().0.clone(),
        ),
        pois: Tensor::param(
            tables_tape.pois.to_vec(),
            tables_tape.pois.shape().0.clone(),
        ),
    };
    model_b.reseed_dropout(seed);
    optim::zero_grad(&params_b);
    let loss_b = model_b
        .loss_batch(ctx, &batch, &leaves)
        .sum_all()
        .scale(1.0 / batch.len() as f32);
    loss_b.backward();
    assert_eq!(
        loss_a.item().to_bits(),
        loss_b.item().to_bits(),
        "loss must not depend on the decomposition"
    );
    let tiles_grad = leaves.tiles.grad();
    let pois_grad = leaves.pois.grad();
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&tiles_grad),
        bits(&tiles_grad_ref),
        "tile leaf gradients diverged from the tables-node reference"
    );
    assert_eq!(
        bits(&pois_grad),
        bits(&pois_grad_ref),
        "POI leaf gradients diverged from the tables-node reference"
    );
    // Owner-side merge: push the leaf gradients through the tables tape.
    tables_tape.tiles.backward_seeded(&tiles_grad);
    tables_tape.pois.backward_seeded(&pois_grad);
    for (i, (pa, pb)) in params_a.iter().zip(&params_b).enumerate() {
        assert_eq!(
            bits(&grads_a[i]),
            bits(&pb.grad()),
            "parameter {i} gradient diverged ({} vs {})",
            pa.shape(),
            pb.shape()
        );
    }
}
