//! CLI for `tspn-lint`.
//!
//! ```text
//! tspn-lint [--root <dir>] [--format text|json] [--list-rules]
//! ```
//!
//! Exit codes: 0 = no deny-level findings, 1 = deny-level findings,
//! 2 = usage or I/O error. Warn-level findings never fail the build.

use std::path::PathBuf;
use std::process::ExitCode;

use tspn_lint::diag::{render_json, Severity};
use tspn_lint::rules::RULES;

fn usage() -> &'static str {
    "usage: tspn-lint [--root <dir>] [--format text|json] [--list-rules]\n\
     \n\
     Walks every workspace .rs file (skipping target/, vendor/ and the\n\
     lint fixtures) and enforces the project contracts. Suppress a finding\n\
     with `// tspn-lint: allow(<rule>) — <reason>` on or above the line.\n"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => {
                    eprintln!("--format must be `text` or `json`\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{:<14} {:<5} {}", r.name, r.severity.name(), r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let diags = match tspn_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tspn-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let deny = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warn = diags.len() - deny;

    if format_json {
        print!("{}", render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        println!(
            "tspn-lint: {deny} deny, {warn} warn across {} finding(s)",
            diags.len()
        );
    }

    if deny > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
