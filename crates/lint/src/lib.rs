//! `tspn-lint` — the workspace static-analysis pass.
//!
//! Dependency-free by design: a hand-written lexer ([`lexer`]), typed
//! diagnostics with a hand-rendered JSON form ([`diag`]), and a rule
//! engine ([`rules`]) enforcing the project's determinism, unsafe-hygiene
//! and panic-freedom contracts. See `crates/lint/README.md` for the rule
//! catalogue and the suppression syntax.
//!
//! The library surface takes `(path, contents)` pairs so fixture tests can
//! lint virtual files without touching the filesystem; [`lint_workspace`]
//! is the thin disk-walking wrapper the binary uses.

pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::{render_json, Diagnostic, Severity};

use rules::{env_registry, hash_order, serve_panic, unsafe_safety, wall_clock, SourceFile};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Lints a set of in-memory files. `files` is `(workspace-relative path,
/// contents)`; `knobs_md` is the content of `docs/KNOBS.md` when present.
/// Returns diagnostics sorted by file/line/rule.
pub fn lint_files(files: &[(String, String)], knobs_md: Option<&str>) -> Vec<Diagnostic> {
    let registry = env_registry::parse_registry(knobs_md);
    let mut out = Vec::new();
    let mut live = BTreeSet::new();
    for (rel, src) in files {
        let file = SourceFile::new(rel, src);
        let mut raw = Vec::new();
        hash_order::check(&file, &mut raw);
        unsafe_safety::check(&file, &mut raw);
        serve_panic::check(&file, &mut raw);
        wall_clock::check(&file, &mut raw);
        env_registry::check_file(&file, &registry, knobs_md.is_some(), &mut raw, &mut live);
        rules::apply_suppressions(&file, raw, &mut out);
    }
    env_registry::check_dead_rows(&registry, &live, &mut out);
    diag::sort(&mut out);
    out
}

/// Directories the walker never descends into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "node_modules"];

/// Walks `root` for workspace `.rs` files (skipping build output, vendored
/// shims and the lint fixtures, which are deliberately rule-violating) and
/// lints them against `docs/KNOBS.md`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Deterministic order in, deterministic order out.
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let knobs = fs::read_to_string(root.join("docs/KNOBS.md")).ok();
    Ok(lint_files(&files, knobs.as_deref()))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            // The lint fixtures are known-bad snippets by construction.
            if rel.contains("tests/fixtures/") {
                continue;
            }
            let src = fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn end_to_end_clean_file() {
        let files = vec![(
            "crates/graph/src/ok.rs".to_string(),
            "use std::collections::BTreeSet;\nfn f(edges: &BTreeSet<u32>) -> u32 { edges.iter().sum() }\n".to_string(),
        )];
        let diags = lint_files(&files, Some("| knob | default |\n"));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn end_to_end_suppression_flow() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u32>) {\n\
                   \x20   // tspn-lint: allow(hash-order) — recycled buffers, order never observed\n\
                   \x20   m.drain();\n\
                   }\n";
        let files = vec![("crates/tensor/src/ok.rs".to_string(), src.to_string())];
        let diags = lint_files(&files, Some("| `X` |\n"));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn end_to_end_reasonless_suppression_denies() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u32>) {\n\
                   \x20   // tspn-lint: allow(hash-order)\n\
                   \x20   m.drain();\n\
                   }\n";
        let files = vec![("crates/tensor/src/ok.rs".to_string(), src.to_string())];
        let diags = lint_files(&files, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "suppression");
        assert_eq!(diags[0].severity, Severity::Deny);
    }

    #[test]
    fn end_to_end_env_registry_round_trip() {
        let files = vec![(
            "crates/serve/src/config.rs".to_string(),
            "fn f() { std::env::var(\"TSPN_NEW_KNOB\").ok(); }".to_string(),
        )];
        // Unregistered literal.
        let d = lint_files(&files, Some("| `TSPN_DEAD_KNOB` | 0 |\n"));
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("TSPN_NEW_KNOB")));
        assert!(d.iter().any(|x| x.message.contains("TSPN_DEAD_KNOB")));
        // Registered: clean.
        let d = lint_files(&files, Some("| `TSPN_NEW_KNOB` | 0 |\n"));
        assert!(d.is_empty(), "{d:?}");
    }
}
