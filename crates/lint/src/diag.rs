//! Typed diagnostics and their text / JSON renderers.

use std::fmt;

/// How seriously a finding is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, does not fail the build.
    Warn,
    /// Fails the build.
    Deny,
}

impl Severity {
    /// Stable lowercase name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding at a file:line span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule slug (`hash-order`, `unsafe-safety`, …).
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity.name(),
            self.rule,
            self.file,
            self.line,
            self.message
        )
    }
}

/// Orders diagnostics for stable output: file, then line, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the diagnostics (already sorted) as a stable JSON document:
/// `{"diagnostics":[…],"counts":{"deny":N,"warn":M}}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            d.severity.name(),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let deny = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warn = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    out.push_str(&format!(
        "],\n  \"counts\": {{\"deny\": {deny}, \"warn\": {warn}}}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut diags = vec![
            Diagnostic {
                rule: "b-rule",
                severity: Severity::Warn,
                file: "b.rs".into(),
                line: 2,
                message: "quote \" and \\ backslash".into(),
            },
            Diagnostic {
                rule: "a-rule",
                severity: Severity::Deny,
                file: "a.rs".into(),
                line: 10,
                message: "first".into(),
            },
        ];
        sort(&mut diags);
        assert_eq!(diags[0].file, "a.rs");
        let json = render_json(&diags);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\"deny\": 1"));
        assert!(json.contains("\"warn\": 1"));
    }

    #[test]
    fn empty_json() {
        let json = render_json(&[]);
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"deny\": 0"));
    }
}
