//! Rule `wall-clock`: deny wall-clock and ambient-entropy reads in the
//! compute crates (`core`, `tensor`, `graph`) outside tests.
//!
//! The bitwise contracts (tier-vs-tier, batch-vs-per-sample,
//! lane-vs-offline) only hold if nothing in the compute path observes
//! time or an unseeded RNG. Timing *metadata* (epoch stats) is a
//! legitimate, suppressed exception — the suppression comment is where
//! the reviewer asserts the value never feeds computation.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::{is_ident, is_punct, SourceFile};

/// Crates whose non-test code must be clock-free.
const COMPUTE_CRATES: &[&str] = &["core", "tensor", "graph"];

/// Type names whose `::now()` reads the wall clock.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Free functions that read ambient entropy.
const ENTROPY_FNS: &[&str] = &["thread_rng", "from_entropy"];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    match file.crate_name() {
        Some(c) if COMPUTE_CRATES.contains(&c) => {}
        _ => return,
    }
    if file.all_test {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(t.line) {
            continue;
        }
        // `Instant::now` / `SystemTime::now` (any path prefix).
        if t.text == "now"
            && i >= 3
            && is_punct(&toks[i - 1], ':')
            && is_punct(&toks[i - 2], ':')
            && toks[i - 3].kind == TokenKind::Ident
            && CLOCK_TYPES.contains(&toks[i - 3].text.as_str())
        {
            out.push(Diagnostic {
                rule: "wall-clock",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`{}::now()` in a compute crate breaks cross-process \
                     reproducibility; thread timing out of the compute path \
                     or suppress with the reason it never feeds computation",
                    toks[i - 3].text
                ),
            });
        }
        // `thread_rng()` / `from_entropy()` — ambient entropy.
        if ENTROPY_FNS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], '(')
            // Only call position; `use rand::thread_rng;` is caught at the
            // call site instead.
            && !(i >= 1 && is_ident(&toks[i - 1], "fn"))
        {
            out.push(Diagnostic {
                rule: "wall-clock",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`{}()` seeds from ambient entropy; derive randomness \
                     from the fixed experiment seed instead",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_instant_now() {
        let d = run("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Instant::now()"));
    }

    #[test]
    fn flags_system_time_and_thread_rng() {
        let d = run("fn f() { let t = SystemTime::now(); let r = thread_rng(); }");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn duration_and_elapsed_are_fine() {
        let d = run("fn f(t: Instant) { let d = t.elapsed(); let z = Duration::from_millis(5); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn serve_crate_is_exempt() {
        let f = SourceFile::new("crates/serve/src/x.rs", "fn f() { Instant::now(); }");
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let d = run("#[test]\nfn t() { Instant::now(); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
