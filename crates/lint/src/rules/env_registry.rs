//! Rule `env-registry`: every `TSPN_*` env-knob string literal in the
//! workspace must appear in the `docs/KNOBS.md` registry table, and every
//! registry row must correspond to a live literal (no dead rows).
//!
//! This is the only cross-file rule: knob sites are collected per file
//! (suppressions apply normally), then the dead-row check runs once over
//! the whole workspace.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::SourceFile;

/// Registry table parsed from `docs/KNOBS.md`: knob name → 1-based line
/// of its row. Only markdown table rows (lines starting with `|`) count,
/// so prose mentioning a knob does not register it.
pub fn parse_registry(knobs_md: Option<&str>) -> BTreeMap<String, u32> {
    let mut reg = BTreeMap::new();
    let Some(md) = knobs_md else {
        return reg;
    };
    for (idx, line) in md.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for name in extract_knob_names(line) {
            reg.entry(name).or_insert(idx as u32 + 1);
        }
    }
    reg
}

/// Every maximal `TSPN_[A-Z0-9_]+` run in `s`.
pub fn extract_knob_names(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = s[start..].find("TSPN_") {
        let begin = start + pos;
        // Must not be the tail of a longer identifier run.
        if begin > 0 && is_knob_byte(bytes[begin - 1]) {
            start = begin + 5;
            continue;
        }
        let mut end = begin + 5;
        while end < bytes.len() && is_knob_byte(bytes[end]) {
            end += 1;
        }
        // `TSPN_` alone is a prefix, not a knob.
        if end > begin + 5 {
            out.push(s[begin..end].trim_end_matches('_').to_string());
        }
        start = end;
    }
    out
}

fn is_knob_byte(b: u8) -> bool {
    b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_'
}

/// Scans one file's non-test string literals for knob names. Names found
/// are added to `live` (whether or not they diagnose); unregistered names
/// diagnose at their site. Test scope is exempt: a name only a test
/// mentions is not a product knob, and CI matrix cells set registered
/// knobs that source code reads anyway.
pub fn check_file(
    file: &SourceFile,
    registry: &BTreeMap<String, u32>,
    registry_exists: bool,
    out: &mut Vec<Diagnostic>,
    live: &mut BTreeSet<String>,
) {
    for t in &file.lexed.tokens {
        if t.kind != TokenKind::Str || file.in_test(t.line) {
            continue;
        }
        for name in extract_knob_names(&t.text) {
            let registered = registry.contains_key(&name);
            live.insert(name.clone());
            if registered {
                continue;
            }
            let message = if registry_exists {
                format!(
                    "`{name}` is not registered in docs/KNOBS.md — add a row \
                     (name, default, owning crate, effect)"
                )
            } else {
                format!("`{name}` found but docs/KNOBS.md does not exist")
            };
            out.push(Diagnostic {
                rule: "env-registry",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: t.line,
                message,
            });
        }
    }
}

/// Registry rows with no live literal anywhere in the workspace.
pub fn check_dead_rows(
    registry: &BTreeMap<String, u32>,
    live: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (name, &line) in registry {
        if !live.contains(name) {
            out.push(Diagnostic {
                rule: "env-registry",
                severity: Severity::Deny,
                file: "docs/KNOBS.md".to_string(),
                line,
                message: format!(
                    "registry row `{name}` matches no string literal in the \
                     workspace — remove the dead row or restore the knob"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    #[test]
    fn extracts_names_and_trims_prefix_only() {
        assert_eq!(
            extract_knob_names("set TSPN_SIMD=0 and TSPN_NUM_THREADS"),
            vec!["TSPN_SIMD".to_string(), "TSPN_NUM_THREADS".to_string()]
        );
        assert!(extract_knob_names("just TSPN_ alone").is_empty());
        // Trailing underscore (format prefix) normalises to the base name.
        assert_eq!(
            extract_knob_names("TSPN_SERVE_FAULT_"),
            vec!["TSPN_SERVE_FAULT".to_string()]
        );
    }

    #[test]
    fn registry_rows_only_from_tables() {
        let md = "# Knobs\nProse mentions `TSPN_PROSE_ONLY`.\n\n| knob | default |\n| --- | --- |\n| `TSPN_SIMD` | 1 |\n";
        let reg = parse_registry(Some(md));
        assert!(reg.contains_key("TSPN_SIMD"));
        assert!(!reg.contains_key("TSPN_PROSE_ONLY"));
        assert_eq!(reg["TSPN_SIMD"], 6);
    }

    #[test]
    fn unregistered_literal_diagnoses() {
        let f = SourceFile::new(
            "crates/core/src/x.rs",
            "fn f() { std::env::var(\"TSPN_MYSTERY_KNOB\").ok(); }",
        );
        let reg = parse_registry(Some("| `TSPN_SIMD` |\n"));
        let mut out = Vec::new();
        let mut live = BTreeSet::new();
        check_file(&f, &reg, true, &mut out, &mut live);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("TSPN_MYSTERY_KNOB"));
        assert!(live.contains("TSPN_MYSTERY_KNOB"));
    }

    #[test]
    fn dead_row_diagnoses() {
        let reg = parse_registry(Some("| `TSPN_GONE` | 0 |\n"));
        let live = BTreeSet::new();
        let mut out = Vec::new();
        check_dead_rows(&reg, &live, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("TSPN_GONE"));
        assert_eq!(out[0].file, "docs/KNOBS.md");
    }
}
