//! Rules `serve-panic` (deny) and `serve-index` (warn): the serve request
//! path must not be able to panic.
//!
//! A panic in a batcher flush or connection handler takes down an entire
//! lane of in-flight requests (the PR 6 supervisor can rebuild, but every
//! queued request on that lane is lost). Request-path modules must return
//! typed `ApiError`/`ReadError` values instead.
//!
//! `serve-index` is a separate warn-tier rule: indexing/slicing can panic
//! too, but the HTTP parser's bounds-checked-by-construction slices would
//! drown the deny tier in suppressions — so slices get flagged softly and
//! reviewed, while `unwrap`/`expect`/`panic!` stay hard errors.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::{is_punct, SourceFile};

/// Request-handling modules under `crates/serve/src/`.
const SERVE_PATH_FILES: &[&str] = &[
    "http.rs",
    "protocol.rs",
    "server.rs",
    "mux.rs",
    "router.rs",
    "session.rs",
    "batcher.rs",
];

/// Methods that panic on the failure arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that panic unconditionally when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn applies(file: &SourceFile) -> bool {
    if file.crate_name() != Some("serve") {
        return false;
    }
    let Some(name) = file.rel.rsplit('/').next() else {
        return false;
    };
    file.rel.contains("/src/") && SERVE_PATH_FILES.contains(&name)
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !applies(file) || file.all_test {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(t.line) {
            continue;
        }
        // `.unwrap(` / `.expect(` — method position only, so a local
        // helper named `unwrap_or_shed` or a field is not flagged.
        if PANIC_METHODS.contains(&t.text.as_str())
            && i >= 1
            && is_punct(&toks[i - 1], '.')
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], '(')
        {
            out.push(Diagnostic {
                rule: "serve-panic",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`.{}()` on the serve request path can panic a lane; \
                     return a typed ApiError/ReadError (or recover poisons \
                     with `unwrap_or_else(|p| p.into_inner())`)",
                    t.text
                ),
            });
        }
        // `panic!(`-family macros.
        if PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], '!')
        {
            out.push(Diagnostic {
                rule: "serve-panic",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`{}!` on the serve request path aborts the worker; \
                     surface a typed error instead",
                    t.text
                ),
            });
        }
        // `name[` / `)[` / `][` — indexing or slicing expression. Warn
        // tier: panics on out-of-range, but parser slices are often
        // bounds-checked by construction.
        if i + 1 < toks.len() && is_punct(&toks[i + 1], '[') {
            let indexee_ok = t.kind == TokenKind::Ident && !is_keyword_before_bracket(&t.text);
            if indexee_ok && !is_attr_or_decl_context(toks, i) {
                out.push(Diagnostic {
                    rule: "serve-index",
                    severity: Severity::Warn,
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{}[…]` indexing can panic on the request path; \
                         prefer get()/checked slicing",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Identifiers that legitimately precede `[` without being an indexing
/// base: type/keyword positions (`let x: [u8; 4]`, `impl Index<…>`,
/// `-> [f32; 8]`, `in [a, b]`).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "in"
            | "as"
            | "mut"
            | "return"
            | "break"
            | "const"
            | "static"
            | "ref"
            | "move"
            | "else"
            | "match"
            | "if"
            | "while"
            | "loop"
            | "for"
            | "where"
    )
}

/// True when `toks[i]` sits in a type or pattern position rather than an
/// expression: directly after `:`/`->`/`=` is still an expression, but a
/// preceding `#` means attribute machinery.
fn is_attr_or_decl_context(toks: &[crate::lexer::Token], i: usize) -> bool {
    i >= 1 && is_punct(&toks[i - 1], '#')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/serve/src/http.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let d = run("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "serve-panic"));
    }

    #[test]
    fn flags_panic_macros() {
        let d = run("fn f() { panic!(\"boom\"); unreachable!(); }");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn indexing_is_warn_tier() {
        let d = run("fn f(buf: &[u8]) -> u8 { buf[0] }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "serve-index");
        assert_eq!(d[0].severity, Severity::Warn);
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        let d = run("fn f() { let g = m.lock().unwrap_or_else(|p| p.into_inner()); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_request_path_files_are_exempt() {
        let f = SourceFile::new(
            "crates/serve/src/bin/serve_bench.rs",
            "fn f() { x.unwrap(); }",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let d =
            run("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn attribute_brackets_are_not_indexing() {
        let d = run("#[derive(Debug)]\nstruct S;\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
