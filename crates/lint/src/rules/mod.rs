//! Rule engine: per-file context (test-scope detection), the suppression
//! comment protocol, and the rule registry.
//!
//! Suppression syntax, placed on the offending line or the line above it:
//!
//! ```text
//! // tspn-lint: allow(<rule>) — <why the invariant still holds>
//! ```
//!
//! A suppression without a reason is itself a deny-level finding; a
//! suppression that matches no diagnostic is a warn-level finding.

pub mod env_registry;
pub mod hash_order;
pub mod serve_panic;
pub mod unsafe_safety;
pub mod wall_clock;

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// Static description of one rule, for `--list-rules` and severity lookup.
pub struct RuleInfo {
    /// Slug used in diagnostics and `allow(...)`.
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// Every rule the engine knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-order",
        severity: Severity::Deny,
        summary: "no iteration over HashMap/HashSet in deterministic crates \
                  (core, graph, geo, roadnet, tensor, data) outside tests",
    },
    RuleInfo {
        name: "unsafe-safety",
        severity: Severity::Deny,
        summary: "every unsafe block/fn/impl must carry a `// SAFETY:` (or \
                  `# Safety` doc) comment on the preceding lines",
    },
    RuleInfo {
        name: "serve-panic",
        severity: Severity::Deny,
        summary: "no unwrap()/expect()/panic-family macros in the serve \
                  request path (http, protocol, server, mux, router, \
                  session, batcher) outside tests",
    },
    RuleInfo {
        name: "serve-index",
        severity: Severity::Warn,
        summary: "direct `[...]` indexing in the serve request path can \
                  panic; prefer get()/get_mut() or a checked slice",
    },
    RuleInfo {
        name: "wall-clock",
        severity: Severity::Deny,
        summary: "no SystemTime::now/Instant::now/thread_rng in compute \
                  crates (core, tensor, graph) outside tests",
    },
    RuleInfo {
        name: "env-registry",
        severity: Severity::Deny,
        summary: "every TSPN_* env-knob literal must be registered in \
                  docs/KNOBS.md, and every registry row must be live",
    },
];

/// Looks up a rule's default severity; unknown rules report as deny so a
/// typo in the engine itself cannot silently downgrade anything.
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.name == rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Deny)
}

/// One lexed source file plus the scope metadata rules need.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Lexed token/comment streams.
    pub lexed: Lexed,
    /// True when the whole file is test/bench/example scope.
    pub all_test: bool,
    /// Inclusive 1-based line ranges of `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `src` and computes test scope from both the path and the
    /// token stream.
    pub fn new(rel: &str, src: &str) -> Self {
        let lexed = lex(src);
        let all_test = path_is_test(rel);
        let test_ranges = if all_test {
            Vec::new()
        } else {
            compute_test_ranges(&lexed.tokens)
        };
        SourceFile {
            rel: rel.to_string(),
            lexed,
            all_test,
            test_ranges,
        }
    }

    /// True when 1-based `line` is inside test scope.
    pub fn in_test(&self, line: u32) -> bool {
        self.all_test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The crate this file belongs to (`crates/<name>/…` → `<name>`).
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.rel.strip_prefix("crates/")?;
        rest.split('/').next()
    }
}

/// Whole files that are test scope by construction.
fn path_is_test(rel: &str) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    if segs
        .iter()
        .any(|s| *s == "tests" || *s == "benches" || *s == "examples")
    {
        return true;
    }
    match segs.last() {
        Some(f) => *f == "tests.rs" || f.ends_with("_test.rs") || f.ends_with("_tests.rs"),
        None => false,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == c.len_utf8() && t.text.starts_with(c)
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Index of the token closing the bracket opened at `open` (which must be
/// the opening token), or `tokens.len()` when unbalanced.
fn match_delim(tokens: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if is_punct(&tokens[i], oc) {
            depth += 1;
        } else if is_punct(&tokens[i], cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Finds `#[test]` / `#[cfg(test)]` / `#[bench]` attributes and marks the
/// line range of the item they decorate (brace-matched for blocks,
/// semicolon-terminated for declarations).
fn compute_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(is_punct(&tokens[i], '#') && is_punct(&tokens[i + 1], '[')) {
            i += 1;
            continue;
        }
        let close = match_delim(tokens, i + 1, '[', ']');
        if close >= tokens.len() {
            break;
        }
        let attr = &tokens[i + 2..close];
        if attr_marks_test(attr) {
            let start_line = tokens[i].line;
            let end = item_end(tokens, close + 1);
            let end_line = if end < tokens.len() {
                tokens[end].line
            } else {
                tokens.last().map(|t| t.line).unwrap_or(start_line)
            };
            ranges.push((start_line, end_line));
        }
        i = close + 1;
    }
    ranges
}

/// Is this attribute body a test marker? `test`, `bench`, or a `cfg(...)`
/// whose predicate mentions `test` outside a `not(...)`.
fn attr_marks_test(attr: &[Token]) -> bool {
    let Some(first) = attr.first() else {
        return false;
    };
    if is_ident(first, "test") || is_ident(first, "bench") {
        return true;
    }
    if !is_ident(first, "cfg") {
        return false;
    }
    for (k, t) in attr.iter().enumerate() {
        if is_ident(t, "test") {
            let negated = k >= 2 && is_ident(&attr[k - 2], "not") && is_punct(&attr[k - 1], '(');
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Token index where the item starting at `from` ends: the matching `}` of
/// its first depth-0 `{`, or its first depth-0 `;` — skipping any further
/// attributes in between.
fn item_end(tokens: &[Token], mut from: usize) -> usize {
    // Skip stacked attributes.
    while from + 1 < tokens.len()
        && is_punct(&tokens[from], '#')
        && is_punct(&tokens[from + 1], '[')
    {
        from = match_delim(tokens, from + 1, '[', ']') + 1;
    }
    let mut paren = 0i32;
    let mut brack = 0i32;
    let mut i = from;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '(') {
            paren += 1;
        } else if is_punct(t, ')') {
            paren -= 1;
        } else if is_punct(t, '[') {
            brack += 1;
        } else if is_punct(t, ']') {
            brack -= 1;
        } else if is_punct(t, '{') && paren == 0 && brack == 0 {
            return match_delim(tokens, i, '{', '}');
        } else if is_punct(t, ';') && paren == 0 && brack == 0 {
            return i;
        }
        i += 1;
    }
    tokens.len()
}

/// A parsed `// tspn-lint: allow(...)` comment.
pub struct Suppression {
    /// Rule slug named in `allow(...)`.
    pub rule: String,
    /// 1-based line the suppression covers (the comment's own line if it
    /// carries code, else the next line with code).
    pub target_line: u32,
    /// 1-based line of the comment itself.
    pub comment_line: u32,
    /// Whether a reason followed the `allow(...)`.
    pub has_reason: bool,
}

/// Extracts every suppression comment from `file`.
pub fn parse_suppressions(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    let max_line = file.lexed.lines_with_code.len() as u32;
    for c in &file.lexed.comments {
        let Some(pos) = c.text.find("tspn-lint:") else {
            continue;
        };
        let rest = &c.text[pos + "tspn-lint:".len()..];
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules = &rest[..close];
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        let target_line = if file.lexed.line_has_code(c.line) {
            c.line
        } else {
            let mut l = c.line + 1;
            while l < max_line && !file.lexed.line_has_code(l) {
                l += 1;
            }
            l
        };
        for rule in rules.split(',') {
            let rule = rule.trim();
            // Rule slugs are strictly kebab-case; anything else (like the
            // `<rule>` placeholder in documentation examples) is prose,
            // not a suppression.
            if rule.is_empty()
                || !rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                continue;
            }
            out.push(Suppression {
                rule: rule.to_string(),
                target_line,
                comment_line: c.line,
                has_reason: !reason.is_empty(),
            });
        }
    }
    out
}

/// Applies suppressions to `raw` diagnostics for one file. Suppressed
/// findings are dropped; malformed (reason-less) suppressions become deny
/// findings; unused or unknown-rule suppressions become warn findings.
pub fn apply_suppressions(file: &SourceFile, raw: Vec<Diagnostic>, out: &mut Vec<Diagnostic>) {
    let sups = parse_suppressions(file);
    let mut used = vec![false; sups.len()];
    'diag: for d in raw {
        for (k, s) in sups.iter().enumerate() {
            if s.rule == d.rule && (s.target_line == d.line || s.comment_line == d.line) {
                used[k] = true;
                if s.has_reason {
                    continue 'diag;
                }
                // A reason-less suppression still hides the original
                // finding, but surfaces as its own deny — otherwise the
                // same site would double-report.
                continue 'diag;
            }
        }
        out.push(d);
    }
    for (k, s) in sups.iter().enumerate() {
        if !s.has_reason {
            out.push(Diagnostic {
                rule: "suppression",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: s.comment_line,
                message: format!(
                    "suppression for `{}` has no reason — write \
                     `// tspn-lint: allow({}) — <why this is sound>`",
                    s.rule, s.rule
                ),
            });
        } else if !used[k] {
            let known = RULES.iter().any(|r| r.name == s.rule);
            out.push(Diagnostic {
                rule: "suppression",
                severity: Severity::Warn,
                file: file.rel.clone(),
                line: s.comment_line,
                message: if known {
                    format!(
                        "suppression for `{}` matches no finding — remove it",
                        s.rule
                    )
                } else {
                    format!("suppression names unknown rule `{}`", s.rule)
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_ranges() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.in_test(2));
    }

    #[test]
    fn test_fn_attr() {
        let src = "fn live() {}\n#[test]\nfn t() {\n    boom();\n}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(4));
    }

    #[test]
    fn tests_dir_is_all_test() {
        let f = SourceFile::new("crates/core/tests/it.rs", "fn x() {}");
        assert!(f.in_test(1));
        assert!(f.all_test);
    }

    #[test]
    fn suppression_parsing() {
        let src = "// tspn-lint: allow(hash-order) — recycling order is irrelevant\nlet x = 1;\n// tspn-lint: allow(wall-clock)\nlet y = 2;\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let sups = parse_suppressions(&f);
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].rule, "hash-order");
        assert_eq!(sups[0].target_line, 2);
        assert!(sups[0].has_reason);
        assert!(!sups[1].has_reason);
    }
}
