//! Rule `unsafe-safety`: every `unsafe` block/fn/impl outside tests must
//! carry a `// SAFETY:` comment (or a `# Safety` doc section) on the same
//! line or the lines directly above it.
//!
//! The walk upward tolerates doc comments, attributes (`#[target_feature]`
//! stacks get long in simd.rs) and blank lines, and stops at the first
//! unrelated code line so a SAFETY comment cannot leak across items.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::SourceFile;

/// How many lines above the `unsafe` token the justification may sit
/// (doc-comment + attribute stacks included).
const LOOKBACK: u32 = 40;

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.all_test {
        return;
    }
    let lexed = &file.lexed;

    // First code token per line, to tell attribute lines (walk-through)
    // from ordinary code lines (walk stops).
    let mut first_tok: Vec<Option<String>> = vec![None; lexed.lines_with_code.len()];
    for t in &lexed.tokens {
        let l = t.line as usize;
        if l < first_tok.len() && first_tok[l].is_none() {
            first_tok[l] = Some(t.text.clone());
        }
    }

    let marker_on = |line: u32| -> bool {
        lexed
            .comments_on(line)
            .any(|c| c.text.contains("SAFETY") || c.text.contains("Safety"))
    };

    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if file.in_test(t.line) {
            continue;
        }
        let line = t.line;
        let mut justified = marker_on(line);
        let mut l = line.saturating_sub(1);
        while !justified && l > 0 && line - l <= LOOKBACK {
            if marker_on(l) {
                justified = true;
                break;
            }
            let has_comment = lexed.comments_on(l).next().is_some();
            let has_code = lexed.line_has_code(l);
            if has_code {
                let attr_line = first_tok
                    .get(l as usize)
                    .and_then(|o| o.as_deref())
                    .map(|s| s == "#")
                    .unwrap_or(false);
                if !attr_line {
                    break; // previous item's code — stop the walk
                }
            } else if !has_comment {
                // Blank line: tolerate, keep walking.
            }
            l -= 1;
        }
        if !justified {
            let what = lexed
                .tokens
                .get(i + 1)
                .map(|n| n.text.as_str())
                .unwrap_or("");
            let what = match what {
                "fn" => "unsafe fn",
                "impl" => "unsafe impl",
                "extern" => "unsafe extern",
                "{" => "unsafe block",
                _ => "unsafe",
            };
            out.push(Diagnostic {
                rule: "unsafe-safety",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line,
                message: format!(
                    "{what} without a `// SAFETY:` comment on the preceding \
                     lines — state why the invariants hold"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/tensor/src/x.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_bare_unsafe_block() {
        let d = run("fn f() {\n    let x = unsafe { *p };\n}");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unsafe block"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_above_passes() {
        let d = run("fn f() {\n    // SAFETY: p is valid for reads, checked above.\n    let x = unsafe { *p };\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safety_comment_same_line_passes() {
        let d = run("fn f() {\n    let x = unsafe { *p }; // SAFETY: p outlives f.\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn doc_safety_section_passes_through_attributes() {
        let d = run("/// Does things.\n///\n/// # Safety\n/// Caller must align `p`.\n#[target_feature(enable = \"avx2\")]\n#[inline]\npub unsafe fn f(p: *const f32) {}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn comment_does_not_leak_across_items() {
        let d =
            run("// SAFETY: for g only.\nfn g() { unsafe { a(); } }\nfn f() { unsafe { b(); } }\n");
        // g's unsafe is on the same line as its fn — the comment above
        // covers it; f's unsafe sees g's code line first and stops.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn safety_inside_string_does_not_count() {
        let d = run("fn f() {\n    let s = \"SAFETY: nope\";\n    unsafe { a(); }\n}");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn tests_are_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n    fn t() { unsafe { a(); } }\n}");
        assert!(d.is_empty(), "{d:?}");
    }
}
