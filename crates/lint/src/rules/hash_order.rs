//! Rule `hash-order`: deny iteration over `HashMap`/`HashSet` in the
//! deterministic crates outside tests.
//!
//! `HashMap`/`HashSet` iteration order follows the per-process SipHash
//! seed, so anything numeric or structural derived from it differs across
//! processes — the exact bug class PR 9 fixed (road edges inserted in
//! `HashSet` iteration order perturbed training bitwise). Order-free use
//! (`get`, `contains`, `insert`, `len`, `remove`) stays allowed.
//!
//! Detection is a file-scoped heuristic over the token stream: first
//! collect every name bound to a hash container (let bindings, fn params,
//! struct fields, `type X = HashMap<…>` aliases), then flag
//! `<name>.iter()`-family calls and `for … in <name>` loops on them.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};
use crate::rules::{is_ident, is_punct, SourceFile};

/// Crates whose non-test code must be hash-iteration free.
const DETERMINISTIC_CRATES: &[&str] = &["core", "graph", "geo", "roadnet", "tensor", "data"];

/// Methods that expose (or are sensitive to) hash iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Built-in hash container type names.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    match file.crate_name() {
        Some(c) if DETERMINISTIC_CRATES.contains(&c) => {}
        _ => return,
    }
    if file.all_test {
        return;
    }
    let toks = &file.lexed.tokens;
    let hash_types = collect_hash_type_names(toks);
    let bound = collect_hash_bound_names(toks, &hash_types);

    for i in 0..toks.len() {
        if file.in_test(toks[i].line) {
            continue;
        }
        // `<name>.method(` where name is hash-bound and method iterates.
        if toks[i].kind == TokenKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && i >= 2
            && is_punct(&toks[i - 1], '.')
            && toks[i - 2].kind == TokenKind::Ident
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], '(')
        {
            let recv = toks[i - 2].text.as_str();
            if bound.contains(recv) || hash_types.contains(recv) {
                out.push(diag(
                    file,
                    toks[i].line,
                    format!(
                        "`{recv}.{}()` iterates a hash container in SipHash \
                         seed order; sort first or use BTreeMap/BTreeSet",
                        toks[i].text
                    ),
                ));
            }
        }
        // `for <pat> in <expr> {` where the loop source is a bare
        // hash-bound name (possibly behind `&`/`&mut`).
        if is_ident(&toks[i], "for") {
            if let Some((name, line)) = for_loop_hash_source(toks, i, &bound) {
                out.push(diag(
                    file,
                    line,
                    format!(
                        "`for … in {name}` iterates a hash container in \
                         SipHash seed order; sort first or use \
                         BTreeMap/BTreeSet"
                    ),
                ));
            }
        }
    }
}

fn diag(file: &SourceFile, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule: "hash-order",
        severity: Severity::Deny,
        file: file.rel.clone(),
        line,
        message,
    }
}

/// `type Alias = …HashMap…;` names that behave as hash types.
fn collect_hash_type_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = HASH_TYPES.iter().map(|s| s.to_string()).collect();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        // `type X = …` or `type X<K> = HashMap<…>` (generics skipped below).
        if is_ident(&toks[i], "type")
            && toks[i + 1].kind == TokenKind::Ident
            && (is_punct(&toks[i + 2], '=') || is_punct(&toks[i + 2], '<'))
        {
            let mut j = i + 2;
            // Find the `=` at angle-depth 0.
            let mut angle = 0i32;
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if is_punct(&toks[j], '<') {
                    angle += 1;
                } else if is_punct(&toks[j], '>') {
                    angle -= 1;
                } else if is_punct(&toks[j], '=') && angle == 0 {
                    break;
                }
                j += 1;
            }
            // RHS until `;`.
            let mut k = j;
            let mut is_hash = false;
            while k < toks.len() && !is_punct(&toks[k], ';') {
                if toks[k].kind == TokenKind::Ident && HASH_TYPES.contains(&toks[k].text.as_str()) {
                    is_hash = true;
                }
                k += 1;
            }
            if is_hash {
                names.insert(toks[i + 1].text.clone());
            }
            i = k;
        }
        i += 1;
    }
    names
}

/// Names bound to hash containers anywhere in the file: let bindings,
/// params/fields (`name: HashMap<…>`), and initializers mentioning a hash
/// type.
fn collect_hash_bound_names(toks: &[Token], hash_types: &BTreeSet<String>) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    let is_hash_tok =
        |t: &Token| t.kind == TokenKind::Ident && hash_types.contains(t.text.as_str());

    let mut i = 0usize;
    while i < toks.len() {
        // `let [mut] NAME … ;` — bound if anything up to the terminating
        // `;` (type annotation or initializer) names a hash type.
        if is_ident(&toks[i], "let") {
            let mut j = i + 1;
            if j < toks.len() && is_ident(&toks[j], "mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokenKind::Ident {
                let name = toks[j].text.clone();
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut is_hash = false;
                while k < toks.len() {
                    let t = &toks[k];
                    if is_punct(t, '{') || is_punct(t, '(') || is_punct(t, '[') {
                        depth += 1;
                    } else if is_punct(t, '}') || is_punct(t, ')') || is_punct(t, ']') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if is_punct(t, ';') && depth == 0 {
                        break;
                    } else if is_hash_tok(t) {
                        is_hash = true;
                    }
                    k += 1;
                }
                if is_hash {
                    bound.insert(name);
                }
            }
        }
        // `NAME : [& lifetime mut] … HashMap` — params, struct fields and
        // struct-literal fields whose type/value window names a hash type.
        if toks[i].kind == TokenKind::Ident
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], ':')
            // Not the first `:` of a `::` path, and not `name::x`.
            && !(i + 2 < toks.len() && is_punct(&toks[i + 2], ':'))
            && !(i >= 1 && is_punct(&toks[i - 1], ':'))
        {
            let mut k = i + 2;
            let mut steps = 0usize;
            while k < toks.len() && steps < 10 {
                let t = &toks[k];
                if is_punct(t, ',')
                    || is_punct(t, ')')
                    || is_punct(t, '{')
                    || is_punct(t, '}')
                    || is_punct(t, ';')
                    || is_punct(t, '=')
                {
                    break;
                }
                if is_hash_tok(t) {
                    bound.insert(toks[i].text.clone());
                    break;
                }
                k += 1;
                steps += 1;
            }
        }
        i += 1;
    }
    bound
}

/// For a `for` keyword at `i`, returns `(name, line)` when the loop source
/// expression is a bare hash-bound name, optionally behind `&`/`&mut`.
fn for_loop_hash_source(
    toks: &[Token],
    i: usize,
    bound: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find `in` at depth 0 (patterns can contain parens/tuples).
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if is_punct(t, '(') || is_punct(t, '[') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') {
            depth -= 1;
        } else if is_ident(t, "in") && depth == 0 {
            break;
        } else if is_punct(t, '{') || is_punct(t, ';') {
            return None; // `impl … for T {`, not a loop
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    // Source expression: tokens between `in` and the body `{` at depth 0.
    let mut k = j + 1;
    depth = 0;
    let start = k;
    while k < toks.len() {
        let t = &toks[k];
        if is_punct(t, '(') || is_punct(t, '[') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') {
            depth -= 1;
        } else if is_punct(t, '{') && depth == 0 {
            break;
        }
        k += 1;
    }
    let expr = &toks[start..k];
    // Accept `[&][mut] name` and `[&][mut] self . name` only — anything
    // with calls or further projection is either already flagged via the
    // method check or produces an owned, order-defined value.
    let idents: Vec<&Token> = expr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "self")
        .collect();
    let ok_shape = expr
        .iter()
        .all(|t| t.kind == TokenKind::Ident || is_punct(t, '&') || is_punct(t, '.'));
    if ok_shape && idents.len() == 1 && bound.contains(idents[0].text.as_str()) {
        return Some((idents[0].text.clone(), idents[0].line));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/graph/src/x.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_iter_on_let_binding() {
        let d =
            run("fn f() { let m = std::collections::HashMap::new(); for (k, v) in m.iter() {} }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("m.iter()"));
    }

    #[test]
    fn flags_for_over_param() {
        let d = run("fn f(edges: &HashSet<(u32, u32)>) { for e in edges { use_it(e); } }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("for … in edges"));
    }

    #[test]
    fn flags_drain_on_alias() {
        let d = run("type LenMap<V> = HashMap<usize, V>;\nfn f(mut b: LenMap<u32>) { b.drain(); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn order_free_use_is_fine() {
        let d = run("fn f(m: &HashMap<u32, u32>) -> bool { m.contains_key(&1) && m.get(&2).is_some() && m.len() > 0 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn btree_is_fine() {
        let d = run("fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m.iter() {} for x in m {} }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tests_are_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n    fn f(m: &HashMap<u32, u32>) { for x in m.keys() {} }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn other_crates_are_exempt() {
        let f = SourceFile::new(
            "crates/serve/src/x.rs",
            "fn f(m: &HashMap<u32, u32>) { for x in m.keys() {} }",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn flags_self_field() {
        let d = run("struct S { index: HashMap<u32, u32> }\nimpl S { fn f(&self) { for k in self.index.keys() {} } }");
        assert_eq!(d.len(), 1);
    }
}
