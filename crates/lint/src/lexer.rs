//! A small hand-written Rust lexer — just enough structure for the rule
//! engine: identifiers, punctuation, string/char literals (including raw
//! strings and byte strings), numbers, lifetimes, and comments.
//!
//! The lexer's one job is to make the rules immune to the classic text-grep
//! failure modes: `HashMap` inside a string literal, `unwrap()` inside a
//! comment, `// SAFETY:` inside a raw string. Everything that is not code
//! becomes either a [`Comment`] (kept, with its line — suppressions and
//! `SAFETY:` markers live there) or an opaque literal token whose *content*
//! the rules never pattern-match.

/// Token classes the rules dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `unsafe`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text. For [`TokenKind::Str`] this is the *decoded-enough*
    /// content (the raw/byte prefixes and delimiters stripped, escapes left
    /// as written) so registry-style rules can match literal values.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body, delimiters stripped (`//`, `///`, `/* … */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// `lines_with_code[l]` is true when 1-based line `l` carries at least
    /// one non-comment token (index 0 unused).
    pub lines_with_code: Vec<bool>,
}

impl Lexed {
    /// True when 1-based `line` has at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.lines_with_code
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Comments that start on 1-based `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Never fails: on malformed input (unterminated literal) the
/// remainder of the file is consumed as one token — the compiler, not the
/// linter, owns syntax errors.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let mut out = Lexed::default();
    let line_count = src.lines().count() + 2;
    out.lines_with_code = vec![false; line_count.max(2)];

    let mut push = |kind: TokenKind, text: String, line: u32, lwc: &mut Vec<bool>| {
        if (line as usize) < lwc.len() {
            lwc[line as usize] = true;
        }
        out.tokens.push(Token { kind, text, line });
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment (incl. doc comments). Body up to newline.
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let text = text.trim_start_matches(['/', '!']).to_string();
                out.comments.push(Comment { text, line });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nested per Rust rules.
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                let body_start = j;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let body_end = if depth == 0 { j - 2 } else { j };
                let text: String = chars[body_start..body_end].iter().collect();
                let text = text.trim_start_matches(['*', '!']).trim().to_string();
                out.comments.push(Comment {
                    text,
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let (text, nl, j) = lex_string(&chars, i + 1);
                push(TokenKind::Str, text, line, &mut out.lines_with_code);
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_string_prefix(&chars, i) => {
                let (kind_end, hashes) = string_prefix(&chars, i);
                if chars.get(kind_end) == Some(&'"') {
                    // Raw string r"…", r#"…"#, br#"…"#.
                    if hashes > 0 || raw_prefix(&chars, i) {
                        let (text, nl, j) = lex_raw_string(&chars, kind_end + 1, hashes);
                        push(TokenKind::Str, text, line, &mut out.lines_with_code);
                        line += nl;
                        i = j;
                    } else {
                        // b"…": a plain (escaped) byte string.
                        let (text, nl, j) = lex_string(&chars, kind_end + 1);
                        push(TokenKind::Str, text, line, &mut out.lines_with_code);
                        line += nl;
                        i = j;
                    }
                } else if chars.get(kind_end) == Some(&'\'') {
                    // Byte char b'…'.
                    let (text, j) = lex_char(&chars, kind_end + 1);
                    push(TokenKind::Char, text, line, &mut out.lines_with_code);
                    i = j;
                } else {
                    // Just an identifier starting with r/b after all.
                    let (text, j) = lex_ident(&chars, i);
                    push(TokenKind::Ident, text, line, &mut out.lines_with_code);
                    i = j;
                }
            }
            '\'' => {
                // Lifetime or char literal. `'a'` is a char, `'a` (no
                // closing quote right after the ident char) is a lifetime;
                // `'\…'` is always a char.
                if i + 1 < n && chars[i + 1] == '\\' {
                    let (text, j) = lex_char(&chars, i + 1);
                    push(TokenKind::Char, text, line, &mut out.lines_with_code);
                    i = j;
                } else if i + 1 < n
                    && is_ident_start(chars[i + 1])
                    && chars.get(i + 2) != Some(&'\'')
                {
                    let (text, j) = lex_ident(&chars, i + 1);
                    push(TokenKind::Lifetime, text, line, &mut out.lines_with_code);
                    i = j;
                } else {
                    let (text, j) = lex_char(&chars, i + 1);
                    push(TokenKind::Char, text, line, &mut out.lines_with_code);
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (is_ident_continue(chars[j]) || chars[j] == '.') {
                    // `1..2` range: stop the number before `..`.
                    if chars[j] == '.' && chars.get(j + 1) == Some(&'.') {
                        break;
                    }
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                push(TokenKind::Num, text, line, &mut out.lines_with_code);
                i = j;
            }
            c if is_ident_start(c) => {
                let (text, j) = lex_ident(&chars, i);
                push(TokenKind::Ident, text, line, &mut out.lines_with_code);
                i = j;
            }
            c => {
                push(
                    TokenKind::Punct,
                    c.to_string(),
                    line,
                    &mut out.lines_with_code,
                );
                i += 1;
            }
        }
    }
    out
}

fn lex_ident(chars: &[char], start: usize) -> (String, usize) {
    let mut j = start;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    (chars[start..j].iter().collect(), j)
}

/// Escaped string body starting *after* the opening quote. Returns
/// `(content, newlines_consumed, index_after_closing_quote)`.
fn lex_string(chars: &[char], start: usize) -> (String, u32, usize) {
    let mut j = start;
    let mut nl = 0u32;
    let mut text = String::new();
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                if let Some(&e) = chars.get(j + 1) {
                    text.push('\\');
                    text.push(e);
                    if e == '\n' {
                        nl += 1;
                    }
                    j += 2;
                } else {
                    j += 1;
                }
            }
            '"' => return (text, nl, j + 1),
            '\n' => {
                nl += 1;
                text.push('\n');
                j += 1;
            }
            c => {
                text.push(c);
                j += 1;
            }
        }
    }
    (text, nl, j)
}

/// Raw string body starting *after* the opening quote, closed by
/// `"` + `hashes` × `#`.
fn lex_raw_string(chars: &[char], start: usize, hashes: usize) -> (String, u32, usize) {
    let mut j = start;
    let mut nl = 0u32;
    let mut text = String::new();
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return (text, nl, j + 1 + hashes);
            }
        }
        if chars[j] == '\n' {
            nl += 1;
        }
        text.push(chars[j]);
        j += 1;
    }
    (text, nl, j)
}

/// Char/byte-char body starting *after* the opening quote.
fn lex_char(chars: &[char], start: usize) -> (String, usize) {
    let mut j = start;
    let mut text = String::new();
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                if let Some(&e) = chars.get(j + 1) {
                    text.push('\\');
                    text.push(e);
                    j += 2;
                } else {
                    j += 1;
                }
            }
            '\'' => return (text, j + 1),
            c => {
                text.push(c);
                j += 1;
            }
        }
    }
    (text, j)
}

/// Could position `i` start a raw/byte string or byte char (`r"`, `r#"`,
/// `b"`, `b'`, `br#"`, …)? If not, it's an ordinary identifier.
fn starts_string_prefix(chars: &[char], i: usize) -> bool {
    let (end, _) = string_prefix(chars, i);
    matches!(chars.get(end), Some(&'"') | Some(&'\''))
        // Only a *prefix* — `radius"x"` must stay an ident.
        && chars[i..end].iter().all(|&c| matches!(c, 'r' | 'b' | '#'))
        && (end - i) <= 4
}

/// Walks the `r`/`b`/`#` prefix of a candidate raw/byte string at `i`;
/// returns (index of the expected opening quote, number of `#`s).
fn string_prefix(chars: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    while j < chars.len() && matches!(chars[j], 'r' | 'b') && j - i < 2 {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    (j, hashes)
}

/// True when the prefix at `i` contains `r` (raw) — `b"…"` alone is an
/// escaped byte string, not raw.
fn raw_prefix(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while j < chars.len() && matches!(chars[j], 'r' | 'b') {
        if chars[j] == 'r' {
            return true;
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let l = lex("// HashMap.iter()\nlet x = 1; /* unwrap() */\n");
        assert_eq!(idents(&l), vec!["let", "x"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("HashMap.iter()"));
        assert!(!l.line_has_code(1));
        assert!(l.line_has_code(2));
    }

    #[test]
    fn strings_swallow_code_like_content() {
        let l = lex(r#"let s = "HashMap // not a comment \" escaped";"#);
        assert_eq!(idents(&l), vec!["let", "s"]);
        assert!(l.comments.is_empty());
        let strs: Vec<&Token> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex("let s = r#\"a \" quote // SAFETY: nope\"#; let t = r\"plain\";");
        assert_eq!(idents(&l), vec!["let", "s", "let", "t"]);
        assert!(l.comments.is_empty());
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["a \" quote // SAFETY: nope", "plain"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let charlits: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(charlits, vec!["x", "\\n"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex("write(b\"HTTP/1.1\"); let b = b'\\n'; let r = br#\"raw\"#;");
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["HTTP/1.1", "raw"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(idents(&l), vec!["let", "x"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 {}");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let l = lex("let a = \"two\nlines\";\nlet b = 2;");
        let b = l.tokens.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b.line, 3);
    }
}
