//! Golden-file tests: each `fixtures/<name>.rs` is linted as if it lived at
//! the workspace path named in its `//@ path:` header, and the JSON report
//! must match `fixtures/<name>.json` byte for byte.
//!
//! Regenerate goldens after an intentional rule change with
//! `TSPN_LINT_BLESS=1 cargo test -p tspn-lint --test fixtures`.

use std::fs;
use std::path::{Path, PathBuf};

use tspn_lint::{lint_files, render_json};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Reads the `//@ key: value` headers off the top of a fixture.
fn header(src: &str, key: &str) -> Option<String> {
    let tag = format!("//@ {key}:");
    src.lines()
        .take_while(|l| l.starts_with("//@"))
        .find_map(|l| l.strip_prefix(&tag).map(|v| v.trim().to_string()))
}

fn run_fixture(name: &str) {
    let dir = fixtures_dir();
    let src = fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("read fixture {name}.rs: {e}"));
    let rel = header(&src, "path")
        .unwrap_or_else(|| panic!("fixture {name}.rs is missing a `//@ path:` header"));
    let knobs = header(&src, "knobs").map(|f| {
        fs::read_to_string(dir.join(&f)).unwrap_or_else(|e| panic!("read registry {f}: {e}"))
    });
    let diags = lint_files(&[(rel, src)], knobs.as_deref());
    let got = render_json(&diags);

    let golden_path = dir.join(format!("{name}.json"));
    if std::env::var("TSPN_LINT_BLESS").is_ok() {
        fs::write(&golden_path, &got).expect("bless golden");
        return;
    }
    let want = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read golden {name}.json (bless first?): {e}"));
    assert_eq!(
        got, want,
        "fixture `{name}` drifted from its golden — if the rule change is \
         intentional, re-bless with TSPN_LINT_BLESS=1"
    );
}

#[test]
fn hash_order_fixture() {
    run_fixture("hash_order");
}

#[test]
fn suppression_fixture() {
    run_fixture("suppression");
}

#[test]
fn raw_strings_fixture() {
    run_fixture("raw_strings");
}

#[test]
fn unsafe_safety_fixture() {
    run_fixture("unsafe_safety");
}

#[test]
fn serve_panic_fixture() {
    run_fixture("serve_panic");
}

#[test]
fn env_registry_fixture() {
    run_fixture("env_registry");
}

/// Every fixture must exercise at least one finding or suppression — an
/// all-quiet fixture tests nothing and usually means a header typo.
#[test]
fn goldens_are_not_empty() {
    for name in [
        "hash_order",
        "suppression",
        "raw_strings",
        "unsafe_safety",
        "serve_panic",
        "env_registry",
    ] {
        let golden = fixtures_dir().join(format!("{name}.json"));
        let Ok(text) = fs::read_to_string(&golden) else {
            continue; // fixture not blessed yet; its own test will fail
        };
        assert!(
            text.contains("\"rule\""),
            "golden {name}.json contains no findings — fixture is inert"
        );
    }
}
