//@ path: crates/serve/src/http.rs
// Fixture: serve-panic on a request-path file. unwrap/expect/panic-family
// are deny; slice indexing is the warn-tier serve-index rule; poison
// recovery and ?-propagation pass.

pub fn bad_unwrap(body: Option<&str>) -> &str {
    body.unwrap()
}

pub fn bad_expect(code: Result<u16, String>) -> u16 {
    code.expect("status")
}

pub fn bad_macro(route: &str) -> u16 {
    match route {
        "/health" => 200,
        _ => unreachable!("router covers every route"),
    }
}

pub fn warn_indexing(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn fine_propagation(body: Option<&str>) -> Result<&str, String> {
    body.ok_or_else(|| "missing body".to_string())
}

pub fn fine_poison(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}
