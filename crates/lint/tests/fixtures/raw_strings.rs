//@ path: crates/tensor/src/fixture.rs
// Fixture: lexer edge cases. Panic/iteration/clock spellings inside string
// literals, raw strings, and comments must never produce findings; the one
// real violation after the noise must still be caught at the right line.

/* A block comment mentioning counts.iter() and Instant::now() and unwrap().
   /* nested: for k in map.keys() { panic!() } */
   Still a comment. */

pub const DOC: &str = "for (k, v) in counts.iter() { Instant::now(); }";

pub const RAW: &str = r#"x.unwrap(); map.drain(); "quoted # inside""#;

pub const RAW2: &str = r##"ends with one hash: "# but keeps going"##;

pub const BYTES: &[u8] = b"SystemTime::now() \" escaped";

pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    // The 'a tokens above must lex as lifetimes, not unterminated chars.
    let _c = 'a';
    x
}

pub fn real_violation() -> std::time::Instant {
    std::time::Instant::now()
}
