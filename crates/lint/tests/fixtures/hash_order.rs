//@ path: crates/graph/src/fixture.rs
// Fixture: hash-order in a deterministic crate. The map iteration and the
// for-loop must both be flagged; the BTreeMap and lookup-only uses must not.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn bad_iteration(xs: &[u32]) -> Vec<u32> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push(k + v);
    }
    out
}

pub fn bad_for_loop(seen: HashSet<u32>) -> u32 {
    let mut acc = 0;
    for v in seen {
        acc ^= v;
    }
    acc
}

pub fn fine_lookup(counts: &HashMap<u32, u32>, key: u32) -> Option<u32> {
    // Point lookups are order-free and allowed.
    counts.get(&key).copied()
}

pub fn fine_btree(sorted: &BTreeMap<u32, u32>) -> u32 {
    // Sorted containers iterate in one fixed order. (Named differently from
    // the HashMap binding above: hash-bound names are collected file-wide.)
    sorted.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scope_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        let _: Vec<_> = m.iter().collect();
    }
}
