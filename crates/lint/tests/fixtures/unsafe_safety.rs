//@ path: crates/tensor/src/fixture.rs
// Fixture: unsafe-safety. A commented block passes, a bare one is a deny,
// and attribute lines between the comment and the item do not break the
// upward walk.

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller hands us a pointer into a live, initialised buffer.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

// SAFETY: the function only reads thread-local state established at startup.
#[inline(always)]
#[allow(dead_code)]
pub unsafe fn through_attributes() -> u8 {
    0
}

pub unsafe fn bare_unsafe_fn() -> u8 {
    1
}
