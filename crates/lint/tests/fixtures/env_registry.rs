//@ path: crates/serve/src/fixture.rs
//@ knobs: fixtures-knobs.md
// Fixture: env-registry. A registered knob passes; an unregistered one is
// a deny; the registry's dead row (a knob no source file reads) is a deny too.

pub fn registered() -> Option<String> {
    std::env::var("TSPN_FIXTURE_KNOB").ok()
}

pub fn unregistered() -> Option<String> {
    std::env::var("TSPN_PHANTOM_KNOB").ok()
}
