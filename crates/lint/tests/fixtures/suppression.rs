//@ path: crates/core/src/fixture.rs
// Fixture: suppression protocol. One well-formed suppression silences its
// finding; a reason-less one is itself a deny; an unused one is a warn.

use std::collections::HashMap;

pub fn suppressed_ok(m: &HashMap<u32, u32>) -> u32 {
    // tspn-lint: allow(hash-order) — the sum is commutative, order cannot matter
    m.values().sum()
}

pub fn suppressed_without_reason(m: &HashMap<u32, u32>) -> usize {
    // tspn-lint: allow(hash-order)
    m.keys().count()
}

// tspn-lint: allow(wall-clock) — nothing below reads a clock
pub fn unused_suppression() -> u32 {
    7
}
