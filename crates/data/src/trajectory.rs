//! Trajectory windowing and prediction-sample extraction.
//!
//! Following Sec. II-A: a user's check-in stream is cut into disjoint
//! trajectories wherever the gap between consecutive records is at least
//! `Δt` (72 hours in the paper). For a prediction sample at position `j`
//! of trajectory `i`, the *historical trajectories* are `S_T1 … S_T(i−1)`
//! and the *current prefix* is `S_Ti[1 : j−1]`.

use serde::{Deserialize, Serialize};

use crate::poi::{PoiId, Timestamp, UserId};

/// The paper's inter-trajectory gap Δt = 72 hours.
pub const DEFAULT_GAP_SECS: i64 = 72 * 3600;

/// A single visit inside a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Visit {
    /// Visited POI.
    pub poi: PoiId,
    /// Visit time.
    pub time: Timestamp,
}

/// A maximal run of visits with no ≥ Δt gap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Owning user.
    pub user: UserId,
    /// Time-ordered visits.
    pub visits: Vec<Visit>,
}

impl Trajectory {
    /// Number of visits.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// True when the trajectory holds no visits.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }
}

/// Splits a time-ordered visit stream into trajectories at ≥ `gap_secs`
/// breaks.
///
/// # Panics
/// Panics (debug) if the input is not sorted by time.
pub fn split_trajectories(user: UserId, visits: &[Visit], gap_secs: i64) -> Vec<Trajectory> {
    if visits.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        visits.windows(2).all(|w| w[0].time <= w[1].time),
        "visit stream must be time-ordered"
    );
    let mut out = Vec::new();
    let mut current = vec![visits[0]];
    for pair in visits.windows(2) {
        if pair[1].time - pair[0].time >= gap_secs {
            out.push(Trajectory {
                user,
                visits: std::mem::take(&mut current),
            });
        }
        current.push(pair[1]);
    }
    out.push(Trajectory {
        user,
        visits: current,
    });
    out
}

/// All trajectories of one user, in chronological order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserHistory {
    /// The user.
    pub user: UserId,
    /// Chronologically ordered trajectories.
    pub trajectories: Vec<Trajectory>,
}

impl UserHistory {
    /// Builds a history by splitting the user's visit stream.
    pub fn from_visits(user: UserId, visits: &[Visit], gap_secs: i64) -> Self {
        UserHistory {
            user,
            trajectories: split_trajectories(user, visits, gap_secs),
        }
    }

    /// Total check-in count.
    pub fn num_checkins(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }
}

/// A next-POI prediction sample: predict visit `prefix_len` of trajectory
/// `traj_index`, given that trajectory's first `prefix_len` visits and all
/// earlier trajectories as history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Index of the user in the dataset's user table.
    pub user_index: usize,
    /// Which trajectory within the user's history.
    pub traj_index: usize,
    /// Prefix length (≥ 1); the target is the visit at this position.
    pub prefix_len: usize,
}

/// Why a raw check-in stream cannot form a prediction subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckinStreamError {
    /// The stream holds no visits — there is nothing to predict from.
    Empty,
    /// Visit `index` is earlier than its predecessor; streams must be
    /// time-ordered (the trajectory gap rule is meaningless otherwise).
    Unordered {
        /// 0-based index of the out-of-order visit.
        index: usize,
    },
}

impl std::fmt::Display for CheckinStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckinStreamError::Empty => write!(f, "check-in stream is empty"),
            CheckinStreamError::Unordered { index } => {
                write!(f, "check-in {index} is earlier than its predecessor")
            }
        }
    }
}

/// An **owned** prediction subject: a client-supplied check-in stream,
/// decoupled from any preset dataset. The stream is split at the paper's
/// trajectory gap exactly like [`split_trajectories`]: everything before
/// the final gap is `history` (flattened — models consume historical
/// trajectories as one concatenated visit run), everything after it is the
/// `current` prefix whose next visit is to be predicted.
///
/// Built from the same visits a dataset sample addresses
/// ([`crate::LbsnDataset::sample_checkins`]), the split reproduces that
/// sample's `(history, prefix)` decomposition exactly — the invariant the
/// payload-addressed serving API's bitwise contract rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct AdHocTrajectory {
    /// Client-supplied user identity (opaque to the model; sessions and
    /// response echoing key on it, vocabulary bounds do not apply).
    pub user: UserId,
    /// Flattened visits of every trajectory before the current one,
    /// untruncated (consumers apply their own history windows).
    pub history: Vec<Visit>,
    /// The current trajectory prefix (non-empty, no internal ≥ gap break).
    pub current: Vec<Visit>,
}

impl AdHocTrajectory {
    /// Splits a raw time-ordered check-in stream into `(history, current)`
    /// at the last ≥ `gap_secs` break.
    ///
    /// # Errors
    /// [`CheckinStreamError::Empty`] on an empty stream,
    /// [`CheckinStreamError::Unordered`] when any visit precedes the one
    /// before it.
    pub fn from_checkins(
        user: UserId,
        visits: &[Visit],
        gap_secs: i64,
    ) -> Result<Self, CheckinStreamError> {
        if visits.is_empty() {
            return Err(CheckinStreamError::Empty);
        }
        for (i, pair) in visits.windows(2).enumerate() {
            if pair[1].time < pair[0].time {
                return Err(CheckinStreamError::Unordered { index: i + 1 });
            }
        }
        // Index of the first visit of the current (final) trajectory.
        let mut start = 0usize;
        for (i, pair) in visits.windows(2).enumerate() {
            if pair[1].time - pair[0].time >= gap_secs {
                start = i + 1;
            }
        }
        Ok(AdHocTrajectory {
            user,
            history: visits[..start].to_vec(),
            current: visits[start..].to_vec(),
        })
    }

    /// Total visit count (history + current).
    pub fn num_checkins(&self) -> usize {
        self.history.len() + self.current.len()
    }
}

/// Index of the first visit naming a POI outside a vocabulary of `vocab`
/// ids, if any — the one bound check shared by every consumer validating
/// client-supplied check-in streams (core subjects, the serving layer).
pub fn first_invalid_poi(visits: &[Visit], vocab: usize) -> Option<usize> {
    visits.iter().position(|v| v.poi.0 >= vocab)
}

/// Enumerates every prediction sample a user history offers: all positions
/// `j ≥ 1` of all trajectories with at least two visits.
pub fn enumerate_samples(user_index: usize, history: &UserHistory) -> Vec<Sample> {
    let mut out = Vec::new();
    for (ti, traj) in history.trajectories.iter().enumerate() {
        for j in 1..traj.len() {
            out.push(Sample {
                user_index,
                traj_index: ti,
                prefix_len: j,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(poi: usize, hours: i64) -> Visit {
        Visit {
            poi: PoiId(poi),
            time: hours * 3600,
        }
    }

    #[test]
    fn empty_stream_no_trajectories() {
        assert!(split_trajectories(UserId(0), &[], DEFAULT_GAP_SECS).is_empty());
    }

    #[test]
    fn no_gap_single_trajectory() {
        let visits = vec![v(1, 0), v(2, 5), v(3, 20)];
        let ts = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].len(), 3);
    }

    #[test]
    fn splits_at_72h_gap() {
        let visits = vec![v(1, 0), v(2, 10), v(3, 10 + 72), v(4, 10 + 73)];
        let ts = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].len(), 2);
        assert_eq!(ts[1].len(), 2);
    }

    #[test]
    fn gap_just_below_threshold_does_not_split() {
        let visits = vec![v(1, 0), v(2, 71)];
        let ts = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn multiple_gaps_produce_multiple_windows() {
        let visits = vec![v(1, 0), v(2, 100), v(3, 200), v(4, 300)];
        let ts = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        assert_eq!(ts.len(), 4);
        for t in &ts {
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn samples_skip_singleton_trajectories() {
        let h = UserHistory {
            user: UserId(3),
            trajectories: vec![
                Trajectory {
                    user: UserId(3),
                    visits: vec![v(1, 0)],
                },
                Trajectory {
                    user: UserId(3),
                    visits: vec![v(2, 100), v(3, 101), v(4, 102)],
                },
            ],
        };
        let samples = enumerate_samples(7, &h);
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|s| s.traj_index == 1));
        assert_eq!(samples[0].prefix_len, 1);
        assert_eq!(samples[1].prefix_len, 2);
        assert!(samples.iter().all(|s| s.user_index == 7));
    }

    #[test]
    fn adhoc_splits_at_the_last_gap() {
        // Two gaps: history is everything before the final one, flattened.
        let visits = vec![v(1, 0), v(2, 100), v(3, 200), v(4, 201), v(5, 300)];
        let t = AdHocTrajectory::from_checkins(UserId(3), &visits, DEFAULT_GAP_SECS).unwrap();
        assert_eq!(t.history, &visits[..4]);
        assert_eq!(t.current, &visits[4..]);
        assert_eq!(t.num_checkins(), 5);

        // No gap at all: the whole stream is the current prefix.
        let single = vec![v(1, 0), v(2, 5), v(3, 20)];
        let t = AdHocTrajectory::from_checkins(UserId(0), &single, DEFAULT_GAP_SECS).unwrap();
        assert!(t.history.is_empty());
        assert_eq!(t.current, single);
    }

    #[test]
    fn adhoc_matches_split_trajectories_decomposition() {
        // The ad-hoc split must agree with split_trajectories: history =
        // all but the last trajectory (flattened), current = the last.
        let visits = vec![v(1, 0), v(2, 71), v(3, 71 + 72), v(4, 150), v(5, 300)];
        let trajs = split_trajectories(UserId(9), &visits, DEFAULT_GAP_SECS);
        let t = AdHocTrajectory::from_checkins(UserId(9), &visits, DEFAULT_GAP_SECS).unwrap();
        let flat_history: Vec<Visit> = trajs[..trajs.len() - 1]
            .iter()
            .flat_map(|t| t.visits.iter().copied())
            .collect();
        assert_eq!(t.history, flat_history);
        assert_eq!(t.current, trajs.last().unwrap().visits);
    }

    #[test]
    fn adhoc_rejects_empty_and_unordered_streams() {
        assert_eq!(
            AdHocTrajectory::from_checkins(UserId(0), &[], DEFAULT_GAP_SECS),
            Err(CheckinStreamError::Empty)
        );
        let unordered = vec![v(1, 10), v(2, 5)];
        assert_eq!(
            AdHocTrajectory::from_checkins(UserId(0), &unordered, DEFAULT_GAP_SECS),
            Err(CheckinStreamError::Unordered { index: 1 })
        );
        // Equal timestamps are ordered (check-ins can share a second).
        let ties = vec![v(1, 10), v(2, 10)];
        assert!(AdHocTrajectory::from_checkins(UserId(0), &ties, DEFAULT_GAP_SECS).is_ok());
    }

    #[test]
    fn history_checkin_count() {
        let visits = vec![v(1, 0), v(2, 10), v(3, 200)];
        let h = UserHistory::from_visits(UserId(0), &visits, DEFAULT_GAP_SECS);
        assert_eq!(h.num_checkins(), 3);
        assert_eq!(h.trajectories.len(), 2);
    }
}
