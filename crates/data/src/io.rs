//! CSV import/export for datasets — the interchange format every LBSN
//! paper pipeline (including this one) speaks: one POI table and one
//! check-in table.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use tspn_geo::{BBox, GeoPoint};

use crate::dataset::LbsnDataset;
use crate::poi::{CategoryId, Checkin, Poi, PoiId, UserId};
use crate::trajectory::{UserHistory, Visit, DEFAULT_GAP_SECS};

/// Writes the POI table as `poi_id,lat,lon,category`.
pub fn write_pois(ds: &LbsnDataset, out: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "poi_id,lat,lon,category")?;
    for p in &ds.pois {
        writeln!(w, "{},{},{},{}", p.id.0, p.loc.lat, p.loc.lon, p.cate.0)?;
    }
    w.flush()
}

/// Writes check-ins as `user_id,poi_id,timestamp`, time-ordered per user.
pub fn write_checkins(ds: &LbsnDataset, out: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "user_id,poi_id,timestamp")?;
    for u in &ds.users {
        for t in &u.trajectories {
            for v in &t.visits {
                writeln!(w, "{},{},{}", u.user.0, v.poi.0, v.time)?;
            }
        }
    }
    w.flush()
}

/// Parse error with line context.
fn bad_line(line_no: usize, msg: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("line {line_no}: {msg}"),
    )
}

/// Reads a POI table written by [`write_pois`].
pub fn read_pois(input: impl Read) -> std::io::Result<Vec<Poi>> {
    let reader = BufReader::new(input);
    let mut pois = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue; // header / trailing newline
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(bad_line(i + 1, "expected 4 fields"));
        }
        let id: usize = parts[0]
            .parse()
            .map_err(|_| bad_line(i + 1, "bad poi_id"))?;
        let lat: f64 = parts[1].parse().map_err(|_| bad_line(i + 1, "bad lat"))?;
        let lon: f64 = parts[2].parse().map_err(|_| bad_line(i + 1, "bad lon"))?;
        let cate: usize = parts[3]
            .parse()
            .map_err(|_| bad_line(i + 1, "bad category"))?;
        if id != pois.len() {
            return Err(bad_line(i + 1, "poi ids must be dense and ordered"));
        }
        pois.push(Poi {
            id: PoiId(id),
            loc: GeoPoint::new(lat, lon),
            cate: CategoryId(cate),
        });
    }
    Ok(pois)
}

/// Reads a check-in table written by [`write_checkins`].
pub fn read_checkins(input: impl Read) -> std::io::Result<Vec<Checkin>> {
    let reader = BufReader::new(input);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 3 {
            return Err(bad_line(i + 1, "expected 3 fields"));
        }
        out.push(Checkin {
            user: UserId(
                parts[0]
                    .parse()
                    .map_err(|_| bad_line(i + 1, "bad user_id"))?,
            ),
            poi: PoiId(
                parts[1]
                    .parse()
                    .map_err(|_| bad_line(i + 1, "bad poi_id"))?,
            ),
            time: parts[2]
                .parse()
                .map_err(|_| bad_line(i + 1, "bad timestamp"))?,
        });
    }
    Ok(out)
}

/// Reassembles a dataset from tables (recomputing the trajectory split).
pub fn assemble(
    name: &str,
    region: BBox,
    pois: Vec<Poi>,
    mut checkins: Vec<Checkin>,
    num_categories: usize,
) -> LbsnDataset {
    checkins.sort_by_key(|c| (c.user, c.time));
    let num_users = checkins.iter().map(|c| c.user.0 + 1).max().unwrap_or(0);
    let mut per_user: Vec<Vec<Visit>> = vec![Vec::new(); num_users];
    for c in checkins {
        per_user[c.user.0].push(Visit {
            poi: c.poi,
            time: c.time,
        });
    }
    let users = per_user
        .into_iter()
        .enumerate()
        .map(|(u, visits)| UserHistory::from_visits(UserId(u), &visits, DEFAULT_GAP_SECS))
        .collect();
    LbsnDataset {
        name: name.to_string(),
        region,
        pois,
        num_categories,
        users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::nyc_mini;
    use crate::synth::generate_dataset;

    fn tiny_dataset() -> LbsnDataset {
        let mut cfg = nyc_mini(0.1);
        cfg.days = 8;
        generate_dataset(cfg).0
    }

    #[test]
    fn poi_roundtrip() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        write_pois(&ds, &mut buf).expect("write");
        let back = read_pois(&buf[..]).expect("read");
        assert_eq!(back.len(), ds.pois.len());
        for (a, b) in back.iter().zip(&ds.pois) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.cate, b.cate);
            assert!((a.loc.lat - b.loc.lat).abs() < 1e-9);
        }
    }

    #[test]
    fn checkin_roundtrip_preserves_stats() {
        let ds = tiny_dataset();
        let mut pbuf = Vec::new();
        let mut cbuf = Vec::new();
        write_pois(&ds, &mut pbuf).expect("write pois");
        write_checkins(&ds, &mut cbuf).expect("write checkins");
        let pois = read_pois(&pbuf[..]).expect("read pois");
        let checkins = read_checkins(&cbuf[..]).expect("read checkins");
        let back = assemble("roundtrip", ds.region, pois, checkins, ds.num_categories);
        let a = ds.stats();
        let b = back.stats();
        assert_eq!(a.checkins, b.checkins);
        assert_eq!(a.pois, b.pois);
    }

    #[test]
    fn read_rejects_malformed_rows() {
        let bad = "poi_id,lat,lon,category\n0,1.0,2.0\n";
        assert!(read_pois(bad.as_bytes()).is_err());
        let bad2 = "user_id,poi_id,timestamp\nx,0,0\n";
        assert!(read_checkins(bad2.as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_sparse_poi_ids() {
        let bad = "poi_id,lat,lon,category\n5,1.0,2.0,0\n";
        assert!(read_pois(bad.as_bytes()).is_err());
    }
}
