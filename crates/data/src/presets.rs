//! Dataset presets mirroring the paper's Table I at laptop scale.
//!
//! The real datasets (Foursquare NYC/TKY, Weeplaces California/Florida) are
//! unavailable; these presets reproduce their *shape*: the Foursquare pair
//! is urban and dense (high POI concentration, small coverage), the
//! Weeplaces pair is state-scale and dispersed (coverage ~1000× larger,
//! POIs spread along coasts and corridors). Counts are scaled down ~100×
//! so every experiment binary runs in minutes on a CPU; pass a larger
//! `scale` to move toward paper-size datasets.

use tspn_geo::BBox;
use tspn_world::{Coast, WorldConfig};

use crate::synth::SynthConfig;

/// Applies an integer scale factor to a base preset (users, POIs and days
/// grow with scale; behavioural parameters stay fixed).
fn scaled(mut cfg: SynthConfig, scale: f64) -> SynthConfig {
    assert!(scale > 0.0, "scale must be positive");
    cfg.num_pois = ((cfg.num_pois as f64) * scale).round().max(20.0) as usize;
    cfg.num_users = ((cfg.num_users as f64) * scale).round().max(4.0) as usize;
    cfg.days = ((cfg.days as f64) * scale.sqrt()).round().max(20.0) as usize;
    cfg
}

/// Foursquare-NYC analogue: one dense urban core, land-locked window,
/// moderate category diversity. Paper setting: {D=8, Ω=50, K=15}.
pub fn nyc_mini(scale: f64) -> SynthConfig {
    scaled(
        SynthConfig {
            seed: 1001,
            name: "nyc-mini".into(),
            world: WorldConfig {
                seed: 1001,
                coast: Coast::None,
                ocean_fraction: 0.25,
                num_districts: 4,
                density_falloff: 7.0,
            },
            region: BBox::new(40.55, -74.10, 40.95, -73.65),
            num_pois: 380,
            num_categories: 40,
            num_users: 48,
            days: 80,
            active_day_prob: 0.45,
            visits_per_active_day: 2.2,
            explore_prob: 0.30,
            favorites_per_user: 10,
        },
        scale,
    )
}

/// Foursquare-TKY analogue: larger and denser than NYC, more users,
/// slightly fewer categories. Paper setting: {D=8, Ω=100, K=15}.
pub fn tky_mini(scale: f64) -> SynthConfig {
    scaled(
        SynthConfig {
            seed: 2002,
            name: "tky-mini".into(),
            world: WorldConfig {
                seed: 2002,
                coast: Coast::None,
                ocean_fraction: 0.25,
                num_districts: 5,
                density_falloff: 6.0,
            },
            region: BBox::new(35.50, 139.40, 35.85, 139.95),
            num_pois: 560,
            num_categories: 36,
            num_users: 64,
            days: 90,
            active_day_prob: 0.50,
            visits_per_active_day: 2.4,
            explore_prob: 0.28,
            favorites_per_user: 12,
        },
        scale,
    )
}

/// Weeplaces-California analogue: state-scale, west coast, dispersed
/// districts (low density falloff). Paper setting: {D=9, Ω=100, K=10}.
pub fn california_mini(scale: f64) -> SynthConfig {
    scaled(
        SynthConfig {
            seed: 3003,
            name: "california-mini".into(),
            world: WorldConfig {
                seed: 3003,
                coast: Coast::West,
                ocean_fraction: 0.22,
                num_districts: 6,
                density_falloff: 3.0,
            },
            region: BBox::new(32.5, -124.4, 42.0, -114.1),
            num_pois: 440,
            num_categories: 44,
            num_users: 44,
            days: 90,
            active_day_prob: 0.40,
            visits_per_active_day: 2.0,
            explore_prob: 0.33,
            favorites_per_user: 9,
        },
        scale,
    )
}

/// Weeplaces-Florida analogue: state-scale, Atlantic (east) coastline with
/// beachfront venue strips — the Fig. 12 case-study region.
/// Paper setting: {D=8, Ω=50, K=10}.
pub fn florida_mini(scale: f64) -> SynthConfig {
    scaled(
        SynthConfig {
            seed: 4004,
            name: "florida-mini".into(),
            world: WorldConfig {
                seed: 4004,
                coast: Coast::East,
                ocean_fraction: 0.28,
                num_districts: 4,
                density_falloff: 3.5,
            },
            region: BBox::new(25.0, -87.6, 30.8, -80.0),
            num_pois: 300,
            num_categories: 40,
            num_users: 36,
            days: 90,
            active_day_prob: 0.40,
            visits_per_active_day: 2.0,
            explore_prob: 0.33,
            favorites_per_user: 8,
        },
        scale,
    )
}

/// All four presets (Table I order) at a given scale.
pub fn all_presets(scale: f64) -> Vec<SynthConfig> {
    vec![
        nyc_mini(scale),
        tky_mini(scale),
        california_mini(scale),
        florida_mini(scale),
    ]
}

/// The quad-tree / K settings the paper pairs with each dataset
/// (Implementation Details, Sec. VI-A): returns `(D, Ω, K)`.
pub fn paper_settings(name: &str) -> (usize, usize, usize) {
    match name {
        "tky-mini" => (8, 100, 15),
        "nyc-mini" => (8, 50, 15),
        "california-mini" => (9, 100, 10),
        "florida-mini" => (8, 50, 10),
        other => panic!("unknown preset {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_dataset;

    #[test]
    fn presets_have_distinct_shapes() {
        let nyc = nyc_mini(1.0);
        let ca = california_mini(1.0);
        // State coverage ~1000× urban coverage (Table I's key contrast).
        let urban = nyc.region.area_km2();
        let state = ca.region.area_km2();
        assert!(
            state / urban > 500.0,
            "coverage ratio only {}",
            state / urban
        );
    }

    #[test]
    fn scaling_grows_counts() {
        let base = nyc_mini(1.0);
        let big = nyc_mini(2.0);
        assert_eq!(big.num_pois, base.num_pois * 2);
        assert_eq!(big.num_users, base.num_users * 2);
    }

    #[test]
    fn paper_settings_cover_all_presets() {
        for cfg in all_presets(1.0) {
            let (d, omega, k) = paper_settings(&cfg.name);
            assert!(d >= 8 && omega >= 50 && k >= 10);
        }
    }

    #[test]
    fn tiny_florida_generates_coastal_pois() {
        // Scaled-down generation sanity: coastal bonus should place a
        // noticeable share of venues on the shoreline band.
        let mut cfg = florida_mini(0.3);
        cfg.days = 10;
        let g = crate::synth::SynthGenerator::new(cfg);
        let ds = g.generate();
        let coastal = ds
            .pois
            .iter()
            .filter(|p| {
                let (x, y) = ds.region.normalize(&p.loc);
                g.world().is_coastal(x, y)
            })
            .count();
        assert!(
            coastal * 8 > ds.pois.len(),
            "only {coastal}/{} POIs coastal",
            ds.pois.len()
        );
    }

    #[test]
    fn florida_has_coastal_active_population() {
        // Regression guard for the Fig. 12 case-study premise: coastal
        // worlds must produce users who actually visit the shoreline.
        let mut cfg = florida_mini(0.3);
        cfg.days = 30;
        let g = crate::synth::SynthGenerator::new(cfg);
        let ds = g.generate();
        let (mut coastal, mut total) = (0usize, 0usize);
        for u in &ds.users {
            for t in &u.trajectories {
                for v in &t.visits {
                    total += 1;
                    let (x, y) = ds.region.normalize(&ds.poi_loc(v.poi));
                    if g.world().is_coastal(x, y) {
                        coastal += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = coastal as f64 / total as f64;
        assert!(
            frac > 0.06,
            "coastal visits too rare for the case study: {frac:.3}"
        );
    }

    #[test]
    fn all_presets_generate_at_tiny_scale() {
        for mut cfg in all_presets(0.15) {
            cfg.days = 8;
            let (ds, _) = generate_dataset(cfg);
            let stats = ds.stats();
            assert!(stats.checkins > 0, "{} generated no check-ins", ds.name);
            assert!(stats.pois >= 20);
        }
    }
}
