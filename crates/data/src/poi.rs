//! POIs, users, categories and check-in records — the core LBSN data types
//! (paper Sec. II-A: `p = (id, loc, cate)`).

use serde::{Deserialize, Serialize};
use tspn_geo::GeoPoint;

/// POI identifier: index into the dataset's POI table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PoiId(pub usize);

/// Category identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryId(pub usize);

/// User identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub usize);

/// Seconds since the synthetic epoch.
pub type Timestamp = i64;

/// Seconds per day.
pub const DAY_SECS: i64 = 86_400;

/// The paper divides a day into 48 half-hour intervals for the temporal
/// encoder (Sec. IV-A).
pub const TIME_SLOTS: usize = 48;

/// Half-hour slot of the day for a timestamp.
pub fn time_slot(t: Timestamp) -> usize {
    let within = t.rem_euclid(DAY_SECS);
    (within / (DAY_SECS / TIME_SLOTS as i64)) as usize
}

/// A point of interest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Identifier (equals its index in the dataset POI table).
    pub id: PoiId,
    /// Geographic coordinates.
    pub loc: GeoPoint,
    /// Venue category.
    pub cate: CategoryId,
}

/// One check-in record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Checkin {
    /// Who checked in.
    pub user: UserId,
    /// Where.
    pub poi: PoiId,
    /// When.
    pub time: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cover_the_day() {
        assert_eq!(time_slot(0), 0);
        assert_eq!(time_slot(30 * 60), 1);
        assert_eq!(time_slot(DAY_SECS - 1), TIME_SLOTS - 1);
    }

    #[test]
    fn slot_wraps_across_days() {
        assert_eq!(time_slot(DAY_SECS + 45 * 60), time_slot(45 * 60));
    }

    #[test]
    fn negative_timestamps_still_map() {
        let s = time_slot(-1);
        assert_eq!(s, TIME_SLOTS - 1);
    }

    #[test]
    fn eight_am_is_slot_16() {
        assert_eq!(time_slot(8 * 3600), 16);
    }
}
