//! Mobility statistics — the stylized facts of LBSN data used to validate
//! that the synthetic generator produces human-like check-in behaviour
//! (the properties next-POI models actually exploit).

use serde::{Deserialize, Serialize};
use tspn_geo::GeoPoint;

use crate::dataset::LbsnDataset;
use crate::trajectory::UserHistory;

/// Per-dataset mobility profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MobilityProfile {
    /// Mean fraction of a user's check-ins that revisit an already-seen
    /// POI (real LBSN data: typically 0.5–0.8).
    pub revisit_ratio: f64,
    /// Mean radius of gyration in km (spread of a user's activity).
    pub radius_of_gyration_km: f64,
    /// Mean distance between consecutive visits within a trajectory, km.
    pub mean_hop_km: f64,
    /// Mean number of distinct POIs per user.
    pub distinct_pois_per_user: f64,
    /// Mean check-ins per active user.
    pub checkins_per_user: f64,
    /// Shannon entropy (bits) of the visit distribution over a user's
    /// POIs, averaged over users — lower means more habitual behaviour.
    pub visit_entropy_bits: f64,
}

fn user_revisit_ratio(user: &UserHistory) -> Option<f64> {
    let visits: Vec<_> = user
        .trajectories
        .iter()
        .flat_map(|t| t.visits.iter())
        .collect();
    if visits.len() < 2 {
        return None;
    }
    let mut seen = std::collections::HashSet::new();
    let mut revisits = 0usize;
    for v in &visits {
        if !seen.insert(v.poi) {
            revisits += 1;
        }
    }
    Some(revisits as f64 / (visits.len() - 1) as f64)
}

fn user_radius_of_gyration(ds: &LbsnDataset, user: &UserHistory) -> Option<f64> {
    let locs: Vec<GeoPoint> = user
        .trajectories
        .iter()
        .flat_map(|t| t.visits.iter())
        .map(|v| ds.poi_loc(v.poi))
        .collect();
    if locs.is_empty() {
        return None;
    }
    let center = GeoPoint::new(
        locs.iter().map(|l| l.lat).sum::<f64>() / locs.len() as f64,
        locs.iter().map(|l| l.lon).sum::<f64>() / locs.len() as f64,
    );
    let msd = locs
        .iter()
        .map(|l| l.equirectangular_km(&center).powi(2))
        .sum::<f64>()
        / locs.len() as f64;
    Some(msd.sqrt())
}

fn user_entropy_bits(user: &UserHistory) -> Option<f64> {
    // BTreeMap, not HashMap: the -p·log2(p) terms are summed in iteration
    // order, and float addition is not associative — a hash-seeded order
    // would make the entropy differ in the last bits across processes.
    let mut counts = std::collections::BTreeMap::new();
    let mut total = 0usize;
    for t in &user.trajectories {
        for v in &t.visits {
            *counts.entry(v.poi).or_insert(0usize) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return None;
    }
    let h = counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum();
    Some(h)
}

/// Computes the mobility profile of a dataset.
pub fn mobility_profile(ds: &LbsnDataset) -> MobilityProfile {
    let mut revisit = Vec::new();
    let mut gyration = Vec::new();
    let mut entropy = Vec::new();
    let mut distinct = Vec::new();
    let mut per_user = Vec::new();
    let mut hops = Vec::new();
    for user in &ds.users {
        if let Some(r) = user_revisit_ratio(user) {
            revisit.push(r);
        }
        if let Some(g) = user_radius_of_gyration(ds, user) {
            gyration.push(g);
        }
        if let Some(e) = user_entropy_bits(user) {
            entropy.push(e);
        }
        let n = user.num_checkins();
        if n > 0 {
            per_user.push(n as f64);
            let d: std::collections::HashSet<_> = user
                .trajectories
                .iter()
                .flat_map(|t| t.visits.iter().map(|v| v.poi))
                .collect();
            distinct.push(d.len() as f64);
        }
        for t in &user.trajectories {
            for w in t.visits.windows(2) {
                hops.push(
                    ds.poi_loc(w[0].poi)
                        .equirectangular_km(&ds.poi_loc(w[1].poi)),
                );
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    MobilityProfile {
        revisit_ratio: mean(&revisit),
        radius_of_gyration_km: mean(&gyration),
        mean_hop_km: mean(&hops),
        distinct_pois_per_user: mean(&distinct),
        checkins_per_user: mean(&per_user),
        visit_entropy_bits: mean(&entropy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{california_mini, nyc_mini};
    use crate::synth::generate_dataset;

    fn profile_for(cfg: crate::synth::SynthConfig) -> MobilityProfile {
        let (ds, _) = generate_dataset(cfg);
        mobility_profile(&ds)
    }

    #[test]
    fn synthetic_users_show_lbsn_revisit_band() {
        let mut cfg = nyc_mini(0.15);
        cfg.days = 40;
        let p = profile_for(cfg);
        // Real LBSN revisit ratios sit around 0.5–0.8; the generator's
        // explore_prob 0.30 should land in that band.
        assert!(
            (0.35..=0.9).contains(&p.revisit_ratio),
            "revisit ratio out of band: {}",
            p.revisit_ratio
        );
    }

    #[test]
    fn activity_radius_far_below_region_size() {
        let mut cfg = nyc_mini(0.15);
        cfg.days = 30;
        let (ds, _) = generate_dataset(cfg.clone());
        let p = mobility_profile(&ds);
        let region_diag = GeoPoint::new(ds.region.min_lat, ds.region.min_lon)
            .equirectangular_km(&GeoPoint::new(ds.region.max_lat, ds.region.max_lon));
        assert!(
            p.radius_of_gyration_km < region_diag / 2.0,
            "users roam the whole region: r_g {} vs diag {}",
            p.radius_of_gyration_km,
            region_diag
        );
        assert!(p.radius_of_gyration_km > 0.0);
    }

    #[test]
    fn state_scale_users_have_larger_radius_than_urban() {
        let mut urban = nyc_mini(0.15);
        urban.days = 30;
        let mut state = california_mini(0.15);
        state.days = 30;
        let pu = profile_for(urban);
        let ps = profile_for(state);
        assert!(
            ps.radius_of_gyration_km > pu.radius_of_gyration_km * 5.0,
            "state-scale gyration {} should dwarf urban {}",
            ps.radius_of_gyration_km,
            pu.radius_of_gyration_km
        );
    }

    #[test]
    fn entropy_is_bounded_by_distinct_pois() {
        let mut cfg = nyc_mini(0.12);
        cfg.days = 25;
        let p = profile_for(cfg);
        // H ≤ log2(distinct POIs); habitual users sit well below.
        assert!(p.visit_entropy_bits <= p.distinct_pois_per_user.log2() + 1e-9);
        assert!(p.visit_entropy_bits > 0.0);
    }

    #[test]
    fn hops_shorter_than_gyration_scale() {
        let mut cfg = nyc_mini(0.15);
        cfg.days = 30;
        let p = profile_for(cfg);
        assert!(p.mean_hop_km > 0.0);
        // Consecutive hops are a local phenomenon relative to overall
        // activity spread (spatial locality signal).
        assert!(p.mean_hop_km < p.radius_of_gyration_km * 4.0 + 5.0);
    }
}
