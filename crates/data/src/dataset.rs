//! The assembled LBSN dataset: POI table + per-user trajectory histories,
//! with Table-I-style statistics and the 80/10/10 trajectory split used by
//! the paper's implementation details.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tspn_geo::{BBox, GeoPoint};

use crate::poi::{CategoryId, Poi, PoiId, UserId};
use crate::trajectory::{enumerate_samples, Sample, Trajectory, UserHistory, Visit};

/// A complete dataset for one study region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LbsnDataset {
    /// Human-readable name (e.g. `"nyc-mini"`).
    pub name: String,
    /// Study region bounding box.
    pub region: BBox,
    /// POI table; `PoiId(i)` indexes row `i`.
    pub pois: Vec<Poi>,
    /// Number of distinct categories.
    pub num_categories: usize,
    /// Per-user histories.
    pub users: Vec<UserHistory>,
}

/// Table-I statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total check-ins.
    pub checkins: usize,
    /// Users with at least one check-in.
    pub users: usize,
    /// POIs in the table.
    pub pois: usize,
    /// Distinct categories.
    pub categories: usize,
    /// Region coverage in km².
    pub coverage_km2: f64,
}

/// Train/validation/test partition of prediction samples.
#[derive(Debug, Clone, Default)]
pub struct SampleSplit {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Validation samples.
    pub val: Vec<Sample>,
    /// Test samples.
    pub test: Vec<Sample>,
}

impl LbsnDataset {
    /// POI accessor.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn poi(&self, id: PoiId) -> &Poi {
        &self.pois[id.0]
    }

    /// Location of a POI.
    pub fn poi_loc(&self, id: PoiId) -> GeoPoint {
        self.pois[id.0].loc
    }

    /// Category of a POI.
    pub fn poi_cate(&self, id: PoiId) -> CategoryId {
        self.pois[id.0].cate
    }

    /// A user's history.
    pub fn user(&self, id: UserId) -> &UserHistory {
        &self.users[id.0]
    }

    /// A specific trajectory.
    pub fn trajectory(&self, sample: &Sample) -> &Trajectory {
        &self.users[sample.user_index].trajectories[sample.traj_index]
    }

    /// The prefix visits of a sample.
    pub fn sample_prefix(&self, sample: &Sample) -> &[Visit] {
        &self.trajectory(sample).visits[..sample.prefix_len]
    }

    /// The ground-truth next visit of a sample.
    pub fn sample_target(&self, sample: &Sample) -> Visit {
        self.trajectory(sample).visits[sample.prefix_len]
    }

    /// Historical trajectories of a sample (all windows before the current
    /// one, per Sec. II-D).
    pub fn sample_history(&self, sample: &Sample) -> &[Trajectory] {
        &self.users[sample.user_index].trajectories[..sample.traj_index]
    }

    /// The raw check-in stream a client would have observed up to a
    /// sample: every visit of the sample's historical trajectories
    /// followed by the current prefix, in time order. This is exactly the
    /// payload an external caller sends to address the same prediction the
    /// sample indexes — re-splitting it at the trajectory gap
    /// ([`crate::AdHocTrajectory::from_checkins`]) reproduces the sample's
    /// `(history, prefix)` decomposition.
    pub fn sample_checkins(&self, sample: &Sample) -> Vec<Visit> {
        let mut out: Vec<Visit> = self
            .sample_history(sample)
            .iter()
            .flat_map(|t| t.visits.iter().copied())
            .collect();
        out.extend_from_slice(self.sample_prefix(sample));
        out
    }

    /// Dataset statistics in the layout of the paper's Table I.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            checkins: self.users.iter().map(UserHistory::num_checkins).sum(),
            users: self.users.iter().filter(|u| u.num_checkins() > 0).count(),
            pois: self.pois.len(),
            categories: self.num_categories,
            coverage_km2: self.region.area_km2(),
        }
    }

    /// Every prediction sample in the dataset.
    pub fn all_samples(&self) -> Vec<Sample> {
        self.users
            .iter()
            .enumerate()
            .flat_map(|(ui, h)| enumerate_samples(ui, h))
            .collect()
    }

    /// Random 80/10/10 split of prediction samples, shuffled by `rng`
    /// (matching the paper's implementation details).
    pub fn split_samples(&self, rng: &mut impl Rng) -> SampleSplit {
        let mut samples = self.all_samples();
        samples.shuffle(rng);
        let n = samples.len();
        let train_end = n * 8 / 10;
        let val_end = n * 9 / 10;
        SampleSplit {
            train: samples[..train_end].to_vec(),
            val: samples[train_end..val_end].to_vec(),
            test: samples[val_end..].to_vec(),
        }
    }

    /// Locations of all POIs (quad-tree build input).
    pub fn poi_locations(&self) -> Vec<GeoPoint> {
        self.pois.iter().map(|p| p.loc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> LbsnDataset {
        let region = BBox::new(0.0, 0.0, 1.0, 1.0);
        let pois = vec![
            Poi {
                id: PoiId(0),
                loc: GeoPoint::new(0.2, 0.2),
                cate: CategoryId(0),
            },
            Poi {
                id: PoiId(1),
                loc: GeoPoint::new(0.8, 0.8),
                cate: CategoryId(1),
            },
        ];
        let mk_visit = |poi: usize, t: Timestamp| Visit {
            poi: PoiId(poi),
            time: t,
        };
        let users = vec![UserHistory {
            user: UserId(0),
            trajectories: vec![
                Trajectory {
                    user: UserId(0),
                    visits: vec![mk_visit(0, 0), mk_visit(1, 3600)],
                },
                Trajectory {
                    user: UserId(0),
                    visits: vec![
                        mk_visit(1, 1_000_000),
                        mk_visit(0, 1_003_600),
                        mk_visit(1, 1_007_200),
                    ],
                },
            ],
        }];
        LbsnDataset {
            name: "toy".into(),
            region,
            pois,
            num_categories: 2,
            users,
        }
    }

    #[test]
    fn stats_count_everything() {
        let ds = toy();
        let s = ds.stats();
        assert_eq!(s.checkins, 5);
        assert_eq!(s.users, 1);
        assert_eq!(s.pois, 2);
        assert_eq!(s.categories, 2);
        assert!(s.coverage_km2 > 0.0);
    }

    #[test]
    fn samples_enumerate_prefixes() {
        let ds = toy();
        let all = ds.all_samples();
        // Trajectory 0 gives 1 sample, trajectory 1 gives 2.
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn sample_accessors_agree() {
        let ds = toy();
        let s = Sample {
            user_index: 0,
            traj_index: 1,
            prefix_len: 2,
        };
        assert_eq!(ds.sample_prefix(&s).len(), 2);
        assert_eq!(ds.sample_target(&s).poi, PoiId(1));
        assert_eq!(ds.sample_history(&s).len(), 1);
    }

    #[test]
    fn sample_checkins_roundtrip_through_adhoc_split() {
        // The payload-addressing invariant: for EVERY sample of a real
        // synthetic dataset, the raw check-in stream re-splits into
        // exactly the sample's (flattened history, prefix) decomposition.
        let mut cfg = crate::presets::nyc_mini(0.1);
        cfg.days = 12;
        let (ds, _world) = crate::synth::generate_dataset(cfg);
        let samples = ds.all_samples();
        assert!(!samples.is_empty());
        for s in &samples {
            let stream = ds.sample_checkins(s);
            let user = ds.users[s.user_index].user;
            let adhoc =
                crate::AdHocTrajectory::from_checkins(user, &stream, crate::DEFAULT_GAP_SECS)
                    .expect("dataset streams are ordered and non-empty");
            let flat_history: Vec<Visit> = ds
                .sample_history(s)
                .iter()
                .flat_map(|t| t.visits.iter().copied())
                .collect();
            assert_eq!(adhoc.history, flat_history, "history diverged for {s:?}");
            assert_eq!(
                adhoc.current,
                ds.sample_prefix(s),
                "prefix diverged for {s:?}"
            );
        }
    }

    #[test]
    fn split_is_partition() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let split = ds.split_samples(&mut rng);
        let total = split.train.len() + split.val.len() + split.test.len();
        assert_eq!(total, ds.all_samples().len());
    }

    #[test]
    fn split_proportions_on_larger_sets() {
        // Synthesise 100 single-trajectory users with 11 visits each
        // → 1000 samples, expect 800/100/100.
        let region = BBox::new(0.0, 0.0, 1.0, 1.0);
        let pois = vec![Poi {
            id: PoiId(0),
            loc: GeoPoint::new(0.5, 0.5),
            cate: CategoryId(0),
        }];
        let users: Vec<UserHistory> = (0..100)
            .map(|u| UserHistory {
                user: UserId(u),
                trajectories: vec![Trajectory {
                    user: UserId(u),
                    visits: (0..11)
                        .map(|i| Visit {
                            poi: PoiId(0),
                            time: i * 60,
                        })
                        .collect(),
                }],
            })
            .collect();
        let ds = LbsnDataset {
            name: "big".into(),
            region,
            pois,
            num_categories: 1,
            users,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let split = ds.split_samples(&mut rng);
        assert_eq!(split.train.len(), 800);
        assert_eq!(split.val.len(), 100);
        assert_eq!(split.test.len(), 100);
    }
}
