//! Agent-based LBSN check-in simulator — the stand-in for Foursquare /
//! Weeplaces data.
//!
//! Real next-POI predictability comes from four generating factors, all of
//! which this simulator encodes so that models exploiting more of them
//! score higher (the paper's headline comparison shape):
//!
//! 1. **Revisit habit** — users keep a favourite-venue set anchored around
//!    home and work and mostly rotate within it.
//! 2. **Temporal routine** — venue *categories* follow time-of-day
//!    archetypes (food at meal slots, nightlife late, offices at commute
//!    hours).
//! 3. **Spatial locality** — the next venue is distance-decayed from the
//!    current one.
//! 4. **Environmental affinity** — venues exist where the world model puts
//!    attractive land (downtown, beachfront), so tile imagery carries real
//!    signal about what can be visited where.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tspn_geo::{BBox, GeoPoint};
use tspn_world::{LandUse, World, WorldConfig};

use crate::dataset::LbsnDataset;
use crate::poi::{CategoryId, Poi, PoiId, UserId, DAY_SECS};
use crate::trajectory::{UserHistory, Visit, DEFAULT_GAP_SECS};

/// Venue archetypes: coarse behavioural groups categories belong to.
/// Category `c` has archetype `c % 6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Restaurants, cafés — meal-time peaks.
    Food,
    /// Retail — daytime/afternoon.
    Shopping,
    /// Offices, coworking — commute-hour peaks, commercial districts.
    Work,
    /// Bars, clubs — evening/night, downtown.
    Nightlife,
    /// Parks, beaches, trails — daylight, park/coastal land.
    Outdoors,
    /// Stations, terminals — commute peaks, high road density.
    Transport,
}

impl Archetype {
    /// Archetype of a category id.
    pub fn of(cate: CategoryId) -> Archetype {
        match cate.0 % 6 {
            0 => Archetype::Food,
            1 => Archetype::Shopping,
            2 => Archetype::Work,
            3 => Archetype::Nightlife,
            4 => Archetype::Outdoors,
            _ => Archetype::Transport,
        }
    }

    /// Affinity of this archetype for a land-use class — how plausible it
    /// is for such a venue to exist there.
    pub fn land_affinity(self, land: LandUse) -> f64 {
        use Archetype::*;
        use LandUse::*;
        match (self, land) {
            (_, Water) => 0.0,
            (Outdoors, Park) => 1.0,
            (_, Park) => 0.05,
            (Food, Commercial) => 1.0,
            (Food, Residential) => 0.6,
            (Shopping, Commercial) => 1.0,
            (Shopping, Residential) => 0.4,
            (Work, Commercial) => 1.0,
            (Work, Industrial) => 0.8,
            (Nightlife, Commercial) => 1.0,
            (Nightlife, Residential) => 0.25,
            (Transport, Commercial) => 0.8,
            (Transport, Industrial) => 0.6,
            (Outdoors, Suburban) => 0.5,
            (Outdoors, Commercial) => 0.1,
            (_, Residential) => 0.3,
            (_, Suburban) => 0.15,
            (_, Industrial) => 0.1,
        }
    }

    /// Time-of-day weight for a half-hour slot (0–47).
    pub fn slot_weight(self, slot: usize) -> f64 {
        let hour = slot as f64 / 2.0;
        let peak = |center: f64, width: f64| -> f64 {
            let d = (hour - center).abs().min(24.0 - (hour - center).abs());
            (-(d * d) / (2.0 * width * width)).exp()
        };
        match self {
            Archetype::Food => peak(8.0, 1.5) + peak(12.5, 1.5) + peak(19.0, 2.0),
            Archetype::Shopping => peak(15.0, 3.0),
            Archetype::Work => peak(9.0, 1.5) + 0.6 * peak(14.0, 2.5),
            Archetype::Nightlife => peak(22.0, 2.5),
            Archetype::Outdoors => peak(11.0, 3.5) + 0.5 * peak(16.0, 2.0),
            Archetype::Transport => peak(8.5, 1.0) + peak(18.0, 1.5),
        }
    }
}

/// Simulator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Master seed.
    pub seed: u64,
    /// Dataset name.
    pub name: String,
    /// World generation parameters (coast, districts, falloff).
    pub world: WorldConfig,
    /// Study region in lat/lon.
    pub region: BBox,
    /// Venue count.
    pub num_pois: usize,
    /// Category count.
    pub num_categories: usize,
    /// User count.
    pub num_users: usize,
    /// Simulated calendar length.
    pub days: usize,
    /// Probability a user is active on a given day (low values create the
    /// ≥ 72 h gaps that split trajectories).
    pub active_day_prob: f64,
    /// Mean visits on an active day.
    pub visits_per_active_day: f64,
    /// Probability a visit explores beyond the favourite set.
    pub explore_prob: f64,
    /// Size of each user's favourite-venue pool.
    pub favorites_per_user: usize,
}

fn weighted_choice(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// The generator, retaining the world so downstream crates can render
/// imagery / roads consistent with the data.
pub struct SynthGenerator {
    config: SynthConfig,
    world: World,
}

impl SynthGenerator {
    /// Creates a generator (instantiates the world).
    pub fn new(config: SynthConfig) -> Self {
        let world = World::new(config.world);
        SynthGenerator { config, world }
    }

    /// The world model backing this dataset.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    fn to_geo(&self, x: f64, y: f64) -> GeoPoint {
        let r = &self.config.region;
        GeoPoint::new(
            r.min_lat + y.clamp(0.0, 1.0 - 1e-9) * r.lat_span(),
            r.min_lon + x.clamp(0.0, 1.0 - 1e-9) * r.lon_span(),
        )
    }

    fn to_norm(&self, p: &GeoPoint) -> (f64, f64) {
        self.config.region.normalize(p)
    }

    /// Places POIs by rejection-sampling world attractiveness and matching
    /// category archetypes to local land use.
    fn place_pois(&self, rng: &mut StdRng) -> Vec<Poi> {
        let mut pois = Vec::with_capacity(self.config.num_pois);
        let mut attempts = 0usize;
        while pois.len() < self.config.num_pois {
            attempts += 1;
            assert!(
                attempts < self.config.num_pois * 10_000,
                "POI placement failed to converge — world too hostile"
            );
            let x = rng.gen_range(0.0..1.0);
            let y = rng.gen_range(0.0..1.0);
            let attract = self.world.attractiveness(x, y);
            if rng.gen::<f64>() >= attract {
                continue;
            }
            let land = self.world.land_use(x, y);
            // Category conditioned on land use via archetype affinity.
            let weights: Vec<f64> = (0..self.config.num_categories)
                .map(|c| Archetype::of(CategoryId(c)).land_affinity(land).max(1e-3))
                .collect();
            let cate = CategoryId(weighted_choice(rng, &weights));
            pois.push(Poi {
                id: PoiId(pois.len()),
                loc: self.to_geo(x, y),
                cate,
            });
        }
        pois
    }

    /// Zipf-ish popularity: POI `i` has weight `1 / (1 + i mod 97)^0.8`,
    /// shuffled by id hash so popularity is independent of placement order.
    fn popularity(&self, poi: PoiId) -> f64 {
        let h = (poi.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.config.seed;
        let rank = (h % 97) as f64;
        1.0 / (1.0 + rank).powf(0.8)
    }

    fn sample_location_by(
        &self,
        rng: &mut StdRng,
        score: impl Fn(&World, f64, f64) -> f64,
    ) -> (f64, f64) {
        for _ in 0..10_000 {
            let x = rng.gen_range(0.0..1.0);
            let y = rng.gen_range(0.0..1.0);
            if rng.gen::<f64>() < score(&self.world, x, y) {
                return (x, y);
            }
        }
        // Fall back to the first district centre.
        self.world.districts()[0]
    }

    /// Runs the full simulation.
    pub fn generate(&self) -> LbsnDataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pois = self.place_pois(&mut rng);
        let poi_norm: Vec<(f64, f64)> = pois.iter().map(|p| self.to_norm(&p.loc)).collect();

        let mut users = Vec::with_capacity(cfg.num_users);
        for uid in 0..cfg.num_users {
            let mut urng = StdRng::seed_from_u64(cfg.seed ^ (0xA11CE + uid as u64 * 7919));
            // Home in residential-ish land, work in commercial-ish land.
            // In coastal worlds a quarter of the population lives on the
            // shoreline band (beach towns) — the coastal-active users of
            // the paper's Florida case study.
            let coastal_dweller =
                self.world.config().coast != tspn_world::Coast::None && urng.gen::<f64>() < 0.25;
            let home = self.sample_location_by(&mut urng, |w, x, y| {
                if coastal_dweller {
                    if w.is_coastal(x, y) {
                        return 0.9;
                    }
                    return 0.005;
                }
                match w.land_use(x, y) {
                    LandUse::Residential => 0.9,
                    LandUse::Suburban => 0.4,
                    _ => 0.02,
                }
            });
            let work = self.sample_location_by(&mut urng, |w, x, y| match w.land_use(x, y) {
                LandUse::Commercial => 0.9,
                LandUse::Industrial => 0.3,
                _ => 0.02,
            });
            // Favourite pool: popularity × proximity to home or work.
            let mut fav_weights: Vec<f64> = poi_norm
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    let dh = ((x - home.0).powi(2) + (y - home.1).powi(2)).sqrt();
                    let dw = ((x - work.0).powi(2) + (y - work.1).powi(2)).sqrt();
                    let prox = (-12.0 * dh.min(dw)).exp();
                    self.popularity(PoiId(i)) * prox
                })
                .collect();
            let mut favorites = Vec::with_capacity(cfg.favorites_per_user);
            for _ in 0..cfg.favorites_per_user.min(pois.len()) {
                let pick = weighted_choice(&mut urng, &fav_weights);
                favorites.push(PoiId(pick));
                fav_weights[pick] = 0.0;
            }

            // Simulate the calendar.
            let mut visits: Vec<Visit> = Vec::new();
            for day in 0..cfg.days {
                if urng.gen::<f64>() >= cfg.active_day_prob {
                    continue;
                }
                let n_visits = 1 + (urng.gen::<f64>() * cfg.visits_per_active_day * 2.0) as usize;
                // Day starts morning-ish at home.
                let mut current = home;
                let mut t = day as i64 * DAY_SECS + 7 * 3600 + urng.gen_range(0..3600 * 2);
                for _ in 0..n_visits {
                    let slot = crate::poi::time_slot(t);
                    let poi =
                        self.pick_next_poi(&mut urng, &pois, &poi_norm, &favorites, current, slot);
                    visits.push(Visit { poi, time: t });
                    current = poi_norm[poi.0];
                    t += urng.gen_range(45 * 60..4 * 3600);
                    if crate::poi::time_slot(t) < slot {
                        break; // wrapped past midnight — end the day
                    }
                }
            }
            visits.sort_by_key(|v| v.time);
            users.push(UserHistory::from_visits(
                UserId(uid),
                &visits,
                DEFAULT_GAP_SECS,
            ));
        }

        LbsnDataset {
            name: cfg.name.clone(),
            region: cfg.region,
            pois,
            num_categories: cfg.num_categories,
            users,
        }
    }

    /// One decision step of the agent.
    fn pick_next_poi(
        &self,
        rng: &mut StdRng,
        pois: &[Poi],
        poi_norm: &[(f64, f64)],
        favorites: &[PoiId],
        current: (f64, f64),
        slot: usize,
    ) -> PoiId {
        let explore = rng.gen::<f64>() < self.config.explore_prob;
        if !explore && !favorites.is_empty() {
            // Favourite weighted by time-of-day archetype fit.
            let weights: Vec<f64> = favorites
                .iter()
                .map(|&f| {
                    let arch = Archetype::of(pois[f.0].cate);
                    0.05 + arch.slot_weight(slot)
                })
                .collect();
            return favorites[weighted_choice(rng, &weights)];
        }
        // Explore: every POI weighted by distance decay × popularity ×
        // archetype/time fit.
        let weights: Vec<f64> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (x, y) = poi_norm[i];
                let d = ((x - current.0).powi(2) + (y - current.1).powi(2)).sqrt();
                let arch = Archetype::of(p.cate);
                (-9.0 * d).exp() * self.popularity(p.id) * (0.05 + arch.slot_weight(slot))
            })
            .collect();
        PoiId(weighted_choice(rng, &weights))
    }
}

/// Convenience: build generator + dataset in one call.
pub fn generate_dataset(config: SynthConfig) -> (LbsnDataset, World) {
    let g = SynthGenerator::new(config);
    let ds = g.generate();
    let world = g.world().clone();
    (ds, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_world::Coast;

    fn small_config() -> SynthConfig {
        SynthConfig {
            seed: 42,
            name: "test-city".into(),
            world: WorldConfig {
                seed: 42,
                coast: Coast::East,
                ocean_fraction: 0.25,
                num_districts: 3,
                density_falloff: 5.0,
            },
            region: BBox::new(25.0, -81.0, 26.0, -80.0),
            num_pois: 120,
            num_categories: 24,
            num_users: 10,
            days: 30,
            active_day_prob: 0.45,
            visits_per_active_day: 2.0,
            explore_prob: 0.3,
            favorites_per_user: 8,
        }
    }

    #[test]
    fn generates_requested_counts() {
        let (ds, _) = generate_dataset(small_config());
        assert_eq!(ds.pois.len(), 120);
        assert_eq!(ds.users.len(), 10);
        let stats = ds.stats();
        assert!(
            stats.checkins > 100,
            "too few check-ins: {}",
            stats.checkins
        );
        assert!(stats.categories == 24);
    }

    #[test]
    fn deterministic_for_seed() {
        let (a, _) = generate_dataset(small_config());
        let (b, _) = generate_dataset(small_config());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.pois, b.pois);
    }

    #[test]
    fn pois_stay_on_land_and_in_region() {
        let cfg = small_config();
        let g = SynthGenerator::new(cfg.clone());
        let ds = g.generate();
        for p in &ds.pois {
            assert!(ds.region.contains_closed(&p.loc), "POI outside region");
            let (x, y) = ds.region.normalize(&p.loc);
            assert!(!g.world().is_water_at(x, y), "POI in the ocean");
        }
    }

    #[test]
    fn trajectories_respect_gap_splitting() {
        let (ds, _) = generate_dataset(small_config());
        for u in &ds.users {
            for t in &u.trajectories {
                for w in t.visits.windows(2) {
                    assert!(w[1].time - w[0].time < DEFAULT_GAP_SECS);
                    assert!(w[1].time >= w[0].time);
                }
            }
        }
    }

    #[test]
    fn users_revisit_favorites() {
        // With explore_prob 0.3, most visits should hit a small pool:
        // the revisit signal MC and sequence models learn from.
        let (ds, _) = generate_dataset(small_config());
        let mut repeat_users = 0;
        for u in &ds.users {
            let mut counts = std::collections::HashMap::new();
            for t in &u.trajectories {
                for v in &t.visits {
                    *counts.entry(v.poi).or_insert(0usize) += 1;
                }
            }
            let total: usize = counts.values().sum();
            let top5: usize = {
                let mut c: Vec<usize> = counts.values().copied().collect();
                c.sort_unstable_by(|a, b| b.cmp(a));
                c.iter().take(5).sum()
            };
            if total > 10 && top5 * 2 > total {
                repeat_users += 1;
            }
        }
        assert!(
            repeat_users >= 6,
            "only {repeat_users}/10 users show revisit concentration"
        );
    }

    #[test]
    fn consecutive_visits_are_spatially_local() {
        let (ds, _) = generate_dataset(small_config());
        let mut hops = Vec::new();
        for u in &ds.users {
            for t in &u.trajectories {
                for w in t.visits.windows(2) {
                    hops.push(
                        ds.poi_loc(w[0].poi)
                            .equirectangular_km(&ds.poi_loc(w[1].poi)),
                    );
                }
            }
        }
        assert!(!hops.is_empty());
        let mean_hop = hops.iter().sum::<f64>() / hops.len() as f64;
        // Region is ~111 km wide; locality means hops far below random
        // (~52 km for uniform pairs).
        assert!(
            mean_hop < 30.0,
            "mean hop {mean_hop} km too large — no locality"
        );
    }

    #[test]
    fn archetype_slot_weights_peak_sensibly() {
        // Nightlife peaks later than food's lunch peak.
        let night_at_22 = Archetype::Nightlife.slot_weight(44);
        let night_at_10 = Archetype::Nightlife.slot_weight(20);
        assert!(night_at_22 > night_at_10 * 3.0);
        let food_at_noon = Archetype::Food.slot_weight(25);
        assert!(food_at_noon > 0.5);
    }

    #[test]
    fn water_archetype_affinity_is_zero() {
        for c in 0..6 {
            assert_eq!(
                Archetype::of(CategoryId(c)).land_affinity(LandUse::Water),
                0.0
            );
        }
    }
}
