//! # tspn-data
//!
//! LBSN data substrate for the TSPN-RA reproduction:
//!
//! * core types ([`Poi`], [`Checkin`], [`Visit`], [`Trajectory`]) with the
//!   paper's 72-hour trajectory windowing (Sec. II-A) and prediction-sample
//!   extraction (history + current prefix → next visit),
//! * [`LbsnDataset`] with Table-I statistics and the 80/10/10 split,
//! * an agent-based check-in simulator ([`synth::SynthGenerator`]) that
//!   replaces the unavailable Foursquare/Weeplaces data while preserving
//!   the generating factors models learn from (revisit habit, temporal
//!   routine, spatial locality, environmental affinity),
//! * four presets mirroring the paper's datasets at laptop scale
//!   ([`presets::nyc_mini`] etc.),
//! * CSV interchange ([`io`]).

#![warn(missing_docs)]

mod dataset;
pub mod io;
pub mod mobility;
mod poi;
pub mod presets;
pub mod synth;
mod trajectory;

pub use dataset::{DatasetStats, LbsnDataset, SampleSplit};
pub use poi::{
    time_slot, CategoryId, Checkin, Poi, PoiId, Timestamp, UserId, DAY_SECS, TIME_SLOTS,
};
pub use trajectory::{
    enumerate_samples, first_invalid_poi, split_trajectories, AdHocTrajectory, CheckinStreamError,
    Sample, Trajectory, UserHistory, Visit, DEFAULT_GAP_SECS,
};
