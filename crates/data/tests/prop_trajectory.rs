//! Property tests for trajectory windowing and sample extraction — the
//! invariants the training pipeline silently relies on.

use proptest::prelude::*;
use tspn_data::{
    enumerate_samples, split_trajectories, PoiId, UserHistory, UserId, Visit, DEFAULT_GAP_SECS,
};

/// Random sorted visit streams with gap structure.
fn arb_visits() -> impl Strategy<Value = Vec<Visit>> {
    proptest::collection::vec((0usize..50, 0i64..200), 0..60).prop_map(|raw| {
        let mut t = 0i64;
        raw.into_iter()
            .map(|(poi, gap_hours)| {
                t += gap_hours * 3600;
                Visit {
                    poi: PoiId(poi),
                    time: t,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn splitting_preserves_every_visit_in_order(visits in arb_visits()) {
        let trajs = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        let rejoined: Vec<Visit> = trajs.iter().flat_map(|t| t.visits.iter().copied()).collect();
        prop_assert_eq!(rejoined, visits);
    }

    #[test]
    fn no_window_contains_a_gap(visits in arb_visits()) {
        let trajs = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        for t in &trajs {
            for w in t.visits.windows(2) {
                prop_assert!(w[1].time - w[0].time < DEFAULT_GAP_SECS);
            }
        }
    }

    #[test]
    fn windows_are_separated_by_real_gaps(visits in arb_visits()) {
        let trajs = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        for pair in trajs.windows(2) {
            let last = pair[0].visits.last().expect("non-empty window");
            let first = pair[1].visits.first().expect("non-empty window");
            prop_assert!(first.time - last.time >= DEFAULT_GAP_SECS);
        }
    }

    #[test]
    fn no_empty_trajectories(visits in arb_visits()) {
        let trajs = split_trajectories(UserId(0), &visits, DEFAULT_GAP_SECS);
        prop_assert!(trajs.iter().all(|t| !t.is_empty()));
        if visits.is_empty() {
            prop_assert!(trajs.is_empty());
        }
    }

    #[test]
    fn sample_count_is_checkins_minus_windows(visits in arb_visits()) {
        let history = UserHistory::from_visits(UserId(3), &visits, DEFAULT_GAP_SECS);
        let samples = enumerate_samples(0, &history);
        // Every trajectory of length L ≥ 2 yields L−1 samples; singletons 0.
        let expected: usize = history
            .trajectories
            .iter()
            .map(|t| t.len().saturating_sub(1))
            .sum();
        prop_assert_eq!(samples.len(), expected);
    }

    #[test]
    fn samples_index_valid_targets(visits in arb_visits()) {
        let history = UserHistory::from_visits(UserId(1), &visits, DEFAULT_GAP_SECS);
        for s in enumerate_samples(0, &history) {
            let traj = &history.trajectories[s.traj_index];
            prop_assert!(s.prefix_len >= 1);
            prop_assert!(s.prefix_len < traj.len(), "target must exist after the prefix");
        }
    }
}
