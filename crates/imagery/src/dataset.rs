//! Tile-image dataset: one rendered remote-sensing image per quad-tree
//! leaf tile, mirroring the paper's `D_I = {I_1, …, I_|D_I|}`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tspn_geo::{BBox, NodeId, QuadTree};
use tspn_world::World;

use crate::image::TileImage;
use crate::noise_injection::corrupt_pixels;
use crate::render::TileRenderer;

/// Rendered imagery for every leaf tile of a quad-tree.
#[derive(Debug, Clone)]
pub struct ImageryDataset {
    images: HashMap<NodeId, TileImage>,
    size: usize,
}

impl ImageryDataset {
    /// Renders `size × size` imagery for all leaves of `tree` over `region`.
    pub fn render_for_tree(world: &World, region: BBox, tree: &QuadTree, size: usize) -> Self {
        let renderer = TileRenderer::new(world, region);
        let images = tree
            .leaves()
            .into_iter()
            .map(|leaf| (leaf, renderer.render(&tree.node(leaf).bbox, size)))
            .collect();
        ImageryDataset { images, size }
    }

    /// Renders imagery for *every* tree node — non-leaf tiles get coarser,
    /// larger-area views, mirroring the paper's multi-scale imagery
    /// discussion (Fig. 4): the same pixel budget covers more ground for
    /// large tiles.
    pub fn render_all_nodes(world: &World, region: BBox, tree: &QuadTree, size: usize) -> Self {
        let renderer = TileRenderer::new(world, region);
        let images = tree
            .iter()
            .map(|node| (node.id, renderer.render(&node.bbox, size)))
            .collect();
        ImageryDataset { images, size }
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.size
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when no tiles were rendered.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Image for a tile, if rendered.
    pub fn get(&self, tile: NodeId) -> Option<&TileImage> {
        self.images.get(&tile)
    }

    /// Iterates `(tile, image)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &TileImage)> {
        self.images.iter()
    }

    /// A corrupted copy of the dataset (Fig. 12b's "noisy imagery" arm).
    /// Deterministic for a given seed.
    pub fn with_noise(&self, fraction: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Deterministic iteration order: sort by tile id before corrupting.
        let mut entries: Vec<(&NodeId, &TileImage)> = self.images.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        let images = entries
            .into_iter()
            .map(|(id, img)| (*id, corrupt_pixels(img, fraction, &mut rng)))
            .collect();
        ImageryDataset {
            images,
            size: self.size,
        }
    }

    /// Total bytes of pixel storage — feeds the Table V memory accounting.
    pub fn pixel_bytes(&self) -> usize {
        self.images.values().map(|i| i.pixels.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_geo::{GeoPoint, QuadTreeConfig};
    use tspn_world::{Coast, WorldConfig};

    fn setup() -> (World, BBox, QuadTree) {
        let world = World::new(WorldConfig {
            seed: 3,
            coast: Coast::East,
            ocean_fraction: 0.25,
            num_districts: 2,
            density_falloff: 5.0,
        });
        let region = BBox::new(0.0, 0.0, 1.0, 1.0);
        let pts: Vec<GeoPoint> = (0..200)
            .map(|i| {
                GeoPoint::new(
                    ((i * 37 % 100) as f64 / 100.0).min(0.999),
                    ((i * 61 % 100) as f64 / 100.0).min(0.999),
                )
            })
            .collect();
        let tree = QuadTree::build(
            region,
            &pts,
            QuadTreeConfig {
                max_depth: 5,
                leaf_capacity: 20,
            },
        );
        (world, region, tree)
    }

    #[test]
    fn renders_one_image_per_leaf() {
        let (world, region, tree) = setup();
        let ds = ImageryDataset::render_for_tree(&world, region, &tree, 16);
        assert_eq!(ds.len(), tree.leaves().len());
        for leaf in tree.leaves() {
            assert!(ds.get(leaf).is_some());
            assert_eq!(ds.get(leaf).expect("image").size, 16);
        }
    }

    #[test]
    fn noise_copy_differs_but_same_tiles() {
        let (world, region, tree) = setup();
        let ds = ImageryDataset::render_for_tree(&world, region, &tree, 16);
        let noisy = ds.with_noise(0.2, 7);
        assert_eq!(noisy.len(), ds.len());
        let mut changed = 0;
        for (id, img) in ds.iter() {
            if noisy.get(*id).expect("tile") != img {
                changed += 1;
            }
        }
        assert!(changed > ds.len() / 2, "noise changed only {changed} tiles");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (world, region, tree) = setup();
        let ds = ImageryDataset::render_for_tree(&world, region, &tree, 8);
        let a = ds.with_noise(0.3, 11);
        let b = ds.with_noise(0.3, 11);
        for (id, img) in a.iter() {
            assert_eq!(b.get(*id).expect("tile"), img);
        }
    }

    #[test]
    fn pixel_bytes_accounting() {
        let (world, region, tree) = setup();
        let ds = ImageryDataset::render_for_tree(&world, region, &tree, 8);
        assert_eq!(ds.pixel_bytes(), ds.len() * 8 * 8 * 3);
    }
}
