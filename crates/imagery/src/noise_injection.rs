//! Imagery corruption for the robustness study.
//!
//! The paper's case study (Fig. 12b) adds 20 % noise to the satellite
//! imagery and shows the coastline signal collapse. This module provides
//! the same perturbations.

use rand::Rng;

use crate::image::TileImage;

/// Replaces `fraction` of the pixels with uniform random colours
/// (salt-and-pepper style, matching "20 % noise" in the paper).
pub fn corrupt_pixels(img: &TileImage, fraction: f64, rng: &mut impl Rng) -> TileImage {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "noise fraction out of range"
    );
    let mut out = img.clone();
    for y in 0..img.size {
        for x in 0..img.size {
            if rng.gen::<f64>() < fraction {
                out.set(x, y, [rng.gen(), rng.gen(), rng.gen()]);
            }
        }
    }
    out
}

/// Adds zero-mean Gaussian noise with the given standard deviation
/// (in 0–255 units) to every channel.
pub fn gaussian_noise(img: &TileImage, std: f64, rng: &mut impl Rng) -> TileImage {
    let mut out = img.clone();
    for px in out.pixels.iter_mut() {
        // Box–Muller on demand; speed is irrelevant at these sizes.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        *px = (*px as f64 + std * z).clamp(0.0, 255.0) as u8;
    }
    out
}

/// Fraction of pixels differing between two images of the same size.
pub fn pixel_diff_fraction(a: &TileImage, b: &TileImage) -> f64 {
    assert_eq!(a.size, b.size, "image sizes differ");
    let total = a.size * a.size;
    let mut diff = 0usize;
    for y in 0..a.size {
        for x in 0..a.size {
            if a.get(x, y) != b.get(x, y) {
                diff += 1;
            }
        }
    }
    diff as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_image() -> TileImage {
        let mut img = TileImage::black(32);
        for y in 0..32 {
            for x in 0..32 {
                img.set(x, y, [(x * 8) as u8, (y * 8) as u8, 128]);
            }
        }
        img
    }

    #[test]
    fn zero_fraction_is_identity() {
        let img = sample_image();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(corrupt_pixels(&img, 0.0, &mut rng), img);
    }

    #[test]
    fn twenty_percent_corrupts_roughly_twenty_percent() {
        let img = sample_image();
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = corrupt_pixels(&img, 0.2, &mut rng);
        let frac = pixel_diff_fraction(&img, &noisy);
        assert!((frac - 0.2).abs() < 0.05, "corruption fraction {frac}");
    }

    #[test]
    fn full_fraction_corrupts_almost_everything() {
        let img = sample_image();
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = corrupt_pixels(&img, 1.0, &mut rng);
        assert!(pixel_diff_fraction(&img, &noisy) > 0.95);
    }

    #[test]
    fn gaussian_noise_perturbs_but_preserves_mean() {
        let img = sample_image();
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = gaussian_noise(&img, 10.0, &mut rng);
        let m0 = img.mean_rgb();
        let m1 = noisy.mean_rgb();
        for c in 0..3 {
            assert!(
                (m0[c] - m1[c]).abs() < 5.0,
                "channel {c} mean moved too far"
            );
        }
        assert!(pixel_diff_fraction(&img, &noisy) > 0.5);
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn rejects_bad_fraction() {
        let img = sample_image();
        let mut rng = StdRng::seed_from_u64(5);
        corrupt_pixels(&img, 1.5, &mut rng);
    }
}
