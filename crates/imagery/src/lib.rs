//! # tspn-imagery
//!
//! Synthetic remote-sensing imagery — the stand-in for the Google-Maps
//! satellite tiles the paper crops per quad-tree tile (Sec. II-C, III).
//!
//! * [`TileImage`] — square RGB images with CHW float export for the CNN
//!   embedding module `Me1`,
//! * [`TileRenderer`] — renders a tile's bounding box from the shared
//!   [`tspn_world::World`] land-use/road fields, so coastlines, parks and
//!   district structure are visible in pixels exactly as they are in the
//!   underlying "geography",
//! * [`ImageryDataset`] — one image per quad-tree leaf (`D_I` in the
//!   paper), with deterministic noise injection for the Fig. 12b study.

#![warn(missing_docs)]

mod dataset;
mod image;
mod noise_injection;
mod render;

pub use dataset::ImageryDataset;
pub use image::TileImage;
pub use noise_injection::{corrupt_pixels, gaussian_noise, pixel_diff_fraction};
pub use render::TileRenderer;
