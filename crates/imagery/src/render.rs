//! The synthetic remote-sensing renderer: turns a world-model tile into an
//! RGB "satellite" image.
//!
//! The paper extracts a 256×256 Google-Maps image per quad-tree tile
//! (Sec. III, phase 1). Here each pixel samples the world's land-use field,
//! modulated by per-pixel texture noise and a road overlay, so the rendered
//! tile carries exactly the environmental signal (coastlines, parks, road
//! density, district structure) that the paper's `Me1` CNN is meant to
//! exploit.

use tspn_geo::BBox;
use tspn_world::{LandUse, ValueNoise, World};

use crate::image::TileImage;

/// Renderer over one world. Cheap to clone; holds only seeds.
#[derive(Debug, Clone)]
pub struct TileRenderer<'w> {
    world: &'w World,
    /// The full study region; tiles are sub-boxes of it.
    region: BBox,
    texture: ValueNoise,
}

impl<'w> TileRenderer<'w> {
    /// Creates a renderer for a world over the given study region.
    pub fn new(world: &'w World, region: BBox) -> Self {
        let seed = world.config().seed ^ 0x1A6E_52AD_D15C_0B01;
        TileRenderer {
            world,
            region,
            texture: ValueNoise::new(seed),
        }
    }

    /// Renders the tile covering `tile_bbox` at `size × size` pixels.
    pub fn render(&self, tile_bbox: &BBox, size: usize) -> TileImage {
        let mut img = TileImage::black(size);
        for py in 0..size {
            for px in 0..size {
                // Pixel centre in normalised world coordinates. Image y
                // grows downward; latitude grows upward.
                let fx = (px as f64 + 0.5) / size as f64;
                let fy = (py as f64 + 0.5) / size as f64;
                let lon = tile_bbox.min_lon + fx * tile_bbox.lon_span();
                let lat = tile_bbox.max_lat - fy * tile_bbox.lat_span();
                let (wx, wy) = self.region.normalize(&tspn_geo::GeoPoint::new(
                    lat.clamp(-90.0, 90.0),
                    lon.clamp(-180.0, 180.0),
                ));
                img.set(px, py, self.pixel(wx, wy));
            }
        }
        img
    }

    /// Colour of a single world location.
    fn pixel(&self, wx: f64, wy: f64) -> [u8; 3] {
        let land = self.world.land_use(wx, wy);
        let base = land.base_color();
        // Texture: high-frequency brightness variation so tiles of the same
        // class are similar but not identical.
        let tex = self.texture.fbm(wx * 220.0, wy * 220.0, 2) - 0.5;
        let brightness = 1.0 + 0.25 * tex;
        let mut rgb = [0u8; 3];
        for c in 0..3 {
            rgb[c] = (base[c] as f64 * brightness).clamp(0.0, 255.0) as u8;
        }
        // Road overlay: thin bright lines where the road field peaks.
        if land != LandUse::Water {
            let road = self.world.road_density(wx, wy);
            let grid = self.texture.sample(wx * 900.0, wy * 900.0);
            if road > 0.35 && grid > 0.82 {
                rgb = [208, 204, 196]; // asphalt-grey road pixels
            }
        }
        rgb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_world::{Coast, WorldConfig};

    fn setup() -> (World, BBox) {
        let world = World::new(WorldConfig {
            seed: 5,
            coast: Coast::East,
            ocean_fraction: 0.3,
            num_districts: 3,
            density_falloff: 5.0,
        });
        (world, BBox::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn render_is_deterministic() {
        let (world, region) = setup();
        let r = TileRenderer::new(&world, region);
        let tile = BBox::new(0.2, 0.2, 0.4, 0.4);
        assert_eq!(r.render(&tile, 32), r.render(&tile, 32));
    }

    #[test]
    fn ocean_tiles_are_blue_dominant() {
        let (world, region) = setup();
        let r = TileRenderer::new(&world, region);
        // Far-east tile: ocean in this config.
        let tile = BBox::new(0.4, 0.92, 0.6, 0.99);
        let img = r.render(&tile, 32);
        let [mr, _mg, mb] = img.mean_rgb();
        assert!(mb > mr * 1.5, "ocean should be blue: R {mr}, B {mb}");
    }

    #[test]
    fn downtown_differs_from_ocean() {
        let (world, region) = setup();
        let r = TileRenderer::new(&world, region);
        let (dx, dy) = world.districts()[0];
        let downtown = r.render(
            &BBox::new(
                (dy - 0.02).max(0.0),
                (dx - 0.02).max(0.0),
                (dy + 0.02).min(1.0),
                (dx + 0.02).min(1.0),
            ),
            32,
        );
        let ocean = r.render(&BBox::new(0.4, 0.93, 0.6, 0.99), 32);
        let d = downtown.mean_rgb();
        let o = ocean.mean_rgb();
        let dist: f32 = d.iter().zip(o).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 60.0, "downtown and ocean tiles too similar: {dist}");
    }

    #[test]
    fn different_tiles_render_differently() {
        let (world, region) = setup();
        let r = TileRenderer::new(&world, region);
        let a = r.render(&BBox::new(0.1, 0.1, 0.2, 0.2), 16);
        let b = r.render(&BBox::new(0.5, 0.3, 0.6, 0.4), 16);
        assert_ne!(a, b);
    }
}
