//! RGB tile images: the in-memory representation of remote-sensing tiles.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A square RGB image (row-major, 3 bytes per pixel).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileImage {
    /// Side length in pixels.
    pub size: usize,
    /// Pixel buffer, `size * size * 3` bytes.
    pub pixels: Vec<u8>,
}

impl TileImage {
    /// All-black image.
    pub fn black(size: usize) -> Self {
        TileImage {
            size,
            pixels: vec![0; size * size * 3],
        }
    }

    /// Builds from a pixel buffer.
    ///
    /// # Panics
    /// Panics when the buffer length is not `size² · 3`.
    pub fn from_pixels(size: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(
            pixels.len(),
            size * size * 3,
            "pixel buffer length {} does not match {size}×{size}×3",
            pixels.len()
        );
        TileImage { size, pixels }
    }

    /// Pixel accessor.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.size + x) * 3;
        [self.pixels[i], self.pixels[i + 1], self.pixels[i + 2]]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = (y * self.size + x) * 3;
        self.pixels[i..i + 3].copy_from_slice(&rgb);
    }

    /// Converts to channel-first normalised floats `[3, size, size]` in
    /// `[0, 1]` — the layout `tspn-core`'s CNN embedding module consumes.
    pub fn to_chw_f32(&self) -> Vec<f32> {
        let s = self.size;
        let mut out = vec![0.0f32; 3 * s * s];
        for y in 0..s {
            for x in 0..s {
                let px = self.get(x, y);
                for c in 0..3 {
                    out[c * s * s + y * s + x] = px[c] as f32 / 255.0;
                }
            }
        }
        out
    }

    /// Mean RGB value (useful for cheap image statistics in tests).
    pub fn mean_rgb(&self) -> [f32; 3] {
        let mut acc = [0.0f64; 3];
        for chunk in self.pixels.chunks_exact(3) {
            for c in 0..3 {
                acc[c] += chunk[c] as f64;
            }
        }
        let n = (self.size * self.size) as f64;
        [
            (acc[0] / n) as f32,
            (acc[1] / n) as f32,
            (acc[2] / n) as f32,
        ]
    }

    /// Box-filter downsample by an integer factor (e.g. paper-scale 256 →
    /// default training scale 64 with factor 4).
    pub fn downsample(&self, factor: usize) -> TileImage {
        assert!(
            factor >= 1 && self.size.is_multiple_of(factor),
            "bad downsample factor"
        );
        let ns = self.size / factor;
        let mut out = TileImage::black(ns);
        for y in 0..ns {
            for x in 0..ns {
                let mut acc = [0u32; 3];
                for dy in 0..factor {
                    for dx in 0..factor {
                        let p = self.get(x * factor + dx, y * factor + dy);
                        for c in 0..3 {
                            acc[c] += p[c] as u32;
                        }
                    }
                }
                let n = (factor * factor) as u32;
                out.set(
                    x,
                    y,
                    [(acc[0] / n) as u8, (acc[1] / n) as u8, (acc[2] / n) as u8],
                );
            }
        }
        out
    }

    /// Zero-copy view of the raw bytes (for storage / hashing).
    pub fn as_bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.pixels)
    }

    /// Writes the image as binary PPM (P6) — viewable with any image
    /// viewer, no codec dependencies.
    pub fn write_ppm(&self, mut out: impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "P6\n{} {}\n255", self.size, self.size)?;
        out.write_all(&self.pixels)?;
        out.flush()
    }

    /// Reads a binary PPM (P6) produced by [`TileImage::write_ppm`].
    ///
    /// # Errors
    /// Returns an error for non-P6 files, non-square sizes or truncated
    /// pixel data.
    pub fn read_ppm(mut input: impl std::io::Read) -> std::io::Result<TileImage> {
        let mut raw = Vec::new();
        input.read_to_end(&mut raw)?;
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());

        // Four whitespace-separated header tokens: magic, width, height,
        // max value — then exactly one whitespace byte before the pixels.
        let mut idx = 0usize;
        let mut tokens: Vec<String> = Vec::with_capacity(4);
        while tokens.len() < 4 {
            while idx < raw.len() && raw[idx].is_ascii_whitespace() {
                idx += 1;
            }
            let start = idx;
            while idx < raw.len() && !raw[idx].is_ascii_whitespace() {
                idx += 1;
            }
            if start == idx {
                return Err(bad("truncated header"));
            }
            tokens.push(
                std::str::from_utf8(&raw[start..idx])
                    .map_err(|_| bad("non-UTF8 header"))?
                    .to_string(),
            );
        }
        idx += 1; // the single whitespace after the max value
        if tokens[0] != "P6" {
            return Err(bad("not a P6 PPM"));
        }
        let w: usize = tokens[1].parse().map_err(|_| bad("bad width"))?;
        let h: usize = tokens[2].parse().map_err(|_| bad("bad height"))?;
        if w != h {
            return Err(bad("tile images must be square"));
        }
        if raw.len() < idx + w * h * 3 {
            return Err(bad("truncated pixel data"));
        }
        Ok(TileImage::from_pixels(
            w,
            raw[idx..idx + w * h * 3].to_vec(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_is_zeroed() {
        let img = TileImage::black(4);
        assert_eq!(img.pixels.len(), 48);
        assert_eq!(img.get(2, 3), [0, 0, 0]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = TileImage::black(8);
        img.set(3, 5, [10, 20, 30]);
        assert_eq!(img.get(3, 5), [10, 20, 30]);
        assert_eq!(img.get(5, 3), [0, 0, 0]);
    }

    #[test]
    fn chw_layout_and_normalisation() {
        let mut img = TileImage::black(2);
        img.set(1, 0, [255, 0, 127]);
        let f = img.to_chw_f32();
        assert_eq!(f.len(), 12);
        // Pixel (x=1, y=0) is index 1 in each 2×2 channel plane.
        assert!((f[1] - 1.0).abs() < 1e-6); // R plane
        assert!((f[4 + 1] - 0.0).abs() < 1e-6); // G plane
        assert!((f[8 + 1] - 127.0 / 255.0).abs() < 1e-6); // B plane
    }

    #[test]
    fn mean_rgb_average() {
        let mut img = TileImage::black(2);
        for y in 0..2 {
            for x in 0..2 {
                img.set(x, y, [100, 0, 200]);
            }
        }
        let m = img.mean_rgb();
        assert_eq!(m, [100.0, 0.0, 200.0]);
    }

    #[test]
    fn downsample_averages_blocks() {
        let mut img = TileImage::black(4);
        // Top-left 2×2 block all at 100.
        for y in 0..2 {
            for x in 0..2 {
                img.set(x, y, [100, 100, 100]);
            }
        }
        let half = img.downsample(2);
        assert_eq!(half.size, 2);
        assert_eq!(half.get(0, 0), [100, 100, 100]);
        assert_eq!(half.get(1, 1), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_pixels_validates_length() {
        TileImage::from_pixels(2, vec![0; 5]);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut img = TileImage::black(4);
        for y in 0..4 {
            for x in 0..4 {
                img.set(x, y, [(x * 60) as u8, (y * 60) as u8, 200]);
            }
        }
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).expect("write");
        assert!(buf.starts_with(b"P6\n4 4\n255\n"));
        let back = TileImage::read_ppm(&buf[..]).expect("read");
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_rejects_garbage() {
        assert!(TileImage::read_ppm(&b"P5\n2 2\n255\nxxxx"[..]).is_err());
        assert!(TileImage::read_ppm(&b"P6\n2 3\n255\n"[..]).is_err()); // non-square
        assert!(TileImage::read_ppm(&b"P6\n2 2\n255\nxy"[..]).is_err()); // truncated
        assert!(TileImage::read_ppm(&b""[..]).is_err());
    }
}
