//! Property tests for the region quad-tree invariants the paper relies on:
//! leaves partition the region, every POI lives in exactly one leaf, and
//! the Ω/D bounds hold.

use proptest::prelude::*;
use tspn_geo::{BBox, GeoPoint, GridIndex, QuadTree, QuadTreeConfig};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<GeoPoint>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..max)
        .prop_map(|v| v.into_iter().map(|(a, b)| GeoPoint::new(a, b)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn points_partitioned_exactly_once(
        pts in arb_points(300),
        cap in 1usize..40,
        depth in 2usize..9,
    ) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: depth, leaf_capacity: cap });
        let mut owners = vec![0usize; pts.len()];
        for leaf in tree.leaves() {
            for &pi in &tree.node(leaf).points {
                owners[pi] += 1;
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1));
    }

    #[test]
    fn capacity_or_depth_bound_holds(
        pts in arb_points(300),
        cap in 1usize..30,
        depth in 2usize..8,
    ) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: depth, leaf_capacity: cap });
        prop_assert!(tree.height() <= depth);
        for leaf in tree.leaves() {
            let n = tree.node(leaf);
            prop_assert!(
                n.points.len() <= cap || n.depth + 1 == depth,
                "leaf at depth {} holds {} > cap {}", n.depth, n.points.len(), cap
            );
        }
    }

    #[test]
    fn leaf_areas_sum_to_region(pts in arb_points(200)) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: 7, leaf_capacity: 5 });
        let area: f64 = tree.leaves().iter().map(|&l| {
            let b = tree.node(l).bbox;
            b.lat_span() * b.lon_span()
        }).sum();
        prop_assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_for_is_total_and_consistent(
        pts in arb_points(150),
        query in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: 7, leaf_capacity: 5 });
        let q = GeoPoint::new(query.0, query.1);
        let leaf = tree.leaf_for(&q);
        prop_assert!(tree.node(leaf).is_leaf());
        prop_assert!(tree.node(leaf).bbox.contains_closed(&q));
    }

    #[test]
    fn minimal_subtree_is_superset_closed_under_parents(pts in arb_points(200)) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: 7, leaf_capacity: 5 });
        let leaves = tree.leaves();
        let chosen: Vec<_> = leaves.iter().step_by(3).copied().collect();
        let sub = tree.minimal_subtree(&chosen);
        for &id in &sub {
            if let Some(parent) = tree.node(id).parent {
                prop_assert!(sub.contains(&parent), "subtree not parent-closed");
            }
        }
        // Branch edges form a tree on the subset.
        let edges = tree.branch_edges_within(&sub);
        prop_assert_eq!(edges.len(), sub.len().saturating_sub(1));
    }

    #[test]
    fn range_query_matches_linear_scan(
        pts in arb_points(200),
        window in (0.0f64..0.8, 0.0f64..0.8, 0.05f64..0.4, 0.05f64..0.4),
    ) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: 7, leaf_capacity: 6 });
        let q = BBox::new(
            window.0,
            window.1,
            (window.0 + window.2).min(1.0),
            (window.1 + window.3).min(1.0),
        );
        let mut expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_closed(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(tree.range_query(&q, &pts), expected);
    }

    #[test]
    fn nearest_matches_linear_scan(
        pts in arb_points(150),
        query in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: 7, leaf_capacity: 5 });
        let q = GeoPoint::new(query.0, query.1);
        let (found, d) = tree.nearest(&q, &pts).expect("non-empty");
        let brute = pts
            .iter()
            .map(|p| q.equirectangular_km(p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() < 1e-9, "tree {d} vs brute {brute}");
        prop_assert!((q.equirectangular_km(&pts[found]) - brute).abs() < 1e-9);
    }

    #[test]
    fn quadtree_peak_occupancy_never_worse_than_matched_grid(
        cluster_n in 50usize..200,
        spread_n in 10usize..50,
    ) {
        // Clustered workload: quad-tree adapts granularity, fixed grid
        // cannot — this is the paper's challenge-2 claim quantified.
        let mut pts = Vec::new();
        for i in 0..cluster_n {
            let t = i as f64 / cluster_n as f64;
            pts.push(GeoPoint::new(0.1 + 0.05 * t, 0.1 + 0.05 * ((t * 7.0) % 1.0)));
        }
        for i in 0..spread_n {
            let t = i as f64 / spread_n as f64;
            pts.push(GeoPoint::new(t.min(0.999), ((t * 3.7) % 1.0).min(0.999)));
        }
        let bbox = BBox::new(0.0, 0.0, 1.0, 1.0);
        let tree = QuadTree::build(bbox, &pts, QuadTreeConfig { max_depth: 9, leaf_capacity: 10 });
        let grid = GridIndex::new(bbox, 4); // 16 cells ≈ coarse grid baseline
        let tree_max = tree.leaf_occupancy().into_iter().max().unwrap_or(0);
        let grid_max = grid.occupancy(&pts).into_iter().max().unwrap_or(0);
        prop_assert!(tree_max <= grid_max,
            "quad-tree peak {tree_max} worse than grid peak {grid_max}");
    }
}
