//! Axis-aligned geographic bounding boxes with quadrant subdivision.

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;

/// Quadrant labels, in the order the quad-tree stores children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quadrant {
    /// North-west (upper-left on a north-up map).
    Nw = 0,
    /// North-east.
    Ne = 1,
    /// South-west.
    Sw = 2,
    /// South-east.
    Se = 3,
}

/// Rectangle in (lat, lon) space.
///
/// Point-membership uses half-open semantics on the south/west edges so a
/// point on a shared boundary belongs to exactly one of two adjacent boxes;
/// the north/east *outer* edges of a root region are closed so that the
/// region as a whole covers its boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Southern edge (inclusive).
    pub min_lat: f64,
    /// Western edge (inclusive).
    pub min_lon: f64,
    /// Northern edge.
    pub max_lat: f64,
    /// Eastern edge.
    pub max_lon: f64,
}

impl BBox {
    /// Creates a box.
    ///
    /// # Panics
    /// Panics when the box is inverted or degenerate.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        assert!(
            min_lat < max_lat && min_lon < max_lon,
            "degenerate bbox [{min_lat}, {min_lon}, {max_lat}, {max_lon}]"
        );
        BBox {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// Smallest box covering all points.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn covering(points: &[GeoPoint]) -> Self {
        assert!(!points.is_empty(), "covering() of zero points");
        let mut min_lat = f64::INFINITY;
        let mut min_lon = f64::INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        for p in points {
            min_lat = min_lat.min(p.lat);
            min_lon = min_lon.min(p.lon);
            max_lat = max_lat.max(p.lat);
            max_lon = max_lon.max(p.lon);
        }
        // Pad degenerate extents so the box is always 2-dimensional.
        let pad = 1e-6;
        BBox::new(min_lat - pad, min_lon - pad, max_lat + pad, max_lon + pad)
    }

    /// Centre point.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: (self.min_lat + self.max_lat) / 2.0,
            lon: (self.min_lon + self.max_lon) / 2.0,
        }
    }

    /// Latitude extent in degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude extent in degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Approximate area in km² (equirectangular).
    pub fn area_km2(&self) -> f64 {
        let sw = GeoPoint::new(self.min_lat, self.min_lon);
        let se = GeoPoint::new(self.min_lat, self.max_lon);
        let nw = GeoPoint::new(self.max_lat, self.min_lon);
        sw.equirectangular_km(&se) * sw.equirectangular_km(&nw)
    }

    /// Half-open membership: south/west inclusive, north/east exclusive.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat < self.max_lat
            && p.lon >= self.min_lon
            && p.lon < self.max_lon
    }

    /// Closed membership, used at a root region's outer boundary.
    pub fn contains_closed(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Which quadrant the point falls into (points on the split lines go
    /// north/east, mirroring the half-open edge rule).
    pub fn quadrant_of(&self, p: &GeoPoint) -> Quadrant {
        let c = self.center();
        match (p.lat >= c.lat, p.lon >= c.lon) {
            (true, false) => Quadrant::Nw,
            (true, true) => Quadrant::Ne,
            (false, false) => Quadrant::Sw,
            (false, true) => Quadrant::Se,
        }
    }

    /// The sub-box of a quadrant.
    pub fn quadrant_bbox(&self, q: Quadrant) -> BBox {
        let c = self.center();
        match q {
            Quadrant::Nw => BBox::new(c.lat, self.min_lon, self.max_lat, c.lon),
            Quadrant::Ne => BBox::new(c.lat, c.lon, self.max_lat, self.max_lon),
            Quadrant::Sw => BBox::new(self.min_lat, self.min_lon, c.lat, c.lon),
            Quadrant::Se => BBox::new(self.min_lat, c.lon, c.lat, self.max_lon),
        }
    }

    /// True when the boxes share area or touch along an edge/corner.
    pub fn touches(&self, other: &BBox) -> bool {
        self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
            && self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
    }

    /// True when the interiors overlap (not merely touching edges).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lat < other.max_lat
            && other.min_lat < self.max_lat
            && self.min_lon < other.max_lon
            && other.min_lon < self.max_lon
    }

    /// Normalises a point into `[0, 1]²` within this box (used by the
    /// sinusoidal spatial encoder, paper Eq. 4 / Fig. 8).
    pub fn normalize(&self, p: &GeoPoint) -> (f64, f64) {
        (
            (p.lon - self.min_lon) / self.lon_span(),
            (p.lat - self.min_lat) / self.lat_span(),
        )
    }

    /// Clamps a point into the (closed) box.
    pub fn clamp(&self, p: &GeoPoint) -> GeoPoint {
        GeoPoint {
            lat: p.lat.clamp(self.min_lat, self.max_lat),
            lon: p.lon.clamp(self.min_lon, self.max_lon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BBox {
        BBox::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn quadrants_tile_the_box() {
        let b = unit();
        let quads = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se];
        let total: f64 = quads
            .iter()
            .map(|&q| {
                let s = b.quadrant_bbox(q);
                s.lat_span() * s.lon_span()
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_belongs_to_exactly_one_quadrant_box() {
        let b = unit();
        let samples = [
            GeoPoint::new(0.25, 0.25),
            GeoPoint::new(0.5, 0.5), // on both split lines
            GeoPoint::new(0.75, 0.25),
            GeoPoint::new(0.5, 0.1),
            GeoPoint::new(0.1, 0.5),
        ];
        for p in samples {
            let owning: Vec<Quadrant> = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se]
                .into_iter()
                .filter(|&q| b.quadrant_bbox(q).contains(&p))
                .collect();
            assert_eq!(owning.len(), 1, "point {p:?} in {owning:?}");
            assert_eq!(owning[0], b.quadrant_of(&p));
        }
    }

    #[test]
    fn covering_contains_all_inputs() {
        let pts = vec![
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(-1.0, 5.0),
            GeoPoint::new(0.5, -3.0),
        ];
        let b = BBox::covering(&pts);
        for p in &pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn covering_single_point_is_nondegenerate() {
        let b = BBox::covering(&[GeoPoint::new(10.0, 10.0)]);
        assert!(b.lat_span() > 0.0 && b.lon_span() > 0.0);
        assert!(b.contains(&GeoPoint::new(10.0, 10.0)));
    }

    #[test]
    fn touches_vs_intersects() {
        let a = unit();
        let edge_neighbor = BBox::new(0.0, 1.0, 1.0, 2.0); // shares the lon=1 edge
        assert!(a.touches(&edge_neighbor));
        assert!(!a.intersects(&edge_neighbor));
        let overlapping = BBox::new(0.5, 0.5, 1.5, 1.5);
        assert!(a.intersects(&overlapping));
        let distant = BBox::new(5.0, 5.0, 6.0, 6.0);
        assert!(!a.touches(&distant));
    }

    #[test]
    fn normalize_maps_corners() {
        let b = BBox::new(10.0, 20.0, 30.0, 40.0);
        let (x0, y0) = b.normalize(&GeoPoint::new(10.0, 20.0));
        let (x1, y1) = b.normalize(&GeoPoint::new(30.0, 40.0));
        assert!((x0, y0) == (0.0, 0.0));
        assert!((x1, y1) == (1.0, 1.0));
    }

    #[test]
    fn area_of_equatorial_degree_square() {
        // 1° × 1° at the equator ≈ 111.2 km × 111.2 km.
        let b = BBox::new(-0.5, -0.5, 0.5, 0.5);
        let a = b.area_km2();
        assert!((a - 111.2 * 111.2).abs() / a < 0.02, "area {a}");
    }

    #[test]
    #[should_panic(expected = "degenerate bbox")]
    fn rejects_inverted() {
        BBox::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn clamp_moves_outside_points_in() {
        let b = unit();
        let p = b.clamp(&GeoPoint::new(2.0, -1.0));
        assert_eq!((p.lat, p.lon), (1.0, 0.0));
    }
}
