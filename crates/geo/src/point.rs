//! Geographic points and distance computations.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 coordinate (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating coordinate ranges.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates — upstream data generation is
    /// expected to produce valid coordinates, so a violation is a bug.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance via the haversine formula, in kilometres.
    pub fn haversine_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Fast flat-earth approximation in kilometres, accurate for the
    /// city-scale distances this project works with.
    pub fn equirectangular_km(&self, other: &GeoPoint) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_KM * (dx * dx + dy * dy).sqrt()
    }

    /// Linear interpolation between two points (used by the trajectory
    /// simulator for intermediate stops).
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(40.7, -74.0);
        assert!(p.haversine_km(&p) < 1e-9);
    }

    #[test]
    fn known_distance_nyc_to_tokyo() {
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let tky = GeoPoint::new(35.6762, 139.6503);
        let d = nyc.haversine_km(&tky);
        // Real-world value ≈ 10,850 km.
        assert!((d - 10_850.0).abs() < 100.0, "distance {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = GeoPoint::new(40.70, -74.00);
        let b = GeoPoint::new(40.80, -73.90);
        let h = a.haversine_km(&b);
        let e = a.equirectangular_km(&b);
        assert!((h - e).abs() / h < 0.01, "haversine {h} vs equirect {e}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(35.0, 139.0);
        let b = GeoPoint::new(35.5, 139.5);
        assert!((a.haversine_km(&b) - b.haversine_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 5.0).abs() < 1e-12);
        assert!((mid.lon - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_bad_latitude() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn rejects_bad_longitude() {
        GeoPoint::new(0.0, 200.0);
    }
}
