//! The region quad-tree of Sec. II-A: recursive spatial subdivision until
//! every leaf tile holds at most `Ω` POIs or the depth cap `D` is reached.
//!
//! The tree is arena-allocated: nodes live in a `Vec` and reference each
//! other by [`NodeId`], which keeps traversal allocation-free and makes the
//! structure trivially serialisable.

use serde::{Deserialize, Serialize};

use crate::bbox::{BBox, Quadrant};
use crate::point::GeoPoint;

/// Index of a node in the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Tuning parameters: the paper's `D` (maximum tree height) and `Ω`
/// (maximum POIs per leaf tile).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuadTreeConfig {
    /// Maximum tree height `D`; the root is at depth 0.
    pub max_depth: usize,
    /// Leaf capacity `Ω`: a tile splits when it holds more than this many POIs.
    pub leaf_capacity: usize,
}

impl Default for QuadTreeConfig {
    fn default() -> Self {
        // The paper's most common setting: {D=8, Ω=100}.
        QuadTreeConfig {
            max_depth: 8,
            leaf_capacity: 100,
        }
    }
}

/// One tile node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuadNode {
    /// This node's arena id.
    pub id: NodeId,
    /// Spatial extent.
    pub bbox: BBox,
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// Parent tile (None for the root).
    pub parent: Option<NodeId>,
    /// Children in [NW, NE, SW, SE] order; None for leaves.
    pub children: Option<[NodeId; 4]>,
    /// Indices (into the build-time point slice) of POIs in this tile.
    /// Only leaves own points.
    pub points: Vec<usize>,
}

impl QuadNode {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// The region quad-tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuadTree {
    nodes: Vec<QuadNode>,
    config: QuadTreeConfig,
    bbox: BBox,
}

impl QuadTree {
    /// Builds the tree over `points`, splitting tiles holding more than
    /// `Ω` points until the depth cap.
    ///
    /// Points outside `bbox` are clamped in (matching how the data pipeline
    /// snaps stray check-ins to the study region).
    pub fn build(bbox: BBox, points: &[GeoPoint], config: QuadTreeConfig) -> Self {
        assert!(config.max_depth >= 1, "max_depth must be at least 1");
        assert!(
            config.leaf_capacity >= 1,
            "leaf_capacity must be at least 1"
        );
        let mut tree = QuadTree {
            nodes: vec![QuadNode {
                id: NodeId(0),
                bbox,
                depth: 0,
                parent: None,
                children: None,
                points: Vec::new(),
            }],
            config,
            bbox,
        };
        let clamped: Vec<GeoPoint> = points
            .iter()
            .map(|p| {
                // Keep strictly inside so half-open membership holds at the
                // north/east outer edge.
                let eps_lat = bbox.lat_span() * 1e-9;
                let eps_lon = bbox.lon_span() * 1e-9;
                let c = bbox.clamp(p);
                GeoPoint {
                    lat: c.lat.min(bbox.max_lat - eps_lat),
                    lon: c.lon.min(bbox.max_lon - eps_lon),
                }
            })
            .collect();
        tree.nodes[0].points = (0..clamped.len()).collect();
        tree.split_recursively(NodeId(0), &clamped);
        tree
    }

    /// Builds a *uniform* tree: every node splits down to exactly
    /// `depth` levels regardless of occupancy, yielding a fixed
    /// `2^(depth−1) × 2^(depth−1)` grid of leaves. This is the
    /// fixed-granularity partitioning of prior work that the paper's
    /// "Grid Replace Quad-tree" ablation swaps in (Table IV).
    pub fn build_uniform(bbox: BBox, points: &[GeoPoint], depth: usize) -> Self {
        assert!((1..=10).contains(&depth), "uniform depth out of range");
        let config = QuadTreeConfig {
            max_depth: depth,
            leaf_capacity: usize::MAX,
        };
        let mut tree = QuadTree {
            nodes: vec![QuadNode {
                id: NodeId(0),
                bbox,
                depth: 0,
                parent: None,
                children: None,
                points: Vec::new(),
            }],
            config,
            bbox,
        };
        tree.split_uniform(NodeId(0), depth);
        // Assign points to leaves.
        for (i, p) in points.iter().enumerate() {
            let leaf = tree.leaf_for(p);
            tree.nodes[leaf.0].points.push(i);
        }
        tree
    }

    fn split_uniform(&mut self, id: NodeId, depth: usize) {
        let node_depth = self.nodes[id.0].depth;
        if node_depth + 1 >= depth {
            return;
        }
        let parent_bbox = self.nodes[id.0].bbox;
        let quads = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se];
        let mut child_ids = [NodeId(0); 4];
        for (slot, &q) in quads.iter().enumerate() {
            let cid = NodeId(self.nodes.len());
            child_ids[slot] = cid;
            self.nodes.push(QuadNode {
                id: cid,
                bbox: parent_bbox.quadrant_bbox(q),
                depth: node_depth + 1,
                parent: Some(id),
                children: None,
                points: Vec::new(),
            });
        }
        self.nodes[id.0].children = Some(child_ids);
        for cid in child_ids {
            self.split_uniform(cid, depth);
        }
    }

    fn split_recursively(&mut self, id: NodeId, points: &[GeoPoint]) {
        let (depth, count) = {
            let n = &self.nodes[id.0];
            (n.depth, n.points.len())
        };
        if count <= self.config.leaf_capacity || depth + 1 >= self.config.max_depth {
            return;
        }
        // Create the four children.
        let parent_bbox = self.nodes[id.0].bbox;
        let quads = [Quadrant::Nw, Quadrant::Ne, Quadrant::Sw, Quadrant::Se];
        let mut child_ids = [NodeId(0); 4];
        for (slot, &q) in quads.iter().enumerate() {
            let cid = NodeId(self.nodes.len());
            child_ids[slot] = cid;
            self.nodes.push(QuadNode {
                id: cid,
                bbox: parent_bbox.quadrant_bbox(q),
                depth: depth + 1,
                parent: Some(id),
                children: None,
                points: Vec::new(),
            });
        }
        // Distribute the parent's points.
        let owned = std::mem::take(&mut self.nodes[id.0].points);
        for pi in owned {
            let q = parent_bbox.quadrant_of(&points[pi]) as usize;
            self.nodes[child_ids[q].0].points.push(pi);
        }
        self.nodes[id.0].children = Some(child_ids);
        for cid in child_ids {
            self.split_recursively(cid, points);
        }
    }

    /// The region covered by the tree.
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// Build parameters.
    pub fn config(&self) -> &QuadTreeConfig {
        &self.config
    }

    /// Total node count (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node accessor.
    ///
    /// # Panics
    /// Panics on an id from a different tree.
    pub fn node(&self, id: NodeId) -> &QuadNode {
        &self.nodes[id.0]
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Iterates over every node.
    pub fn iter(&self) -> impl Iterator<Item = &QuadNode> {
        self.nodes.iter()
    }

    /// Ids of all leaf tiles, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.id)
            .collect()
    }

    /// Maximum depth present in the tree.
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0) + 1
    }

    /// Descends from the root to the leaf tile containing `p`.
    ///
    /// Points outside the region are clamped onto it first, so every point
    /// maps to exactly one leaf.
    pub fn leaf_for(&self, p: &GeoPoint) -> NodeId {
        let eps_lat = self.bbox.lat_span() * 1e-9;
        let eps_lon = self.bbox.lon_span() * 1e-9;
        let c = self.bbox.clamp(p);
        let q = GeoPoint {
            lat: c.lat.min(self.bbox.max_lat - eps_lat),
            lon: c.lon.min(self.bbox.max_lon - eps_lon),
        };
        let mut cur = NodeId(0);
        loop {
            match self.nodes[cur.0].children {
                None => return cur,
                Some(children) => {
                    let quad = self.nodes[cur.0].bbox.quadrant_of(&q) as usize;
                    cur = children[quad];
                }
            }
        }
    }

    /// Path of node ids from the root down to `id` (inclusive).
    pub fn path_to_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur.0].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// The minimal sub-tree covering the given leaves (paper Sec. II-B
    /// step 1): the union of root-to-leaf paths, returned as a sorted,
    /// deduplicated id list. Internal nodes appear so `branch` edges can be
    /// reconstructed, and no smaller subtree covers the same leaves.
    pub fn minimal_subtree(&self, leaf_ids: &[NodeId]) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = leaf_ids
            .iter()
            .flat_map(|&l| self.path_to_root(l))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// All (parent, child) pairs within a node subset — the `branch` edges
    /// of the QR-P graph.
    pub fn branch_edges_within(&self, subset: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        // Sorted-slice membership rather than a HashSet: the output order
        // (driven by `subset` order) was already deterministic, but an
        // ordered structure keeps this QR-P construction step immune to
        // someone later iterating the membership set directly.
        let mut set: Vec<NodeId> = subset.to_vec();
        set.sort_unstable();
        let mut edges = Vec::new();
        for &id in subset {
            if let Some(parent) = self.nodes[id.0].parent {
                if set.binary_search(&parent).is_ok() {
                    edges.push((parent, id));
                }
            }
        }
        edges
    }

    /// Histogram of leaf POI counts — used to demonstrate the uniform
    /// dispersion property the paper argues for (Sec. II-A discussion).
    pub fn leaf_occupancy(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.points.len())
            .collect()
    }

    /// Range query: indices of all points (from the build-time slice)
    /// whose location lies inside `query`, found by pruning subtrees whose
    /// bounding boxes miss the query rectangle.
    ///
    /// `points` must be the same slice the tree was built from.
    pub fn range_query(&self, query: &BBox, points: &[GeoPoint]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![NodeId(0)];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id.0];
            if !node.bbox.touches(query) {
                continue;
            }
            match node.children {
                Some(children) => stack.extend(children),
                None => {
                    for &pi in &node.points {
                        if query.contains_closed(&points[pi]) {
                            out.push(pi);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Nearest point to `query` by best-first search with bounding-box
    /// distance pruning. Returns `(point_index, distance_km)`; `None` on
    /// an empty tree.
    ///
    /// `points` must be the same slice the tree was built from.
    pub fn nearest(&self, query: &GeoPoint, points: &[GeoPoint]) -> Option<(usize, f64)> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        /// Min-distance from a point to a bbox, km (0 when inside).
        fn bbox_distance_km(b: &BBox, p: &GeoPoint) -> f64 {
            let clamped = b.clamp(p);
            p.equirectangular_km(&clamped)
        }

        #[derive(PartialEq)]
        struct Entry(f64, NodeId);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
            }
        }

        let mut best: Option<(usize, f64)> = None;
        let mut heap = BinaryHeap::new();
        heap.push(Entry(
            bbox_distance_km(&self.nodes[0].bbox, query),
            NodeId(0),
        ));
        while let Some(Entry(lower_bound, id)) = heap.pop() {
            if let Some((_, d)) = best {
                if lower_bound >= d {
                    break; // no remaining subtree can improve
                }
            }
            let node = &self.nodes[id.0];
            match node.children {
                Some(children) => {
                    for c in children {
                        heap.push(Entry(bbox_distance_km(&self.nodes[c.0].bbox, query), c));
                    }
                }
                None => {
                    for &pi in &node.points {
                        let d = query.equirectangular_km(&points[pi]);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((pi, d));
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn region() -> BBox {
        BBox::new(0.0, 0.0, 1.0, 1.0)
    }

    fn random_points(n: usize, seed: u64) -> Vec<GeoPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| GeoPoint::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn single_node_when_under_capacity() {
        let pts = random_points(5, 1);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 8,
                leaf_capacity: 10,
            },
        );
        assert_eq!(t.num_nodes(), 1);
        assert!(t.node(t.root()).is_leaf());
        assert_eq!(t.node(t.root()).points.len(), 5);
    }

    #[test]
    fn splits_when_over_capacity() {
        let pts = random_points(100, 2);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 8,
                leaf_capacity: 10,
            },
        );
        assert!(t.num_nodes() > 1);
        for leaf in t.leaves() {
            let n = t.node(leaf);
            assert!(
                n.points.len() <= 10 || n.depth + 1 == 8,
                "leaf over capacity below the depth cap"
            );
        }
    }

    #[test]
    fn every_point_lands_in_exactly_one_leaf() {
        let pts = random_points(500, 3);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 7,
                leaf_capacity: 8,
            },
        );
        let mut seen = vec![0usize; pts.len()];
        for leaf in t.leaves() {
            for &pi in &t.node(leaf).points {
                seen[pi] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "point ownership not a partition"
        );
    }

    #[test]
    fn leaf_for_agrees_with_ownership() {
        let pts = random_points(200, 4);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 6,
                leaf_capacity: 5,
            },
        );
        for (i, p) in pts.iter().enumerate() {
            let leaf = t.leaf_for(p);
            assert!(
                t.node(leaf).points.contains(&i),
                "leaf_for disagreed with build ownership for point {i}"
            );
        }
    }

    #[test]
    fn depth_cap_is_respected() {
        // All points identical → would split forever without the cap.
        let pts = vec![GeoPoint::new(0.5, 0.5); 50];
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 4,
                leaf_capacity: 1,
            },
        );
        assert!(t.height() <= 4);
    }

    #[test]
    fn leaves_tile_the_region() {
        let pts = random_points(300, 5);
        let t = QuadTree::build(region(), &pts, QuadTreeConfig::default());
        let total_area: f64 = t
            .leaves()
            .iter()
            .map(|&l| {
                let b = t.node(l).bbox;
                b.lat_span() * b.lon_span()
            })
            .sum();
        assert!(
            (total_area - 1.0).abs() < 1e-9,
            "leaf areas sum to {total_area}"
        );
    }

    #[test]
    fn path_to_root_starts_at_root() {
        let pts = random_points(200, 6);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 6,
                leaf_capacity: 5,
            },
        );
        let leaf = *t.leaves().last().expect("has leaves");
        let path = t.path_to_root(leaf);
        assert_eq!(path[0], t.root());
        assert_eq!(*path.last().expect("non-empty"), leaf);
        for w in path.windows(2) {
            assert_eq!(t.node(w[1]).parent, Some(w[0]));
        }
    }

    #[test]
    fn minimal_subtree_covers_and_is_minimal() {
        let pts = random_points(400, 7);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 6,
                leaf_capacity: 10,
            },
        );
        let leaves = t.leaves();
        let chosen = [
            leaves[0],
            leaves[leaves.len() / 2],
            leaves[leaves.len() - 1],
        ];
        let sub = t.minimal_subtree(&chosen);
        // Every chosen leaf present with its full ancestry.
        for &l in &chosen {
            for anc in t.path_to_root(l) {
                assert!(sub.contains(&anc));
            }
        }
        // Minimality: every node in the subtree lies on a path to a chosen leaf.
        for &id in &sub {
            let on_path = chosen.iter().any(|&l| t.path_to_root(l).contains(&id));
            assert!(on_path, "node {id:?} is not on any chosen path");
        }
    }

    #[test]
    fn branch_edges_connect_subtree() {
        let pts = random_points(400, 8);
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 6,
                leaf_capacity: 10,
            },
        );
        let leaves = t.leaves();
        let sub = t.minimal_subtree(&leaves[..3.min(leaves.len())]);
        let edges = t.branch_edges_within(&sub);
        // A tree on n nodes has n − 1 edges.
        assert_eq!(edges.len(), sub.len() - 1);
    }

    #[test]
    fn uniform_tree_is_a_grid() {
        let pts = random_points(50, 10);
        let t = QuadTree::build_uniform(region(), &pts, 3);
        // Depth 3 → 4×4 = 16 leaves, 1 + 4 + 16 = 21 nodes.
        assert_eq!(t.leaves().len(), 16);
        assert_eq!(t.num_nodes(), 21);
        assert_eq!(t.height(), 3);
        // All leaves the same size.
        let areas: Vec<f64> = t
            .leaves()
            .iter()
            .map(|&l| {
                let b = t.node(l).bbox;
                b.lat_span() * b.lon_span()
            })
            .collect();
        for a in &areas {
            assert!((a - areas[0]).abs() < 1e-12);
        }
        // Points all assigned.
        let total: usize = t.leaves().iter().map(|&l| t.node(l).points.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn occupancy_more_uniform_than_grid() {
        // Clustered points: quad-tree leaf occupancy variance should be far
        // below a coarse fixed grid's — this is the paper's motivation for
        // the quad-tree (challenge 2).
        let mut rng = StdRng::seed_from_u64(9);
        let mut pts = Vec::new();
        for _ in 0..900 {
            // Dense cluster near (0.2, 0.2).
            pts.push(GeoPoint::new(
                (0.2 + rng.gen_range(-0.05..0.05f64)).clamp(0.0, 0.999),
                (0.2 + rng.gen_range(-0.05..0.05f64)).clamp(0.0, 0.999),
            ));
        }
        for _ in 0..100 {
            pts.push(GeoPoint::new(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ));
        }
        let t = QuadTree::build(
            region(),
            &pts,
            QuadTreeConfig {
                max_depth: 9,
                leaf_capacity: 50,
            },
        );
        let occ = t.leaf_occupancy();
        let max = *occ.iter().max().expect("leaves");
        assert!(
            max <= 50,
            "quad-tree failed to keep tiles under capacity: {max}"
        );
    }
}
