//! # tspn-geo
//!
//! Geospatial primitives for the TSPN-RA reproduction:
//!
//! * [`GeoPoint`] / [`BBox`] — WGS-84 coordinates, distances, quadrant
//!   subdivision and unit-square normalisation,
//! * [`QuadTree`] — the paper's region quad-tree (Sec. II-A): recursive
//!   splitting until leaf tiles hold ≤ `Ω` POIs or the height cap `D`,
//!   plus minimal-subtree extraction for QR-P graph construction,
//! * [`GridIndex`] — the fixed-granularity alternative used by the
//!   "Grid Replace Quad-tree" ablation.
//!
//! ## Example
//!
//! ```
//! use tspn_geo::{BBox, GeoPoint, QuadTree, QuadTreeConfig};
//!
//! let region = BBox::new(40.55, -74.1, 40.95, -73.65); // ~NYC
//! let pois: Vec<GeoPoint> = (0..1000)
//!     .map(|i| GeoPoint::new(40.55 + 0.4 * ((i * 37 % 100) as f64) / 100.0,
//!                            -74.1 + 0.45 * ((i * 61 % 100) as f64) / 100.0))
//!     .collect();
//! let tree = QuadTree::build(region, &pois, QuadTreeConfig { max_depth: 8, leaf_capacity: 50 });
//! let leaf = tree.leaf_for(&pois[0]);
//! assert!(tree.node(leaf).is_leaf());
//! ```

#![warn(missing_docs)]

mod bbox;
mod grid;
mod point;
mod quadtree;

pub use bbox::{BBox, Quadrant};
pub use grid::{CellId, GridIndex};
pub use point::{GeoPoint, EARTH_RADIUS_KM};
pub use quadtree::{NodeId, QuadNode, QuadTree, QuadTreeConfig};
