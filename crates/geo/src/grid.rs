//! Fixed-granularity grid index — the partitioning scheme the paper's
//! "Grid Replace Quad-tree" ablation swaps in (Table IV row 1), and the
//! strategy used by prior work such as HMT-GRN.

use serde::{Deserialize, Serialize};

use crate::bbox::BBox;
use crate::point::GeoPoint;

/// A `g × g` uniform grid over a region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex {
    bbox: BBox,
    granularity: usize,
}

/// A grid cell handle: `(row, col)` flattened to `row * g + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub usize);

impl GridIndex {
    /// Creates a grid with `granularity × granularity` cells.
    ///
    /// # Panics
    /// Panics when granularity is zero.
    pub fn new(bbox: BBox, granularity: usize) -> Self {
        assert!(granularity > 0, "grid granularity must be positive");
        GridIndex { bbox, granularity }
    }

    /// Cells per side.
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.granularity * self.granularity
    }

    /// The region covered.
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// Maps a point to its cell (points outside are clamped in).
    pub fn cell_for(&self, p: &GeoPoint) -> CellId {
        let (x, y) = self.bbox.normalize(&self.bbox.clamp(p));
        let g = self.granularity;
        let col = ((x * g as f64) as usize).min(g - 1);
        let row = ((y * g as f64) as usize).min(g - 1);
        CellId(row * g + col)
    }

    /// Bounding box of a cell.
    pub fn cell_bbox(&self, cell: CellId) -> BBox {
        let g = self.granularity;
        assert!(cell.0 < g * g, "cell {cell:?} out of range");
        let row = cell.0 / g;
        let col = cell.0 % g;
        let lat0 = self.bbox.min_lat + self.bbox.lat_span() * row as f64 / g as f64;
        let lat1 = self.bbox.min_lat + self.bbox.lat_span() * (row + 1) as f64 / g as f64;
        let lon0 = self.bbox.min_lon + self.bbox.lon_span() * col as f64 / g as f64;
        let lon1 = self.bbox.min_lon + self.bbox.lon_span() * (col + 1) as f64 / g as f64;
        BBox::new(lat0, lon0, lat1, lon1)
    }

    /// 4-neighbourhood of a cell (N/S/E/W, clipped at borders).
    pub fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let g = self.granularity;
        let row = cell.0 / g;
        let col = cell.0 % g;
        let mut out = Vec::with_capacity(4);
        if row > 0 {
            out.push(CellId((row - 1) * g + col));
        }
        if row + 1 < g {
            out.push(CellId((row + 1) * g + col));
        }
        if col > 0 {
            out.push(CellId(row * g + col - 1));
        }
        if col + 1 < g {
            out.push(CellId(row * g + col + 1));
        }
        out
    }

    /// Occupancy histogram for a point set — contrasted with
    /// [`crate::QuadTree::leaf_occupancy`] in the partitioning benchmarks.
    pub fn occupancy(&self, points: &[GeoPoint]) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_cells()];
        for p in points {
            counts[self.cell_for(p).0] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridIndex {
        GridIndex::new(BBox::new(0.0, 0.0, 1.0, 1.0), 4)
    }

    #[test]
    fn cell_count() {
        assert_eq!(grid().num_cells(), 16);
    }

    #[test]
    fn corners_map_to_corner_cells() {
        let g = grid();
        assert_eq!(g.cell_for(&GeoPoint::new(0.0, 0.0)).0, 0);
        assert_eq!(g.cell_for(&GeoPoint::new(0.99, 0.99)).0, 15);
    }

    #[test]
    fn boundary_point_clamps_to_last_cell() {
        let g = grid();
        assert_eq!(g.cell_for(&GeoPoint::new(1.0, 1.0)).0, 15);
    }

    #[test]
    fn cell_bbox_contains_cell_points() {
        let g = grid();
        let p = GeoPoint::new(0.3, 0.6);
        let cell = g.cell_for(&p);
        assert!(g.cell_bbox(cell).contains(&p));
    }

    #[test]
    fn cells_tile_region() {
        let g = grid();
        let total: f64 = (0..16)
            .map(|i| {
                let b = g.cell_bbox(CellId(i));
                b.lat_span() * b.lon_span()
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interior_cell_has_four_neighbors() {
        let g = grid();
        assert_eq!(g.neighbors(CellId(5)).len(), 4);
    }

    #[test]
    fn corner_cell_has_two_neighbors() {
        let g = grid();
        assert_eq!(g.neighbors(CellId(0)).len(), 2);
        assert_eq!(g.neighbors(CellId(15)).len(), 2);
    }

    #[test]
    fn occupancy_counts_all_points() {
        let g = grid();
        let pts = vec![
            GeoPoint::new(0.1, 0.1),
            GeoPoint::new(0.1, 0.15),
            GeoPoint::new(0.9, 0.9),
        ];
        let occ = g.occupancy(&pts);
        assert_eq!(occ.iter().sum::<usize>(), 3);
        assert_eq!(occ[0], 2);
        assert_eq!(occ[15], 1);
    }
}
