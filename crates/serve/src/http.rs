//! Minimal HTTP/1.1 framing: enough of the protocol for the serving loop
//! (request line, `Content-Length` bodies, keep-alive) and nothing more.
//! The offline build has no tokio/hyper.
//!
//! The core is a **pure incremental parser**: [`try_parse_request`] takes
//! whatever bytes have arrived so far and either produces a complete
//! [`Request`] (consuming exactly its bytes, preserving pipelined
//! read-ahead), asks for more data, or reports a protocol violation with
//! the status to reject with (`400`/`413`/`431`). Two I/O drivers share
//! it: the blocking [`HttpConn`] (the client side of tests and the bench
//! driver's stub loops) and the non-blocking state machine in
//! [`crate::mux`], which multiplexes thousands of keep-alive connections
//! over one `poll(2)` event loop. [`render_response`] is the matching
//! serialiser, so both drivers emit byte-identical responses.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (query strings are not split off; the protocol does
    /// not use them).
    pub path: String,
    /// Raw request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Client-declared deadline budget (`x-tspn-deadline-ms` header);
    /// `None` means "use the server's default request timeout".
    pub deadline_ms: Option<u64>,
}

/// Outcome of waiting for the next request on a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed the connection between requests.
    Closed,
    /// The read timeout elapsed with no bytes pending — the caller should
    /// check its shutdown flag and wait again.
    Idle,
}

/// Why reading the next request failed.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure (peer vanished, stalled transfer): nothing can
    /// usefully be written back; just close.
    Io(std::io::Error),
    /// Protocol violation with a status worth telling the client about
    /// (`400` malformed, `413` body too large, `431` headers too large).
    /// The caller should [`HttpConn::reject`] with these and close —
    /// request framing can no longer be trusted, so keep-alive is over.
    Bad {
        /// Response status to write.
        status: u16,
        /// Human-readable detail for the typed error body.
        message: String,
    },
}

impl ReadError {
    fn bad(status: u16, message: impl Into<String>) -> Self {
        ReadError::Bad {
            status,
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// How long a *partially received* request may dribble in before the
/// connection is dropped as dead.
pub(crate) const PARTIAL_DEADLINE: Duration = Duration::from_secs(5);

/// Hard cap on the request-line + headers block. Nothing in the protocol
/// needs long headers; a peer that exceeds this gets `431` and the
/// connection closed instead of growing the buffer without bound.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A persistent connection with its read-ahead buffer (pipelined bytes
/// beyond the current request survive into the next call).
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConn {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        HttpConn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads the next request, honouring the stream's read timeout for
    /// idle detection (see [`ReadOutcome::Idle`]).
    ///
    /// # Errors
    /// [`ReadError::Io`] for transport failures (close silently);
    /// [`ReadError::Bad`] for protocol violations — `400` malformed,
    /// `413` body above `max_body`, `431` headers above
    /// [`MAX_HEADER_BYTES`] — which the caller should write with
    /// [`HttpConn::reject`] before closing.
    pub fn read_request(&mut self, max_body: usize) -> Result<ReadOutcome, ReadError> {
        let mut chunk = [0u8; 4096];
        let mut partial_since: Option<Instant> = None;
        loop {
            if let Some(req) = try_parse_request(&mut self.buf, max_body)? {
                return Ok(ReadOutcome::Request(req));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Closed)
                    } else {
                        Err(ReadError::Io(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "connection closed mid-request",
                        )))
                    };
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    partial_since.get_or_insert_with(Instant::now);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.buf.is_empty() {
                        return Ok(ReadOutcome::Idle);
                    }
                    // A half-received request (headers or body) may only
                    // dribble in a bounded while: a stalled transfer must
                    // not pin this handler (and clean shutdown) forever.
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > PARTIAL_DEADLINE {
                        return Err(ReadError::Io(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "request stalled mid-transfer",
                        )));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }

    /// Writes a JSON response.
    ///
    /// # Errors
    /// Propagates stream write failures.
    pub fn respond(&mut self, status: u16, body: &str, keep_alive: bool) -> std::io::Result<()> {
        self.respond_ex(status, body, keep_alive, None)
    }

    /// Writes a JSON response with an optional `Retry-After` hint
    /// (seconds) — attached to shed responses (429/503) so well-behaved
    /// clients back off instead of hammering an overloaded server.
    ///
    /// # Errors
    /// Propagates stream write failures.
    pub fn respond_ex(
        &mut self,
        status: u16,
        body: &str,
        keep_alive: bool,
        retry_after: Option<u64>,
    ) -> std::io::Result<()> {
        self.stream
            .write_all(&render_response(status, body, keep_alive, retry_after))?;
        self.stream.flush()
    }

    /// Best-effort typed-error response before closing a broken
    /// connection (the error code follows from the status).
    pub fn reject(&mut self, status: u16, message: &str) {
        let body = crate::protocol::error_response(error_code(status), message);
        let _ = self.respond(status, &body, false);
    }
}

/// Tries to parse one complete request from the front of `buf`.
///
/// * `Ok(Some(req))` — a full request was buffered; exactly its bytes are
///   drained from `buf`, so pipelined read-ahead survives for the next
///   call.
/// * `Ok(None)` — the bytes so far are a valid prefix; read more and call
///   again. (The parser is stateless between calls: re-parsing the small
///   header block on each arrival is far cheaper than a read syscall.)
/// * `Err` — protocol violation; the framing can no longer be trusted, so
///   the caller must reject-and-close. `431` once a terminator-free
///   header block exceeds [`MAX_HEADER_BYTES`], `400` for a malformed
///   request line / `Content-Length` / unsupported `Transfer-Encoding`,
///   `413` the moment the headers *declare* a body above `max_body`
///   (never buffering it).
///
/// # Errors
/// [`ReadError::Bad`] as described above; never [`ReadError::Io`].
pub fn try_parse_request(buf: &mut Vec<u8>, max_body: usize) -> Result<Option<Request>, ReadError> {
    let Some(end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::bad(
                431,
                format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
            ));
        }
        return Ok(None);
    };
    let head = String::from_utf8_lossy(&buf[..end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = (
        parts.next().unwrap_or("").to_ascii_uppercase(),
        parts.next().unwrap_or("").to_string(),
        parts.next().unwrap_or(""),
    );
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::bad(
            400,
            format!("malformed request line {request_line:?}"),
        ));
    }
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut deadline_ms = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::bad(400, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-tspn-deadline-ms") {
            // An unparseable deadline falls back to the server default
            // rather than failing the request.
            deadline_ms = value.parse::<u64>().ok().filter(|&ms| ms >= 1);
        } else if name.eq_ignore_ascii_case("transfer-encoding")
            && !value.eq_ignore_ascii_case("identity")
        {
            // Only Content-Length framing is implemented; silently
            // treating a chunked body as empty would leave its
            // framing bytes to desync the keep-alive stream.
            return Err(ReadError::bad(
                400,
                format!("unsupported Transfer-Encoding {value:?}"),
            ));
        }
    }
    if content_length > max_body {
        return Err(ReadError::bad(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let body_start = end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    // Keep any pipelined bytes for the next request.
    buf.drain(..body_start + content_length);
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
        deadline_ms,
    }))
}

/// Serialises one JSON response to wire bytes: status line,
/// `Content-Type`/`Content-Length`, an optional `Retry-After` hint
/// (seconds, attached to 429/503 sheds so well-behaved clients back off),
/// and the `Connection` disposition. Shared by the blocking writer and
/// the mux's buffered writer so both emit byte-identical responses.
pub fn render_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
) -> Vec<u8> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry = retry_after
        .map(|secs| format!("Retry-After: {secs}\r\n"))
        .unwrap_or_default();
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Index of the `\r\n\r\n` header terminator, if buffered.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The typed-error `code` implied by a status (for connection-level
/// rejections that never reach a route handler).
pub(crate) fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        410 => "gone",
        413 => "payload_too_large",
        422 => "unprocessable",
        429 => "overloaded",
        431 => "headers_too_large",
        503 => "unavailable",
        _ => "internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_header_end(b""), None);
    }

    #[test]
    fn reason_phrases_cover_protocol_statuses() {
        for s in [200, 400, 404, 405, 410, 413, 422, 429, 431, 500, 503] {
            assert_ne!(reason_phrase(s), "Unknown");
        }
        assert_eq!(reason_phrase(299), "Unknown");
    }

    #[test]
    fn error_codes_follow_statuses() {
        assert_eq!(error_code(400), "bad_request");
        assert_eq!(error_code(405), "method_not_allowed");
        assert_eq!(error_code(410), "gone");
        assert_eq!(error_code(422), "unprocessable");
        assert_eq!(error_code(429), "overloaded");
        assert_eq!(error_code(431), "headers_too_large");
        assert_eq!(error_code(500), "internal");
    }

    #[test]
    fn incremental_parser_accepts_byte_at_a_time_arrival() {
        let wire = b"POST /v1/predict HTTP/1.1\r\nx-tspn-deadline-ms: 40\r\n\
                     Content-Length: 4\r\n\r\nbody";
        let mut buf = Vec::new();
        for (i, &b) in wire.iter().enumerate() {
            buf.push(b);
            let parsed = try_parse_request(&mut buf, 4096).expect("valid prefix");
            if i + 1 < wire.len() {
                assert!(parsed.is_none(), "incomplete at byte {i}");
            } else {
                let req = parsed.expect("complete at the last byte");
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/predict");
                assert_eq!(req.body, b"body");
                assert_eq!(req.deadline_ms, Some(40));
                assert!(req.keep_alive);
                assert!(buf.is_empty(), "exactly the request consumed");
            }
        }
    }

    #[test]
    fn incremental_parser_preserves_pipelined_requests() {
        let mut buf = b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n".to_vec();
        let first = try_parse_request(&mut buf, 4096)
            .expect("parses")
            .expect("complete");
        assert_eq!(first.path, "/healthz");
        let second = try_parse_request(&mut buf, 4096)
            .expect("parses")
            .expect("read-ahead survived");
        assert_eq!(second.path, "/v1/stats");
        assert!(buf.is_empty());
        assert!(try_parse_request(&mut buf, 4096)
            .expect("empty ok")
            .is_none());
    }

    #[test]
    fn incremental_parser_rejects_oversized_declarations_without_the_body() {
        // 413 fires the moment the headers complete, body unseen.
        let mut buf = b"POST /predict HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec();
        let err = try_parse_request(&mut buf, 4096).expect_err("must refuse");
        let ReadError::Bad { status, .. } = err else {
            panic!("expected Bad");
        };
        assert_eq!(status, 413);

        // 431 fires as soon as a terminator-free header block exceeds the
        // cap — no request line needed.
        let mut buf = vec![b'a'; MAX_HEADER_BYTES + 1];
        let err = try_parse_request(&mut buf, 4096).expect_err("must refuse");
        let ReadError::Bad { status, .. } = err else {
            panic!("expected Bad");
        };
        assert_eq!(status, 431);
    }

    #[test]
    fn rendered_responses_carry_framing_and_retry_hints() {
        let bytes = render_response(429, "{}", true, Some(1));
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        let bytes = render_response(200, "{\"ok\":true}", false, None);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(!text.contains("Retry-After"), "{text}");
    }

    // ----- socket-level behaviour -------------------------------------
    //
    // Each test stands up a real loopback pair: the "server" side wraps
    // the accepted stream in HttpConn (exactly as handle_connection
    // does), the "client" side writes raw bytes.

    use std::net::{TcpListener, TcpStream};

    fn pair() -> (HttpConn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        (HttpConn::new(server), client)
    }

    fn drive(conn: &mut HttpConn, max_body: usize) -> Result<ReadOutcome, ReadError> {
        // Skip Idle ticks so tests only see terminal outcomes.
        loop {
            match conn.read_request(max_body) {
                Ok(ReadOutcome::Idle) => continue,
                other => return other,
            }
        }
    }

    fn read_all(mut stream: &TcpStream) -> String {
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn oversized_header_block_yields_431_and_a_closed_connection() {
        let (mut conn, mut client) = pair();
        // A header line that never ends: the buffer must not grow past
        // MAX_HEADER_BYTES before the connection is refused.
        client
            .write_all(b"GET / HTTP/1.1\r\nx-filler: ")
            .expect("w");
        client
            .write_all(&vec![b'a'; MAX_HEADER_BYTES + 64])
            .expect("w");
        let err = drive(&mut conn, 1 << 20).expect_err("must refuse");
        let ReadError::Bad { status, .. } = err else {
            panic!("expected Bad, got {err:?}");
        };
        assert_eq!(status, 431);
        conn.reject(status, "too big");
        drop(conn);
        let answer = read_all(&client);
        assert!(answer.starts_with("HTTP/1.1 431 "), "{answer}");
        assert!(answer.contains("headers_too_large"), "{answer}");
        assert!(answer.contains("Connection: close"), "{answer}");
    }

    #[test]
    fn oversized_body_yields_413_without_buffering_it() {
        let (mut conn, mut client) = pair();
        client
            .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
            .expect("w");
        let err = drive(&mut conn, 4096).expect_err("must refuse");
        let ReadError::Bad { status, .. } = err else {
            panic!("expected Bad, got {err:?}");
        };
        assert_eq!(status, 413);
        conn.reject(status, "body too large");
        drop(conn);
        let answer = read_all(&client);
        assert!(answer.starts_with("HTTP/1.1 413 "), "{answer}");
        assert!(answer.contains("payload_too_large"), "{answer}");
    }

    #[test]
    fn connection_close_is_honoured_after_the_response() {
        let (mut conn, mut client) = pair();
        client
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("w");
        let outcome = drive(&mut conn, 4096).expect("request parses");
        let ReadOutcome::Request(req) = outcome else {
            panic!("expected a request");
        };
        assert!(!req.keep_alive, "Connection: close noted");
        conn.respond(200, "{}", req.keep_alive).expect("respond");
        drop(conn);
        let answer = read_all(&client);
        assert!(answer.contains("Connection: close"), "{answer}");
        assert!(
            answer.ends_with("{}"),
            "clean close after the body: {answer}"
        );
    }

    #[test]
    fn parse_error_yields_400_then_close() {
        let (mut conn, mut client) = pair();
        client.write_all(b"NOT-HTTP\r\n\r\n").expect("w");
        let err = drive(&mut conn, 4096).expect_err("must refuse");
        let ReadError::Bad { status, .. } = err else {
            panic!("expected Bad, got {err:?}");
        };
        assert_eq!(status, 400);
        conn.reject(status, "malformed");
        drop(conn);
        let answer = read_all(&client);
        assert!(answer.starts_with("HTTP/1.1 400 "), "{answer}");
        assert!(answer.contains("Connection: close"), "{answer}");
    }

    #[test]
    fn deadline_header_is_parsed_and_garbage_ignored() {
        let (mut conn, mut client) = pair();
        client
            .write_all(
                b"POST /v1/predict HTTP/1.1\r\nx-tspn-deadline-ms: 250\r\n\
                  Content-Length: 2\r\n\r\n{}",
            )
            .expect("w");
        let ReadOutcome::Request(req) = drive(&mut conn, 4096).expect("parses") else {
            panic!("expected a request");
        };
        assert_eq!(req.deadline_ms, Some(250));

        client
            .write_all(
                b"POST /v1/predict HTTP/1.1\r\nX-TSPN-Deadline-Ms: never\r\n\
                  Content-Length: 2\r\n\r\n{}",
            )
            .expect("w");
        let ReadOutcome::Request(req) = drive(&mut conn, 4096).expect("parses") else {
            panic!("expected a request");
        };
        assert_eq!(req.deadline_ms, None, "garbage deadline → server default");
    }

    #[test]
    fn retry_after_header_is_emitted_on_shed_responses() {
        let (mut conn, client) = pair();
        conn.respond_ex(429, "{\"error\":{}}", false, Some(2))
            .expect("respond");
        drop(conn);
        let answer = read_all(&client);
        assert!(
            answer.starts_with("HTTP/1.1 429 Too Many Requests"),
            "{answer}"
        );
        assert!(answer.contains("Retry-After: 2\r\n"), "{answer}");
    }
}
