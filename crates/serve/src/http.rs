//! A minimal blocking HTTP/1.1 connection: enough of the protocol for the
//! serving loop (request line, `Content-Length` bodies, keep-alive) and
//! nothing more. The offline build has no tokio/hyper; a thread per
//! connection over `std::net` is plenty for the loopback serving and
//! load-generation this repository does.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (query strings are not split off; the protocol does
    /// not use them).
    pub path: String,
    /// Raw request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Outcome of waiting for the next request on a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed the connection between requests.
    Closed,
    /// The read timeout elapsed with no bytes pending — the caller should
    /// check its shutdown flag and wait again.
    Idle,
}

/// How long a *partially received* request may dribble in before the
/// connection is dropped as dead.
const PARTIAL_DEADLINE: Duration = Duration::from_secs(5);

/// A persistent connection with its read-ahead buffer (pipelined bytes
/// beyond the current request survive into the next call).
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConn {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        HttpConn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads the next request, honouring the stream's read timeout for
    /// idle detection (see [`ReadOutcome::Idle`]).
    ///
    /// # Errors
    /// I/O failures, malformed requests, and bodies above `max_body` are
    /// all errors; the caller should close the connection (a 400/413 is
    /// written first when possible by [`HttpConn::reject`]).
    pub fn read_request(&mut self, max_body: usize) -> std::io::Result<ReadOutcome> {
        let mut chunk = [0u8; 4096];
        let mut partial_since: Option<Instant> = None;
        loop {
            if let Some(end) = find_header_end(&self.buf) {
                return self.finish_request(end, max_body).map(ReadOutcome::Request);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Closed)
                    } else {
                        Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "connection closed mid-request",
                        ))
                    };
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if self.buf.len() > max_body + 16 * 1024 {
                        return Err(std::io::Error::new(
                            ErrorKind::InvalidData,
                            "request headers/body too large",
                        ));
                    }
                    partial_since.get_or_insert_with(Instant::now);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.buf.is_empty() {
                        return Ok(ReadOutcome::Idle);
                    }
                    // A half-received request: keep waiting a bounded while.
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > PARTIAL_DEADLINE {
                        return Err(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "request stalled mid-transfer",
                        ));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Parses the buffered header block ending at `end` (exclusive of the
    /// blank line) and reads the body to completion.
    fn finish_request(&mut self, end: usize, max_body: usize) -> std::io::Result<Request> {
        let head = String::from_utf8_lossy(&self.buf[..end]).into_owned();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (method, path, version) = (
            parts.next().unwrap_or("").to_ascii_uppercase(),
            parts.next().unwrap_or("").to_string(),
            parts.next().unwrap_or(""),
        );
        if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("malformed request line {request_line:?}"),
            ));
        }
        let mut content_length = 0usize;
        // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
        let mut keep_alive = version != "HTTP/1.0";
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(ErrorKind::InvalidData, "bad Content-Length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && !value.eq_ignore_ascii_case("identity")
            {
                // Only Content-Length framing is implemented; silently
                // treating a chunked body as empty would leave its
                // framing bytes to desync the keep-alive stream.
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unsupported Transfer-Encoding {value:?}"),
                ));
            }
        }
        if content_length > max_body {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "request body too large",
            ));
        }
        let body_start = end + 4;
        // Like the header phase, a body may dribble in only for a bounded
        // while: a stalled transfer must not pin this handler thread (and
        // with it, clean shutdown) forever.
        let body_since = Instant::now();
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if body_since.elapsed() > PARTIAL_DEADLINE {
                        return Err(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "request body stalled mid-transfer",
                        ));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep any pipelined bytes for the next request.
        self.buf.drain(..body_start + content_length);
        Ok(Request {
            method,
            path,
            body,
            keep_alive,
        })
    }

    /// Writes a JSON response.
    ///
    /// # Errors
    /// Propagates stream write failures.
    pub fn respond(&mut self, status: u16, body: &str, keep_alive: bool) -> std::io::Result<()> {
        let reason = reason_phrase(status);
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()
    }

    /// Best-effort typed-error response before closing a broken
    /// connection (the error code follows from the status).
    pub fn reject(&mut self, status: u16, message: &str) {
        let body = crate::protocol::error_response(error_code(status), message);
        let _ = self.respond(status, &body, false);
    }
}

/// Index of the `\r\n\r\n` header terminator, if buffered.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The typed-error `code` implied by a status (for connection-level
/// rejections that never reach a route handler).
fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        410 => "gone",
        413 => "payload_too_large",
        422 => "unprocessable",
        503 => "unavailable",
        _ => "internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_header_end(b""), None);
    }

    #[test]
    fn reason_phrases_cover_protocol_statuses() {
        for s in [200, 400, 404, 405, 410, 413, 422, 500, 503] {
            assert_ne!(reason_phrase(s), "Unknown");
        }
        assert_eq!(reason_phrase(299), "Unknown");
    }

    #[test]
    fn error_codes_follow_statuses() {
        assert_eq!(error_code(400), "bad_request");
        assert_eq!(error_code(405), "method_not_allowed");
        assert_eq!(error_code(410), "gone");
        assert_eq!(error_code(422), "unprocessable");
        assert_eq!(error_code(500), "internal");
    }
}
