//! The serving wire protocol: a minimal JSON dialect over HTTP/1.1.
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /predict` | `{"user":U,"traj":T,"prefix_len":P[,"k":K][,"top":N]}` | `{"pois":[…],"tiles":[…],"candidates":C,"snapshot":V,"batch":B}` |
//! | `GET /healthz` | – | `{"status":"ok","snapshot":V,"published":W,"served":N,"batches":M,"queue":Q}` |
//! | `POST /admin/reload` | `{"path":"ckpt.json"}` | `{"ok":true,"snapshot":V}` |
//! | `POST /admin/shutdown` | – | `{"ok":true}` |
//!
//! `(user, traj, prefix_len)` addresses a history in the server-side
//! dataset (the synthetic presets are deterministic, so client and server
//! agree on indices); `prefix_len` may equal the trajectory length — that
//! is the true online case, predicting the not-yet-observed next visit.

use serde::Value;
use tspn_core::TopK;
use tspn_data::Sample;

/// Renders a `/predict` request body — the client-side counterpart of
/// [`parse_predict`], shared by the load generator and the tests so the
/// wire shape has exactly one definition on each side.
pub fn predict_request_body(sample: &Sample, k: usize, top: usize) -> String {
    format!(
        "{{\"user\":{},\"traj\":{},\"prefix_len\":{},\"k\":{k},\"top\":{top}}}",
        sample.user_index, sample.traj_index, sample.prefix_len
    )
}

/// Extracts the POI ranking from a parsed `/predict` answer.
pub fn pois_of(answer: &Value) -> Option<Vec<tspn_data::PoiId>> {
    match answer.get("pois") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|i| i.as_usize().map(tspn_data::PoiId))
            .collect(),
        _ => None,
    }
}

/// A parsed `/predict` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictRequest {
    /// The addressed sample.
    pub sample: Sample,
    /// Tile-selection K; `None` uses the server's configured `top_k`.
    pub k: Option<usize>,
    /// Result-list truncation; `None` uses the server default (10).
    pub top: Option<usize>,
}

/// Parses a `/predict` body.
///
/// # Errors
/// Returns a client-facing message on malformed JSON, missing required
/// fields, or non-integer values.
pub fn parse_predict(body: &[u8]) -> Result<PredictRequest, String> {
    let v = parse_json(body)?;
    let field = |name: &str| -> Result<usize, String> {
        v.get(name)
            .ok_or_else(|| format!("missing field {name:?}"))?
            .as_usize()
            .ok_or_else(|| format!("field {name:?} must be a non-negative integer"))
    };
    let optional = |name: &str| -> Result<Option<usize>, String> {
        match v.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(val) => val
                .as_usize()
                .map(Some)
                .ok_or_else(|| format!("field {name:?} must be a non-negative integer")),
        }
    };
    Ok(PredictRequest {
        sample: Sample {
            user_index: field("user")?,
            traj_index: field("traj")?,
            prefix_len: field("prefix_len")?,
        },
        k: optional("k")?,
        top: optional("top")?,
    })
}

/// Parses an `/admin/reload` body into the checkpoint path.
///
/// # Errors
/// Returns a client-facing message on malformed JSON or a missing path.
pub fn parse_reload(body: &[u8]) -> Result<String, String> {
    let v = parse_json(body)?;
    v.get("path")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing string field \"path\"".to_string())
}

fn parse_json(body: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    serde_json::from_str::<Value>(text).map_err(|e| format!("invalid JSON: {e}"))
}

/// Renders a `/predict` answer.
pub fn predict_response(topk: &TopK, snapshot: u64, batch: u64) -> String {
    let mut out = String::with_capacity(64 + 8 * (topk.pois.len() + topk.tiles.len()));
    out.push_str("{\"pois\":[");
    push_ids(&mut out, topk.pois.iter().map(|p| p.0));
    out.push_str("],\"tiles\":[");
    push_ids(&mut out, topk.tiles.iter().copied());
    out.push_str("],\"candidates\":");
    out.push_str(&topk.candidate_count.to_string());
    out.push_str(",\"snapshot\":");
    out.push_str(&snapshot.to_string());
    out.push_str(",\"batch\":");
    out.push_str(&batch.to_string());
    out.push('}');
    out
}

fn push_ids(out: &mut String, ids: impl Iterator<Item = usize>) {
    for (i, id) in ids.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
}

/// Renders a `/healthz` answer. `snapshot` is the parameter version the
/// batcher is actually serving; `published` the latest validated reload
/// (they differ only until the next flush applies it).
pub fn health_response(
    snapshot: u64,
    published: u64,
    served: u64,
    batches: u64,
    queue: usize,
) -> String {
    format!(
        "{{\"status\":\"ok\",\"snapshot\":{snapshot},\"published\":{published},\
         \"served\":{served},\"batches\":{batches},\"queue\":{queue}}}"
    )
}

/// Renders an error body. The message is escaped as a real JSON string
/// (Rust's `{:?}` is *almost* JSON but renders control characters as the
/// invalid `\u{7f}` form, and parts of the message are client-controlled).
pub fn error_response(message: &str) -> String {
    let escaped =
        serde_json::to_string(&message.to_string()).unwrap_or_else(|_| "\"error\"".to_string());
    format!("{{\"error\":{escaped}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::PoiId;

    #[test]
    fn predict_request_parses_required_and_optional_fields() {
        let req = parse_predict(br#"{"user":3,"traj":1,"prefix_len":4,"k":6,"top":5}"#).unwrap();
        assert_eq!(
            req.sample,
            Sample {
                user_index: 3,
                traj_index: 1,
                prefix_len: 4
            }
        );
        assert_eq!((req.k, req.top), (Some(6), Some(5)));

        let req = parse_predict(br#"{"user":0,"traj":0,"prefix_len":1}"#).unwrap();
        assert_eq!((req.k, req.top), (None, None));
    }

    #[test]
    fn predict_request_rejects_bad_bodies() {
        assert!(parse_predict(b"not json").is_err());
        assert!(parse_predict(br#"{"user":1,"traj":0}"#).is_err());
        assert!(parse_predict(br#"{"user":-1,"traj":0,"prefix_len":1}"#).is_err());
        assert!(parse_predict(br#"{"user":1.5,"traj":0,"prefix_len":1}"#).is_err());
        assert!(parse_predict(br#"{"user":1,"traj":0,"prefix_len":1,"k":"x"}"#).is_err());
    }

    #[test]
    fn reload_request_roundtrip() {
        assert_eq!(parse_reload(br#"{"path":"a/b.json"}"#).unwrap(), "a/b.json");
        assert!(parse_reload(br#"{"file":"a"}"#).is_err());
        assert!(parse_reload(b"{").is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        let topk = TopK {
            pois: vec![PoiId(4), PoiId(1)],
            tiles: vec![7],
            candidate_count: 12,
        };
        let text = predict_response(&topk, 2, 9);
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("candidates").and_then(Value::as_usize), Some(12));
        assert_eq!(v.get("snapshot").and_then(Value::as_usize), Some(2));
        let health: Value = serde_json::from_str(&health_response(1, 2, 10, 3, 0)).unwrap();
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(health.get("snapshot").and_then(Value::as_usize), Some(1));
        assert_eq!(health.get("published").and_then(Value::as_usize), Some(2));
        let err: Value = serde_json::from_str(&error_response("bad \"thing\"")).unwrap();
        assert!(err.get("error").is_some());
        // Control characters in client-echoed text must still yield valid
        // JSON (Rust's {:?} escaping would not).
        let tricky = error_response("no route GET /\u{7f}\n");
        let parsed: Value = serde_json::from_str(&tricky).unwrap();
        assert_eq!(
            parsed.get("error").and_then(Value::as_str),
            Some("no route GET /\u{7f}\n")
        );
    }
}
