//! The serving wire protocol: a minimal JSON dialect over HTTP/1.1.
//!
//! ## The `/v1` surface (payload-addressed + sessions)
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /v1/predict` | `{"user":U,"checkins":[{"poi":P,"t":T},…][,"k":K][,"top":N]}` | `{"pois":[…],"tiles":[…],"candidates":C,"snapshot":V,"batch":B}` |
//! | `POST /v1/sessions` | `{"user":U[,"checkins":[…]]}` | `{"session":"s1","user":U,"checkins":N,"ttl_ms":T}` |
//! | `POST /v1/sessions/{id}/checkins` | `{"checkins":[…]}` | `{"session":"s1","checkins":N}` |
//! | `POST /v1/sessions/{id}/predict` | `{}` or `{"k":K,"top":N}` | as `/v1/predict` |
//! | `GET /v1/sessions/{id}` | – | `{"session":"s1","user":U,"checkins":N,"idle_ms":I}` |
//! | `DELETE /v1/sessions/{id}` | – | `{"ok":true}` |
//! | `GET /v1/stats` | – | serving + session-store counters, build info (kernel tier, threads) |
//!
//! ## Legacy + admin
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /predict` | `{"user":U,"traj":T,"prefix_len":P[,"k":K][,"top":N]}` | as `/v1/predict` |
//! | `GET /healthz` | – | status + counters |
//! | `POST /admin/reload` | `{"path":"ckpt.json"}` | `{"ok":true,"snapshot":V}` |
//! | `POST /admin/shutdown` | – | `{"ok":true}` |
//!
//! Errors are **typed**: `{"error":{"code":"…","message":"…"}}` with
//! `400 bad_request` (malformed JSON / wrong field types), `404
//! not_found` (unknown route or never-issued session), `405
//! method_not_allowed`, `410 gone` (expired/evicted/deleted session),
//! `413 payload_too_large` / `431 headers_too_large` (wire-size limits),
//! `422 unprocessable` (well-formed but semantically invalid: POI out of
//! vocabulary, unordered timestamps, empty check-in runs, zero `k`/`top`),
//! `429 overloaded` (admission queue full; carries `Retry-After`), and
//! `503` with code `shutting_down` (draining), `not_ready` (circuit
//! breaker open), or `deadline_exceeded` (request budget spent in queue).

use serde::Value;
use tspn_core::TopK;
use tspn_data::{PoiId, Sample, Visit};

// ---------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------

/// A client-facing API error: HTTP status plus the typed JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code (`"bad_request"`, `"gone"`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// `400 bad_request`: malformed JSON or wrong field types.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// `404 not_found`: unknown route or never-issued resource.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
        }
    }

    /// `405 method_not_allowed`: known path, wrong verb.
    pub fn method_not_allowed(message: impl Into<String>) -> Self {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: message.into(),
        }
    }

    /// `410 gone`: the resource existed but has expired or been deleted.
    pub fn gone(message: impl Into<String>) -> Self {
        ApiError {
            status: 410,
            code: "gone",
            message: message.into(),
        }
    }

    /// `422 unprocessable`: well-formed but semantically invalid.
    pub fn unprocessable(message: impl Into<String>) -> Self {
        ApiError {
            status: 422,
            code: "unprocessable",
            message: message.into(),
        }
    }

    /// `429 overloaded`: the admission queue is full; the request was
    /// shed without being executed, so retrying (after `Retry-After`) is
    /// always safe.
    pub fn overloaded(message: impl Into<String>) -> Self {
        ApiError {
            status: 429,
            code: "overloaded",
            message: message.into(),
        }
    }

    /// `503 shutting_down`: the server is draining; this connection gets
    /// a typed refusal instead of a reset.
    pub fn shutting_down(message: impl Into<String>) -> Self {
        ApiError {
            status: 503,
            code: "shutting_down",
            message: message.into(),
        }
    }

    /// `503 not_ready`: the circuit breaker is open after repeated
    /// batcher crashes; predictions are shed until the cool-down passes.
    pub fn not_ready(message: impl Into<String>) -> Self {
        ApiError {
            status: 503,
            code: "not_ready",
            message: message.into(),
        }
    }

    /// `503 deadline_exceeded`: the request's deadline budget elapsed
    /// while it waited; it was dropped before the model ran it.
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        ApiError {
            status: 503,
            code: "deadline_exceeded",
            message: message.into(),
        }
    }

    /// `500 internal`: the batch serving this request crashed; the
    /// supervisor restarts the batcher and subsequent requests succeed.
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError {
            status: 500,
            code: "internal",
            message: message.into(),
        }
    }

    /// The `(status, body)` pair the connection handler writes.
    pub fn render(&self) -> (u16, String) {
        (self.status, error_response(self.code, &self.message))
    }
}

/// Renders a typed error body. The message is escaped as a real JSON
/// string (Rust's `{:?}` is *almost* JSON but renders control characters
/// as the invalid `\u{7f}` form, and parts of the message are
/// client-controlled).
pub fn error_response(code: &str, message: &str) -> String {
    let code =
        serde_json::to_string(&code.to_string()).unwrap_or_else(|_| "\"internal\"".to_string());
    let message =
        serde_json::to_string(&message.to_string()).unwrap_or_else(|_| "\"error\"".to_string());
    format!("{{\"error\":{{\"code\":{code},\"message\":{message}}}}}")
}

/// Extracts `(code, message)` from a parsed typed-error answer — the
/// client-side counterpart of [`error_response`], shared by the smoke
/// driver and the tests.
pub fn error_of(answer: &Value) -> Option<(String, String)> {
    let err = answer.get("error")?;
    Some((
        err.get("code")?.as_str()?.to_string(),
        err.get("message")?.as_str()?.to_string(),
    ))
}

// ---------------------------------------------------------------------
// Shared JSON helpers
// ---------------------------------------------------------------------

fn parse_json(body: &[u8]) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("body is not UTF-8".to_string()))?;
    serde_json::from_str::<Value>(text)
        .map_err(|e| ApiError::bad_request(format!("invalid JSON: {e}")))
}

fn usize_field(v: &Value, name: &str) -> Result<usize, ApiError> {
    v.get(name)
        .ok_or_else(|| ApiError::bad_request(format!("missing field {name:?}")))?
        .as_usize()
        .ok_or_else(|| {
            ApiError::bad_request(format!("field {name:?} must be a non-negative integer"))
        })
}

/// Optional positive integer: absent/null → `None`, zero → 422.
fn optional_positive(v: &Value, name: &str) -> Result<Option<usize>, ApiError> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(val) => {
            let n = val.as_usize().ok_or_else(|| {
                ApiError::bad_request(format!("field {name:?} must be a non-negative integer"))
            })?;
            if n == 0 {
                return Err(ApiError::unprocessable(format!(
                    "field {name:?} must be ≥ 1"
                )));
            }
            Ok(Some(n))
        }
    }
}

/// Parses a `checkins` array of `{"poi":P,"t":T}` records.
fn checkins_field(v: &Value, required: bool) -> Result<Vec<Visit>, ApiError> {
    let field = match v.get("checkins") {
        Some(f) => f,
        None if !required => return Ok(Vec::new()),
        None => return Err(ApiError::bad_request("missing field \"checkins\"")),
    };
    let Value::Array(items) = field else {
        return Err(ApiError::bad_request("field \"checkins\" must be an array"));
    };
    let mut visits = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let poi = item.get("poi").and_then(Value::as_usize).ok_or_else(|| {
            ApiError::bad_request(format!("checkin {i} needs integer field \"poi\""))
        })?;
        let time = item.get("t").and_then(Value::as_i64).ok_or_else(|| {
            ApiError::bad_request(format!("checkin {i} needs integer field \"t\""))
        })?;
        visits.push(Visit {
            poi: PoiId(poi),
            time,
        });
    }
    Ok(visits)
}

/// Renders a `checkins` array (client side).
fn push_checkins(out: &mut String, visits: &[Visit]) {
    out.push_str("\"checkins\":[");
    for (i, v) in visits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"poi\":{},\"t\":{}}}", v.poi.0, v.time));
    }
    out.push(']');
}

// ---------------------------------------------------------------------
// Legacy /predict (index-addressed)
// ---------------------------------------------------------------------

/// Renders a legacy `/predict` request body — the client-side counterpart
/// of [`parse_predict`], shared by the load generator and the tests so
/// the wire shape has exactly one definition on each side.
pub fn predict_request_body(sample: &Sample, k: usize, top: usize) -> String {
    format!(
        "{{\"user\":{},\"traj\":{},\"prefix_len\":{},\"k\":{k},\"top\":{top}}}",
        sample.user_index, sample.traj_index, sample.prefix_len
    )
}

/// Extracts the POI ranking from a parsed predict answer.
pub fn pois_of(answer: &Value) -> Option<Vec<tspn_data::PoiId>> {
    match answer.get("pois") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|i| i.as_usize().map(tspn_data::PoiId))
            .collect(),
        _ => None,
    }
}

/// A parsed legacy `/predict` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictRequest {
    /// The addressed sample.
    pub sample: Sample,
    /// Tile-selection K; `None` uses the server's configured `top_k`.
    pub k: Option<usize>,
    /// Result-list truncation; `None` uses the server default (10).
    pub top: Option<usize>,
}

/// Parses a legacy `/predict` body.
///
/// # Errors
/// `400 bad_request` on malformed JSON, missing required fields, or
/// non-integer values (the legacy endpoint predates the 422 class and
/// keeps its original status for compatibility).
pub fn parse_predict(body: &[u8]) -> Result<PredictRequest, ApiError> {
    let v = parse_json(body)?;
    // The legacy dialect tolerated k=0/top=0 (server clamps); preserve
    // that rather than retrofit the v1 rules onto old clients.
    let optional = |name: &str| -> Result<Option<usize>, ApiError> {
        match v.get(name) {
            None | Some(Value::Null) => Ok(None),
            Some(val) => val.as_usize().map(Some).ok_or_else(|| {
                ApiError::bad_request(format!("field {name:?} must be a non-negative integer"))
            }),
        }
    };
    Ok(PredictRequest {
        sample: Sample {
            user_index: usize_field(&v, "user")?,
            traj_index: usize_field(&v, "traj")?,
            prefix_len: usize_field(&v, "prefix_len")?,
        },
        k: optional("k")?,
        top: optional("top")?,
    })
}

// ---------------------------------------------------------------------
// v1 payload-addressed predict
// ---------------------------------------------------------------------

/// A parsed `POST /v1/predict` body.
#[derive(Debug, Clone, PartialEq)]
pub struct V1PredictRequest {
    /// Client-supplied user id (opaque; echoed into session state only).
    pub user: usize,
    /// The raw observed check-in stream, oldest first.
    pub checkins: Vec<Visit>,
    /// Tile-selection K; `None` uses the server's configured `top_k`.
    pub k: Option<usize>,
    /// Result-list truncation; `None` uses the server default.
    pub top: Option<usize>,
}

/// Parses a `POST /v1/predict` body.
///
/// # Errors
/// `400` for malformed JSON / wrong types, `422` for an empty `checkins`
/// run or zero `k`/`top` (sequence-order and vocabulary violations are
/// caught against the dataset by the server).
pub fn parse_v1_predict(body: &[u8]) -> Result<V1PredictRequest, ApiError> {
    let v = parse_json(body)?;
    let checkins = checkins_field(&v, true)?;
    if checkins.is_empty() {
        return Err(ApiError::unprocessable("\"checkins\" must be non-empty"));
    }
    Ok(V1PredictRequest {
        user: usize_field(&v, "user")?,
        checkins,
        k: optional_positive(&v, "k")?,
        top: optional_positive(&v, "top")?,
    })
}

/// Renders a `POST /v1/predict` body (client side).
pub fn v1_predict_request_body(user: usize, checkins: &[Visit], k: usize, top: usize) -> String {
    let mut out = String::with_capacity(48 + 24 * checkins.len());
    out.push_str(&format!("{{\"user\":{user},"));
    push_checkins(&mut out, checkins);
    out.push_str(&format!(",\"k\":{k},\"top\":{top}}}"));
    out
}

// ---------------------------------------------------------------------
// v1 sessions
// ---------------------------------------------------------------------

/// A parsed `POST /v1/sessions` body.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCreateRequest {
    /// The session's user id.
    pub user: usize,
    /// Optional initial check-ins (may be empty).
    pub checkins: Vec<Visit>,
}

/// Parses a `POST /v1/sessions` body.
///
/// # Errors
/// `400` on malformed JSON, a missing `user`, or wrong types.
pub fn parse_session_create(body: &[u8]) -> Result<SessionCreateRequest, ApiError> {
    let v = parse_json(body)?;
    Ok(SessionCreateRequest {
        user: usize_field(&v, "user")?,
        checkins: checkins_field(&v, false)?,
    })
}

/// Renders a `POST /v1/sessions` body (client side).
pub fn session_create_body(user: usize, checkins: &[Visit]) -> String {
    let mut out = String::with_capacity(32 + 24 * checkins.len());
    out.push_str(&format!("{{\"user\":{user},"));
    push_checkins(&mut out, checkins);
    out.push('}');
    out
}

/// Parses a `POST /v1/sessions/{id}/checkins` body into the appended run.
///
/// # Errors
/// `400` on malformed JSON or types, `422` on an empty run.
pub fn parse_session_append(body: &[u8]) -> Result<Vec<Visit>, ApiError> {
    let v = parse_json(body)?;
    let checkins = checkins_field(&v, true)?;
    if checkins.is_empty() {
        return Err(ApiError::unprocessable("\"checkins\" must be non-empty"));
    }
    Ok(checkins)
}

/// Renders a `POST /v1/sessions/{id}/checkins` body (client side).
pub fn session_append_body(checkins: &[Visit]) -> String {
    let mut out = String::with_capacity(16 + 24 * checkins.len());
    out.push('{');
    push_checkins(&mut out, checkins);
    out.push('}');
    out
}

/// Parses a `POST /v1/sessions/{id}/predict` body: `k`/`top` overrides.
/// An empty body means "all defaults".
///
/// # Errors
/// `400` on malformed JSON or types, `422` on zero `k`/`top`.
pub fn parse_predict_opts(body: &[u8]) -> Result<(Option<usize>, Option<usize>), ApiError> {
    if body.iter().all(|b| b.is_ascii_whitespace()) {
        return Ok((None, None));
    }
    let v = parse_json(body)?;
    Ok((optional_positive(&v, "k")?, optional_positive(&v, "top")?))
}

/// Renders a `POST /v1/sessions` answer.
pub fn session_created_response(id: u64, user: usize, checkins: usize, ttl_ms: u64) -> String {
    format!("{{\"session\":\"s{id}\",\"user\":{user},\"checkins\":{checkins},\"ttl_ms\":{ttl_ms}}}")
}

/// Renders a `POST /v1/sessions/{id}/checkins` answer.
pub fn session_append_response(id: u64, checkins: usize) -> String {
    format!("{{\"session\":\"s{id}\",\"checkins\":{checkins}}}")
}

/// Renders a `GET /v1/sessions/{id}` answer.
pub fn session_info_response(id: u64, user: usize, checkins: usize, idle_ms: u64) -> String {
    format!(
        "{{\"session\":\"s{id}\",\"user\":{user},\"checkins\":{checkins},\"idle_ms\":{idle_ms}}}"
    )
}

/// Extracts the numeric id from a `"s<N>"` session-id path segment.
pub fn parse_session_id(segment: &str) -> Option<u64> {
    let digits = segment.strip_prefix('s')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------
// Admin + answers
// ---------------------------------------------------------------------

/// Parses an `/admin/reload` body into the checkpoint path.
///
/// # Errors
/// `400` on malformed JSON or a missing path.
pub fn parse_reload(body: &[u8]) -> Result<String, ApiError> {
    let v = parse_json(body)?;
    v.get("path")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request("missing string field \"path\""))
}

/// Renders a predict answer (shared by the legacy, payload, and session
/// endpoints — one response shape for every address mode).
pub fn predict_response(topk: &TopK, snapshot: u64, batch: u64) -> String {
    let mut out = String::with_capacity(64 + 8 * (topk.pois.len() + topk.tiles.len()));
    out.push_str("{\"pois\":[");
    push_ids(&mut out, topk.pois.iter().map(|p| p.0));
    out.push_str("],\"tiles\":[");
    push_ids(&mut out, topk.tiles.iter().copied());
    out.push_str("],\"candidates\":");
    out.push_str(&topk.candidate_count.to_string());
    out.push_str(",\"snapshot\":");
    out.push_str(&snapshot.to_string());
    out.push_str(",\"batch\":");
    out.push_str(&batch.to_string());
    out.push('}');
    out
}

fn push_ids(out: &mut String, ids: impl Iterator<Item = usize>) {
    for (i, id) in ids.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
}

/// Everything `/healthz` and `/v1/stats` report beyond the serving
/// snapshot versions.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Parameter version the batcher is serving.
    pub snapshot: u64,
    /// Latest validated published version.
    pub published: u64,
    /// Total successful predictions across all endpoints.
    pub served: u64,
    /// Legacy `/predict` answers.
    pub served_legacy: u64,
    /// `POST /v1/predict` answers.
    pub served_v1: u64,
    /// `POST /v1/sessions/{id}/predict` answers.
    pub served_session: u64,
    /// Flushed batches.
    pub batches: u64,
    /// Queries currently queued.
    pub queue: usize,
    /// Live sessions.
    pub sessions_live: usize,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Successful append calls.
    pub session_appends: u64,
    /// TTL expirations.
    pub sessions_expired: u64,
    /// Capacity (LRU) evictions.
    pub sessions_evicted: u64,
    /// Configured session TTL in milliseconds.
    pub session_ttl_ms: u64,
    /// Configured session capacity.
    pub session_capacity: usize,
    /// Whether the server accepts predictions right now (`false` while
    /// the circuit breaker is open).
    pub ready: bool,
    /// Configured admission-queue capacity.
    pub queue_cap: usize,
    /// Requests refused because the admission queue was full (429).
    pub shed_queue_full: u64,
    /// Requests dropped in-queue past their deadline (503).
    pub shed_expired: u64,
    /// Requests refused while the breaker was open (503).
    pub shed_not_ready: u64,
    /// Times the supervisor restarted the batcher after a panic.
    pub batcher_restarts: u64,
    /// Default per-request deadline budget in milliseconds.
    pub request_timeout_ms: u64,
    /// Injected flush panics (fault injection; 0 when chaos is inert).
    pub chaos_injected_panics: u64,
    /// Poisoned checkpoint publications (fault injection).
    pub chaos_corrupted_publishes: u64,
}

/// Renders a `/healthz` answer: readiness, the serving versions, and the
/// overload counters an operator needs at a glance. `status` mirrors
/// `ready` (`"ok"` / `"not_ready"`); the draining state never reaches
/// this renderer (the handler refuses with `503 shutting_down` first).
pub fn health_response(s: &StatsSnapshot) -> String {
    format!(
        "{{\"status\":\"{}\",\"ready\":{},\"snapshot\":{},\"published\":{},\"served\":{},\
         \"batches\":{},\"queue\":{},\"queue_cap\":{},\"restarts\":{},\
         \"shed\":{{\"queue_full\":{},\"expired\":{},\"not_ready\":{}}},\
         \"sessions\":{},\"evictions\":{}}}",
        if s.ready { "ok" } else { "not_ready" },
        s.ready,
        s.snapshot,
        s.published,
        s.served,
        s.batches,
        s.queue,
        s.queue_cap,
        s.batcher_restarts,
        s.shed_queue_full,
        s.shed_expired,
        s.shed_not_ready,
        s.sessions_live,
        s.sessions_expired + s.sessions_evicted,
    )
}

/// The leading members of a stats object (shared by the flat renderer
/// and the v2 `aggregate` block): versions, queue, readiness.
fn stats_head(s: &StatsSnapshot) -> String {
    format!(
        "\"snapshot\":{},\"published\":{},\"batches\":{},\"queue\":{},\"ready\":{}",
        s.snapshot, s.published, s.batches, s.queue, s.ready,
    )
}

/// The trailing members of a stats object: per-endpoint served counts,
/// session lifecycle, the overload/shedding ledger, and (always, zeros
/// when inert) the fault-injection counters.
fn stats_tail(s: &StatsSnapshot) -> String {
    format!(
        "\"served\":{{\"total\":{},\"legacy_predict\":{},\"v1_predict\":{},\"session_predict\":{}}},\
         \"sessions\":{{\"live\":{},\"created\":{},\"appends\":{},\"expired\":{},\"evicted\":{},\
         \"ttl_ms\":{},\"capacity\":{}}},\
         \"overload\":{{\"queue_cap\":{},\"shed_queue_full\":{},\"shed_expired\":{},\
         \"shed_not_ready\":{},\"restarts\":{},\"request_timeout_ms\":{}}},\
         \"chaos\":{{\"injected_panics\":{},\"corrupted_publishes\":{}}}",
        s.served,
        s.served_legacy,
        s.served_v1,
        s.served_session,
        s.sessions_live,
        s.sessions_created,
        s.session_appends,
        s.sessions_expired,
        s.sessions_evicted,
        s.session_ttl_ms,
        s.session_capacity,
        s.queue_cap,
        s.shed_queue_full,
        s.shed_expired,
        s.shed_not_ready,
        s.batcher_restarts,
        s.request_timeout_ms,
        s.chaos_injected_panics,
        s.chaos_corrupted_publishes,
    )
}

/// The `build` block identifying the compute-kernel tier this process
/// dispatched to (`avx2-fma` or `scalar` — the first thing to check when
/// two replicas disagree on latency) and its thread count.
fn build_block() -> String {
    format!(
        "\"build\":{{\"kernel_tier\":\"{}\",\"threads\":{}}}",
        tspn_tensor::kernel_tier(),
        tspn_tensor::parallel::num_threads(),
    )
}

/// Renders the **schema v1** (flat) `GET /v1/stats` answer — served
/// verbatim for `GET /v1/stats?flat=1` so pre-lane dashboards keep
/// working against a lane-partitioned server.
pub fn stats_response(s: &StatsSnapshot) -> String {
    format!("{{{},{},{}}}", stats_head(s), build_block(), stats_tail(s))
}

/// Per-lane counters for the stats v2 `lanes` array: each lane is an
/// independent admission queue + supervised batcher + session-store
/// partition, so shedding, restarts, and breaker state are per-lane
/// facts the aggregate view averages away.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneStats {
    /// Lane index (`0..lanes`).
    pub lane: usize,
    /// Parameter version this lane's batcher is serving.
    pub snapshot: u64,
    /// Whether this lane accepts predictions (its breaker is closed).
    pub ready: bool,
    /// Queries currently queued in this lane.
    pub queue_depth: usize,
    /// This lane's admission-queue capacity.
    pub queue_cap: usize,
    /// Successful predictions answered by this lane.
    pub served: u64,
    /// Batches this lane has flushed.
    pub batches: u64,
    /// 429 sheds: lane queue full.
    pub shed_queue_full: u64,
    /// 503 sheds: deadline spent in this lane's queue.
    pub shed_expired: u64,
    /// 503 sheds: this lane's breaker open.
    pub shed_not_ready: u64,
    /// Supervisor restarts of this lane's batcher.
    pub restarts: u64,
    /// Live sessions pinned to this lane.
    pub sessions_live: usize,
    /// Injected flush panics scoped to this lane.
    pub injected_panics: u64,
}

/// Renders one entry of the stats v2 `lanes` array.
fn lane_block(l: &LaneStats) -> String {
    format!(
        "{{\"lane\":{},\"snapshot\":{},\"ready\":{},\"queue_depth\":{},\"queue_cap\":{},\
         \"served\":{},\"batches\":{},\
         \"shed\":{{\"queue_full\":{},\"expired\":{},\"not_ready\":{}}},\
         \"restarts\":{},\"sessions\":{},\"injected_panics\":{}}}",
        l.lane,
        l.snapshot,
        l.ready,
        l.queue_depth,
        l.queue_cap,
        l.served,
        l.batches,
        l.shed_queue_full,
        l.shed_expired,
        l.shed_not_ready,
        l.restarts,
        l.sessions_live,
        l.injected_panics,
    )
}

/// Renders the **schema v2** `GET /v1/stats` answer:
/// `{"schema_version":2,"build":{…},"aggregate":{…},"lanes":[…]}`. The
/// `aggregate` object carries exactly the flat schema's counters (minus
/// the `build` block, which is process-wide and lives at the top level),
/// summed across lanes; `lanes` breaks the same ledger down per lane.
pub fn stats_response_v2(s: &StatsSnapshot, lanes: &[LaneStats]) -> String {
    let lanes_json: Vec<String> = lanes.iter().map(lane_block).collect();
    format!(
        "{{\"schema_version\":2,{},\"aggregate\":{{{},{}}},\"lanes\":[{}]}}",
        build_block(),
        stats_head(s),
        stats_tail(s),
        lanes_json.join(","),
    )
}

/// Renders the `GET /v1/topology` answer: how this process participates
/// in the fleet. `mode` is `"single"` (standalone), `"backend"` (one
/// shard of a routed fleet), or `"router"`; `shard_fn` names the hash
/// every participant must share ([`crate::shard::SHARD_FN_ID`]);
/// `backends` lists the fleet's backend addresses (empty for a
/// standalone server, so a shard-aware client knows to talk to this
/// process directly).
pub fn topology_response(
    mode: &str,
    lanes: usize,
    shard_fn: &str,
    shard_index: usize,
    shard_count: usize,
    backends: &[String],
) -> String {
    let addrs: Vec<String> = backends
        .iter()
        .map(|a| serde_json::to_string(&a.to_string()).unwrap_or_else(|_| "\"\"".to_string()))
        .collect();
    format!(
        "{{\"mode\":\"{mode}\",\"lanes\":{lanes},\"shard_fn\":\"{shard_fn}\",\
         \"shard_index\":{shard_index},\"shard_count\":{shard_count},\"backends\":[{}]}}",
        addrs.join(","),
    )
}

/// A fleet participant's shape, as told by `GET /v1/topology`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `"single"`, `"backend"`, or `"router"`.
    pub mode: String,
    /// Batcher lanes in this process (fleet total when asked of a router).
    pub lanes: usize,
    /// Shard-function identifier every participant must share.
    pub shard_fn: String,
    /// This process's shard index (0 for single/router).
    pub shard_index: usize,
    /// Fleet size (1 for single).
    pub shard_count: usize,
    /// Backend addresses (empty unless asked of a router).
    pub backends: Vec<String>,
}

/// Parses a `GET /v1/topology` answer. `None` when the body is not a
/// topology object (callers treat that as "pre-topology server").
pub fn parse_topology(v: &Value) -> Option<Topology> {
    Some(Topology {
        mode: v.get("mode")?.as_str()?.to_string(),
        lanes: v.get("lanes")?.as_usize()?,
        shard_fn: v.get("shard_fn")?.as_str()?.to_string(),
        shard_index: v.get("shard_index")?.as_usize()?,
        shard_count: v.get("shard_count")?.as_usize()?,
        backends: v
            .get("backends")?
            .as_array()?
            .iter()
            .map(|a| a.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()?,
    })
}

/// Parses a flat stats object — a `?flat=1` answer or the `aggregate`
/// block of a v2 answer (same shape) — back into a [`StatsSnapshot`].
/// The router uses this to merge backend ledgers into one fleet view.
pub fn parse_stats(v: &Value) -> Option<StatsSnapshot> {
    let num = |path: &[&str]| -> Option<u64> {
        let mut cur = v;
        for key in path {
            cur = cur.get(key)?;
        }
        cur.as_usize().map(|n| n as u64)
    };
    Some(StatsSnapshot {
        snapshot: num(&["snapshot"])?,
        published: num(&["published"])?,
        served: num(&["served", "total"])?,
        served_legacy: num(&["served", "legacy_predict"])?,
        served_v1: num(&["served", "v1_predict"])?,
        served_session: num(&["served", "session_predict"])?,
        batches: num(&["batches"])?,
        queue: num(&["queue"])? as usize,
        sessions_live: num(&["sessions", "live"])? as usize,
        sessions_created: num(&["sessions", "created"])?,
        session_appends: num(&["sessions", "appends"])?,
        sessions_expired: num(&["sessions", "expired"])?,
        sessions_evicted: num(&["sessions", "evicted"])?,
        session_ttl_ms: num(&["sessions", "ttl_ms"])?,
        session_capacity: num(&["sessions", "capacity"])? as usize,
        ready: v.get("ready")?.as_bool()?,
        queue_cap: num(&["overload", "queue_cap"])? as usize,
        shed_queue_full: num(&["overload", "shed_queue_full"])?,
        shed_expired: num(&["overload", "shed_expired"])?,
        shed_not_ready: num(&["overload", "shed_not_ready"])?,
        batcher_restarts: num(&["overload", "restarts"])?,
        request_timeout_ms: num(&["overload", "request_timeout_ms"])?,
        chaos_injected_panics: num(&["chaos", "injected_panics"])?,
        chaos_corrupted_publishes: num(&["chaos", "corrupted_publishes"])?,
    })
}

/// Parses one entry of a v2 `lanes` array back into [`LaneStats`] (the
/// router re-numbers and re-renders backend lanes into its fleet view).
pub fn parse_lane_stats(v: &Value) -> Option<LaneStats> {
    let num = |path: &[&str]| -> Option<u64> {
        let mut cur = v;
        for key in path {
            cur = cur.get(key)?;
        }
        cur.as_usize().map(|n| n as u64)
    };
    Some(LaneStats {
        lane: num(&["lane"])? as usize,
        snapshot: num(&["snapshot"])?,
        ready: v.get("ready")?.as_bool()?,
        queue_depth: num(&["queue_depth"])? as usize,
        queue_cap: num(&["queue_cap"])? as usize,
        served: num(&["served"])?,
        batches: num(&["batches"])?,
        shed_queue_full: num(&["shed", "queue_full"])?,
        shed_expired: num(&["shed", "expired"])?,
        shed_not_ready: num(&["shed", "not_ready"])?,
        restarts: num(&["restarts"])?,
        sessions_live: num(&["sessions"])? as usize,
        injected_panics: num(&["injected_panics"])?,
    })
}

/// Sums two stats ledgers into a fleet aggregate: counters add, `ready`
/// ANDs (the fleet is ready only when every member is), versions take the
/// newest, and configuration values (`ttl_ms`, `capacity`, `queue_cap`,
/// `request_timeout_ms`) keep `a`'s — a fleet is deployed homogeneous.
pub fn merge_stats(a: &StatsSnapshot, b: &StatsSnapshot) -> StatsSnapshot {
    StatsSnapshot {
        snapshot: a.snapshot.max(b.snapshot),
        published: a.published.max(b.published),
        served: a.served + b.served,
        served_legacy: a.served_legacy + b.served_legacy,
        served_v1: a.served_v1 + b.served_v1,
        served_session: a.served_session + b.served_session,
        batches: a.batches + b.batches,
        queue: a.queue + b.queue,
        sessions_live: a.sessions_live + b.sessions_live,
        sessions_created: a.sessions_created + b.sessions_created,
        session_appends: a.session_appends + b.session_appends,
        sessions_expired: a.sessions_expired + b.sessions_expired,
        sessions_evicted: a.sessions_evicted + b.sessions_evicted,
        session_ttl_ms: a.session_ttl_ms,
        session_capacity: a.session_capacity,
        ready: a.ready && b.ready,
        queue_cap: a.queue_cap,
        shed_queue_full: a.shed_queue_full + b.shed_queue_full,
        shed_expired: a.shed_expired + b.shed_expired,
        shed_not_ready: a.shed_not_ready + b.shed_not_ready,
        batcher_restarts: a.batcher_restarts + b.batcher_restarts,
        request_timeout_ms: a.request_timeout_ms,
        chaos_injected_panics: a.chaos_injected_panics + b.chaos_injected_panics,
        chaos_corrupted_publishes: a.chaos_corrupted_publishes + b.chaos_corrupted_publishes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::PoiId;

    fn v(poi: usize, t: i64) -> Visit {
        Visit {
            poi: PoiId(poi),
            time: t,
        }
    }

    #[test]
    fn predict_request_parses_required_and_optional_fields() {
        let req = parse_predict(br#"{"user":3,"traj":1,"prefix_len":4,"k":6,"top":5}"#).unwrap();
        assert_eq!(
            req.sample,
            Sample {
                user_index: 3,
                traj_index: 1,
                prefix_len: 4
            }
        );
        assert_eq!((req.k, req.top), (Some(6), Some(5)));

        let req = parse_predict(br#"{"user":0,"traj":0,"prefix_len":1}"#).unwrap();
        assert_eq!((req.k, req.top), (None, None));
    }

    #[test]
    fn predict_request_rejects_bad_bodies() {
        assert!(parse_predict(b"not json").is_err());
        assert!(parse_predict(br#"{"user":1,"traj":0}"#).is_err());
        assert!(parse_predict(br#"{"user":-1,"traj":0,"prefix_len":1}"#).is_err());
        assert!(parse_predict(br#"{"user":1.5,"traj":0,"prefix_len":1}"#).is_err());
        assert!(parse_predict(br#"{"user":1,"traj":0,"prefix_len":1,"k":"x"}"#).is_err());
        // All of the above are protocol-shape violations → 400.
        assert_eq!(parse_predict(b"not json").unwrap_err().status, 400);
    }

    #[test]
    fn v1_predict_roundtrip_and_statuses() {
        let visits = vec![v(3, 100), v(9, 7 * 3600)];
        let body = v1_predict_request_body(5, &visits, 4, 10);
        let req = parse_v1_predict(body.as_bytes()).unwrap();
        assert_eq!(req.user, 5);
        assert_eq!(req.checkins, visits);
        assert_eq!((req.k, req.top), (Some(4), Some(10)));

        // Negative timestamps survive (i64 field).
        let req = parse_v1_predict(br#"{"user":0,"checkins":[{"poi":1,"t":-5}]}"#).unwrap();
        assert_eq!(req.checkins[0].time, -5);
        assert_eq!((req.k, req.top), (None, None));

        // Missing/empty/typed violations map to the right status class.
        assert_eq!(parse_v1_predict(br#"{"user":0}"#).unwrap_err().status, 400);
        assert_eq!(
            parse_v1_predict(br#"{"user":0,"checkins":[]}"#)
                .unwrap_err()
                .status,
            422
        );
        assert_eq!(
            parse_v1_predict(br#"{"user":0,"checkins":[{"poi":1}]}"#)
                .unwrap_err()
                .status,
            400
        );
        let zero_k = parse_v1_predict(br#"{"user":0,"checkins":[{"poi":1,"t":0}],"k":0}"#);
        assert_eq!(zero_k.unwrap_err().status, 422);
    }

    #[test]
    fn session_bodies_roundtrip() {
        let visits = vec![v(1, 5), v(2, 10)];
        let create = parse_session_create(session_create_body(9, &visits).as_bytes()).unwrap();
        assert_eq!((create.user, create.checkins.clone()), (9, visits.clone()));
        // `checkins` is optional on create…
        let bare = parse_session_create(br#"{"user":2}"#).unwrap();
        assert!(bare.checkins.is_empty());
        // …but `user` is not.
        assert_eq!(parse_session_create(b"{}").unwrap_err().status, 400);

        let appended = parse_session_append(session_append_body(&visits).as_bytes()).unwrap();
        assert_eq!(appended, visits);
        assert_eq!(
            parse_session_append(br#"{"checkins":[]}"#)
                .unwrap_err()
                .status,
            422
        );

        assert_eq!(parse_predict_opts(b"").unwrap(), (None, None));
        assert_eq!(parse_predict_opts(b"{}").unwrap(), (None, None));
        assert_eq!(
            parse_predict_opts(br#"{"k":3,"top":7}"#).unwrap(),
            (Some(3), Some(7))
        );
        assert_eq!(parse_predict_opts(br#"{"top":0}"#).unwrap_err().status, 422);
    }

    #[test]
    fn session_id_segments_parse_strictly() {
        assert_eq!(parse_session_id("s1"), Some(1));
        assert_eq!(parse_session_id("s907"), Some(907));
        assert_eq!(parse_session_id("s"), None);
        assert_eq!(parse_session_id("1"), None);
        assert_eq!(parse_session_id("sx1"), None);
        assert_eq!(parse_session_id("s1x"), None);
    }

    #[test]
    fn reload_request_roundtrip() {
        assert_eq!(parse_reload(br#"{"path":"a/b.json"}"#).unwrap(), "a/b.json");
        assert!(parse_reload(br#"{"file":"a"}"#).is_err());
        assert!(parse_reload(b"{").is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        let topk = TopK {
            pois: vec![PoiId(4), PoiId(1)],
            tiles: vec![7],
            candidate_count: 12,
        };
        let text = predict_response(&topk, 2, 9);
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.get("candidates").and_then(Value::as_usize), Some(12));
        assert_eq!(parsed.get("snapshot").and_then(Value::as_usize), Some(2));

        let stats = StatsSnapshot {
            snapshot: 1,
            published: 2,
            served: 10,
            served_legacy: 4,
            served_v1: 3,
            served_session: 3,
            batches: 3,
            queue: 0,
            sessions_live: 2,
            sessions_created: 5,
            session_appends: 7,
            sessions_expired: 2,
            sessions_evicted: 1,
            session_ttl_ms: 1_000,
            session_capacity: 64,
            ready: true,
            queue_cap: 128,
            shed_queue_full: 6,
            shed_expired: 4,
            shed_not_ready: 2,
            batcher_restarts: 1,
            request_timeout_ms: 10_000,
            chaos_injected_panics: 0,
            chaos_corrupted_publishes: 0,
        };
        let health: Value = serde_json::from_str(&health_response(&stats)).unwrap();
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(health.get("sessions").and_then(Value::as_usize), Some(2));
        assert_eq!(health.get("evictions").and_then(Value::as_usize), Some(3));
        assert_eq!(health.get("queue_cap").and_then(Value::as_usize), Some(128));
        assert_eq!(health.get("restarts").and_then(Value::as_usize), Some(1));
        let shed = health.get("shed").expect("shed object");
        assert_eq!(shed.get("queue_full").and_then(Value::as_usize), Some(6));
        assert_eq!(shed.get("expired").and_then(Value::as_usize), Some(4));
        assert_eq!(shed.get("not_ready").and_then(Value::as_usize), Some(2));

        // Not-ready flips the status string for probes that only look there.
        let tripped = StatsSnapshot {
            ready: false,
            ..stats
        };
        let health: Value = serde_json::from_str(&health_response(&tripped)).unwrap();
        assert_eq!(
            health.get("status").and_then(Value::as_str),
            Some("not_ready")
        );

        let full: Value = serde_json::from_str(&stats_response(&stats)).unwrap();
        let served = full.get("served").expect("served object");
        assert_eq!(served.get("total").and_then(Value::as_usize), Some(10));
        assert_eq!(served.get("v1_predict").and_then(Value::as_usize), Some(3));
        let sessions = full.get("sessions").expect("sessions object");
        assert_eq!(sessions.get("live").and_then(Value::as_usize), Some(2));
        assert_eq!(
            sessions.get("ttl_ms").and_then(Value::as_usize),
            Some(1_000)
        );
        let overload = full.get("overload").expect("overload object");
        assert_eq!(
            overload.get("shed_queue_full").and_then(Value::as_usize),
            Some(6)
        );
        assert_eq!(overload.get("restarts").and_then(Value::as_usize), Some(1));
        assert_eq!(
            overload.get("request_timeout_ms").and_then(Value::as_usize),
            Some(10_000)
        );
        let chaos = full.get("chaos").expect("chaos object");
        assert_eq!(
            chaos.get("injected_panics").and_then(Value::as_usize),
            Some(0)
        );
        let build = full.get("build").expect("build object");
        assert_eq!(
            build.get("kernel_tier").and_then(Value::as_str),
            Some(tspn_tensor::kernel_tier())
        );
        assert!(build.get("threads").and_then(Value::as_usize).unwrap() >= 1);

        // Stats v2: top-level schema_version/build, the flat counters
        // under `aggregate`, and a per-lane breakdown.
        let lanes = [
            LaneStats {
                lane: 0,
                snapshot: 1,
                ready: true,
                queue_depth: 0,
                queue_cap: 64,
                served: 6,
                batches: 2,
                shed_queue_full: 6,
                shed_expired: 4,
                shed_not_ready: 2,
                restarts: 1,
                sessions_live: 2,
                injected_panics: 0,
            },
            LaneStats {
                lane: 1,
                snapshot: 1,
                ready: false,
                queue_cap: 64,
                served: 4,
                batches: 1,
                ..LaneStats::default()
            },
        ];
        let v2: Value = serde_json::from_str(&stats_response_v2(&stats, &lanes)).unwrap();
        assert_eq!(v2.get("schema_version").and_then(Value::as_usize), Some(2));
        assert!(v2.get("build").and_then(|b| b.get("kernel_tier")).is_some());
        let agg = v2.get("aggregate").expect("aggregate object");
        assert_eq!(
            agg.get("served")
                .and_then(|s| s.get("total"))
                .and_then(Value::as_usize),
            Some(10)
        );
        assert_eq!(
            agg.get("overload")
                .and_then(|o| o.get("shed_queue_full"))
                .and_then(Value::as_usize),
            Some(6)
        );
        assert!(agg.get("build").is_none(), "build is top-level in v2");
        let lanes_arr = v2.get("lanes").and_then(Value::as_array).expect("lanes");
        assert_eq!(lanes_arr.len(), 2);
        assert_eq!(lanes_arr[0].get("lane").and_then(Value::as_usize), Some(0));
        assert_eq!(
            lanes_arr[0]
                .get("shed")
                .and_then(|s| s.get("queue_full"))
                .and_then(Value::as_usize),
            Some(6)
        );
        assert_eq!(
            lanes_arr[1].get("ready").and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(
            lanes_arr[1].get("served").and_then(Value::as_usize),
            Some(4)
        );

        // Topology introspection parses and escapes addresses.
        let topo: Value = serde_json::from_str(&topology_response(
            "backend",
            2,
            "fnv1a64",
            1,
            2,
            &["127.0.0.1:7878".to_string(), "127.0.0.1:7879".to_string()],
        ))
        .unwrap();
        assert_eq!(topo.get("mode").and_then(Value::as_str), Some("backend"));
        assert_eq!(topo.get("lanes").and_then(Value::as_usize), Some(2));
        assert_eq!(
            topo.get("shard_fn").and_then(Value::as_str),
            Some("fnv1a64")
        );
        assert_eq!(topo.get("shard_index").and_then(Value::as_usize), Some(1));
        assert_eq!(topo.get("shard_count").and_then(Value::as_usize), Some(2));
        let backends = topo.get("backends").and_then(Value::as_array).unwrap();
        assert_eq!(backends.len(), 2);
        assert_eq!(backends[0].as_str(), Some("127.0.0.1:7878"));

        let session: Value = serde_json::from_str(&session_created_response(3, 8, 0, 900)).unwrap();
        assert_eq!(session.get("session").and_then(Value::as_str), Some("s3"));

        // Typed error bodies parse and echo control characters safely.
        let err: Value = serde_json::from_str(&error_response("gone", "bad \"thing\"")).unwrap();
        let (code, message) = error_of(&err).expect("typed error");
        assert_eq!(code, "gone");
        assert_eq!(message, "bad \"thing\"");
        let tricky = error_response("not_found", "no route GET /\u{7f}\n");
        let parsed: Value = serde_json::from_str(&tricky).unwrap();
        assert_eq!(
            error_of(&parsed).unwrap().1,
            "no route GET /\u{7f}\n".to_string()
        );
    }

    #[test]
    fn stats_and_topology_roundtrip_through_their_parsers() {
        let s = StatsSnapshot {
            snapshot: 3,
            published: 4,
            served: 10,
            served_legacy: 5,
            served_v1: 3,
            served_session: 2,
            batches: 7,
            queue: 1,
            sessions_live: 2,
            sessions_created: 6,
            session_appends: 9,
            sessions_expired: 1,
            sessions_evicted: 1,
            session_ttl_ms: 900_000,
            session_capacity: 4096,
            ready: true,
            queue_cap: 1024,
            shed_queue_full: 11,
            shed_expired: 12,
            shed_not_ready: 13,
            batcher_restarts: 2,
            request_timeout_ms: 10_000,
            chaos_injected_panics: 1,
            chaos_corrupted_publishes: 0,
        };
        // Flat rendering -> parse_stats is the identity.
        let flat: Value = serde_json::from_str(&stats_response(&s)).unwrap();
        let back = parse_stats(&flat).expect("flat stats parse");
        assert_eq!(format!("{back:?}"), format!("{s:?}"));
        // The v2 aggregate block parses with the same parser.
        let lane = LaneStats {
            lane: 1,
            snapshot: 3,
            ready: false,
            queue_depth: 2,
            queue_cap: 8,
            served: 5,
            batches: 4,
            shed_queue_full: 1,
            shed_expired: 0,
            shed_not_ready: 3,
            restarts: 2,
            sessions_live: 1,
            injected_panics: 2,
        };
        let v2: Value = serde_json::from_str(&stats_response_v2(&s, &[lane])).unwrap();
        let agg = parse_stats(v2.get("aggregate").unwrap()).expect("aggregate parse");
        assert_eq!(format!("{agg:?}"), format!("{s:?}"));
        let lanes = v2.get("lanes").and_then(Value::as_array).unwrap();
        let lane_back = parse_lane_stats(&lanes[0]).expect("lane parse");
        assert_eq!(format!("{lane_back:?}"), format!("{lane:?}"));

        // Merging sums counters, ANDs readiness, keeps config from `a`.
        let merged = merge_stats(&s, &back);
        assert_eq!(merged.served, 20);
        assert_eq!(merged.shed_not_ready, 26);
        assert_eq!(merged.queue_cap, 1024);
        assert!(merged.ready);
        let mut not_ready = s;
        not_ready.ready = false;
        assert!(!merge_stats(&s, &not_ready).ready);

        // Topology answers round-trip too.
        let rendered = topology_response(
            "router",
            4,
            "fnv1a64",
            0,
            2,
            &["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
        );
        let topo = parse_topology(&serde_json::from_str(&rendered).unwrap()).expect("topology");
        assert_eq!(topo.mode, "router");
        assert_eq!(topo.lanes, 4);
        assert_eq!(topo.shard_count, 2);
        assert_eq!(topo.backends, vec!["127.0.0.1:1", "127.0.0.1:2"]);
    }
}
