//! Fault injection for overload and crash-recovery testing.
//!
//! The chaos layer is compiled unconditionally but inert unless activated
//! through `TSPN_SERVE_FAULT_*` environment knobs (or CLI flags / direct
//! [`ChaosConfig`] construction in tests). It can make a flush panic on a
//! schedule, stretch every flush by a fixed latency (a deterministic way
//! to pin serving capacity for saturation tests), and corrupt checkpoints
//! *after* handler-side validation but before publication — proving the
//! batcher's own re-validation is what actually protects the serving
//! parameters.
//!
//! Injected faults flow through the exact production paths: an injected
//! panic unwinds through the batcher's `catch_unwind` and is repaired by
//! the same supervisor that handles a real model crash.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tspn_tensor::serialize::Checkpoint;

/// Which faults to inject, resolved once at server start.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Panic on every Nth flush (1 = every flush). `None` disables.
    pub flush_panic_every: Option<u64>,
    /// Stop injecting panics after this many (`None` = unlimited). Lets a
    /// test drive the server through a crash storm and then assert clean
    /// recovery once the storm ends.
    pub flush_panic_budget: Option<u64>,
    /// Added latency at the start of every flush. Serving capacity becomes
    /// ~`max_batch / flush_delay`, which makes "4× saturation" a number a
    /// test can compute instead of guess.
    pub flush_delay: Option<Duration>,
    /// Corrupt every published checkpoint (NaN poison) after the handler's
    /// validation passes. The batcher must refuse to apply it and keep
    /// serving its current parameters.
    pub corrupt_publish: bool,
    /// Restrict flush faults to one batcher lane (`None` = every lane).
    /// Lets a chaos drill kill a single lane and assert the other lanes
    /// keep serving their shards untouched.
    pub fault_lane: Option<usize>,
}

impl ChaosConfig {
    /// Reads the fault knobs from the environment:
    /// `TSPN_SERVE_FAULT_FLUSH_PANIC_EVERY`,
    /// `TSPN_SERVE_FAULT_FLUSH_PANIC_BUDGET`,
    /// `TSPN_SERVE_FAULT_FLUSH_DELAY_MS`,
    /// `TSPN_SERVE_FAULT_CORRUPT_PUBLISH` (`1`/`true`),
    /// `TSPN_SERVE_FAULT_LANE` (a lane index; faults then arm on that
    /// lane only). Unparseable values deactivate that knob — chaos must
    /// never be able to break a healthy boot.
    pub fn resolve(env: impl Fn(&str) -> Option<String>) -> ChaosConfig {
        let num = |key: &str| {
            env(key)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n >= 1)
        };
        let truthy = |key: &str| {
            env(key)
                .map(|v| {
                    let v = v.trim();
                    v == "1" || v.eq_ignore_ascii_case("true")
                })
                .unwrap_or(false)
        };
        ChaosConfig {
            flush_panic_every: num("TSPN_SERVE_FAULT_FLUSH_PANIC_EVERY"),
            flush_panic_budget: num("TSPN_SERVE_FAULT_FLUSH_PANIC_BUDGET"),
            flush_delay: num("TSPN_SERVE_FAULT_FLUSH_DELAY_MS").map(Duration::from_millis),
            corrupt_publish: truthy("TSPN_SERVE_FAULT_CORRUPT_PUBLISH"),
            // Lane 0 is a valid target, so this knob has no ≥1 filter.
            fault_lane: env("TSPN_SERVE_FAULT_LANE").and_then(|v| v.trim().parse().ok()),
        }
    }

    /// Whether any fault is armed.
    pub fn is_active(&self) -> bool {
        self.flush_panic_every.is_some() || self.flush_delay.is_some() || self.corrupt_publish
    }

    /// The config lane `lane` of a multi-lane server should arm: this one
    /// when unscoped or scoped to `lane`, otherwise inert. Publish
    /// corruption is process-wide (it happens before any lane sees the
    /// checkpoint), so it always survives the scoping.
    pub fn for_lane(&self, lane: usize) -> ChaosConfig {
        if self.fault_lane.is_none_or(|l| l == lane) {
            *self
        } else {
            ChaosConfig {
                corrupt_publish: self.corrupt_publish,
                ..ChaosConfig::default()
            }
        }
    }
}

/// Live fault-injection state shared between the batcher thread (flush
/// faults) and handler threads (publish corruption, stats).
#[derive(Debug, Default)]
pub struct Chaos {
    cfg: ChaosConfig,
    flushes: AtomicU64,
    injected_panics: AtomicU64,
    corrupted_publishes: AtomicU64,
}

/// Marker embedded in injected panic payloads so logs distinguish chaos
/// from a genuine model crash.
pub const INJECTED_PANIC_MARK: &str = "chaos: injected flush panic";

impl Chaos {
    /// Chaos state for the given (possibly inert) config.
    pub fn new(cfg: ChaosConfig) -> Self {
        Chaos {
            cfg,
            ..Chaos::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Called by the batcher at the top of every flush: applies the
    /// configured delay, then panics if this flush is scheduled to die and
    /// the panic budget is not exhausted.
    pub fn on_flush(&self) {
        if let Some(delay) = self.cfg.flush_delay {
            std::thread::sleep(delay);
        }
        let Some(every) = self.cfg.flush_panic_every else {
            return;
        };
        let flush = self.flushes.fetch_add(1, Ordering::Relaxed) + 1;
        if !flush.is_multiple_of(every) {
            return;
        }
        if let Some(budget) = self.cfg.flush_panic_budget {
            if self.injected_panics.load(Ordering::Relaxed) >= budget {
                return;
            }
        }
        self.injected_panics.fetch_add(1, Ordering::Relaxed);
        panic!("{INJECTED_PANIC_MARK} (flush {flush})");
    }

    /// Poisons a checkpoint about to be published, if configured. Returns
    /// `true` when corruption was applied (so the caller can log it).
    pub fn corrupt(&self, ckpt: &mut Checkpoint) -> bool {
        if !self.cfg.corrupt_publish {
            return false;
        }
        let Some(value) = ckpt.tensors.iter_mut().find_map(|t| t.data.first_mut()) else {
            return false;
        };
        *value = f32::NAN;
        self.corrupted_publishes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Total panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Total checkpoint publications poisoned so far.
    pub fn corrupted_publishes(&self) -> u64 {
        self.corrupted_publishes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_tensor::serialize::TensorRecord;

    #[test]
    fn resolve_parses_knobs_and_ignores_garbage() {
        let env = |k: &str| match k {
            "TSPN_SERVE_FAULT_FLUSH_PANIC_EVERY" => Some("3".to_string()),
            "TSPN_SERVE_FAULT_FLUSH_PANIC_BUDGET" => Some("2".to_string()),
            "TSPN_SERVE_FAULT_FLUSH_DELAY_MS" => Some("15".to_string()),
            "TSPN_SERVE_FAULT_CORRUPT_PUBLISH" => Some("true".to_string()),
            "TSPN_SERVE_FAULT_LANE" => Some("0".to_string()),
            _ => None,
        };
        let cfg = ChaosConfig::resolve(env);
        assert_eq!(cfg.flush_panic_every, Some(3));
        assert_eq!(cfg.flush_panic_budget, Some(2));
        assert_eq!(cfg.flush_delay, Some(Duration::from_millis(15)));
        assert!(cfg.corrupt_publish);
        assert_eq!(cfg.fault_lane, Some(0), "lane 0 is a valid fault target");
        assert!(cfg.is_active());
        // Scoped to lane 0: lane 0 arms everything, lane 1 keeps only the
        // process-wide publish corruption.
        assert_eq!(cfg.for_lane(0).flush_panic_every, Some(3));
        let other = cfg.for_lane(1);
        assert_eq!(other.flush_panic_every, None);
        assert_eq!(other.flush_delay, None);
        assert!(other.corrupt_publish);

        let bad = |k: &str| match k {
            "TSPN_SERVE_FAULT_FLUSH_PANIC_EVERY" => Some("0".to_string()),
            "TSPN_SERVE_FAULT_FLUSH_DELAY_MS" => Some("soon".to_string()),
            "TSPN_SERVE_FAULT_CORRUPT_PUBLISH" => Some("maybe".to_string()),
            _ => None,
        };
        let cfg = ChaosConfig::resolve(bad);
        assert!(!cfg.is_active(), "garbage knobs deactivate, never crash");
        assert!(!ChaosConfig::resolve(|_| None).is_active());
    }

    #[test]
    fn panic_schedule_honours_cadence_and_budget() {
        let chaos = Chaos::new(ChaosConfig {
            flush_panic_every: Some(2),
            flush_panic_budget: Some(2),
            ..ChaosConfig::default()
        });
        let mut died = Vec::new();
        for flush in 1..=8 {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaos.on_flush();
            }));
            if outcome.is_err() {
                died.push(flush);
            }
        }
        assert_eq!(died, vec![2, 4], "every 2nd flush dies until the budget");
        assert_eq!(chaos.injected_panics(), 2);
    }

    #[test]
    fn inert_chaos_does_nothing() {
        let chaos = Chaos::new(ChaosConfig::default());
        for _ in 0..16 {
            chaos.on_flush();
        }
        let mut ckpt = Checkpoint {
            tensors: vec![TensorRecord {
                name: "w".to_string(),
                shape: vec![1],
                data: vec![0.5],
            }],
        };
        assert!(!chaos.corrupt(&mut ckpt));
        assert_eq!(ckpt.tensors[0].data[0], 0.5);
    }

    #[test]
    fn corrupt_publish_poisons_the_first_value() {
        let chaos = Chaos::new(ChaosConfig {
            corrupt_publish: true,
            ..ChaosConfig::default()
        });
        let mut ckpt = Checkpoint {
            tensors: vec![TensorRecord {
                name: "w".to_string(),
                shape: vec![2],
                data: vec![0.5, 1.5],
            }],
        };
        assert!(chaos.corrupt(&mut ckpt));
        assert!(ckpt.tensors[0].data[0].is_nan());
        assert_eq!(chaos.corrupted_publishes(), 1);
    }
}
