//! The long-lived serving process: accept loop, per-connection handler
//! threads, the batcher thread that owns the model, and the admin
//! endpoints (checkpoint hot-swap, health, shutdown).
//!
//! ## Thread layout
//!
//! * **accept loop** — non-blocking `TcpListener` polled every few
//!   milliseconds so shutdown is prompt; one handler thread per
//!   connection (keep-alive, so a connection is a session, not a
//!   request).
//! * **handler threads** — parse requests, validate them against the
//!   dataset dimensions, enqueue [`tspn_core::Query`]s on the
//!   [`Batcher`] and block on their answer channel.
//! * **batcher thread** — owns the [`Predictor`] (the autodiff tape is
//!   `Rc`-based, so the model cannot migrate threads; it is *built* on
//!   this thread). Each flush first applies any newer published
//!   checkpoint, then answers the whole batch under that one snapshot —
//!   reloads can never mix parameters within a batch.
//!
//! Model parameters hot-swap via [`SnapshotHandle`]: `/admin/reload`
//! validates on the handler thread and publishes; the batcher applies at
//! the next flush boundary without blocking in-flight work.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use tspn_core::{Predictor, Query, SpatialContext, TspnConfig};
use tspn_tensor::serialize::Checkpoint;

use crate::batcher::{BatchConfig, Batcher, SubmitError};
use crate::http::{HttpConn, ReadOutcome, Request};
use crate::protocol;
use crate::snapshot::{validate_shapes, SnapshotHandle};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// Per-connection read timeout: the idle-poll granularity for
    /// shutdown checks on keep-alive connections.
    pub read_timeout: Duration,
    /// Default result-list truncation when a request omits `top`.
    pub default_top: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            read_timeout: Duration::from_millis(200),
            default_top: 10,
        }
    }
}

/// Largest accepted request body (the protocol's bodies are tiny).
const MAX_BODY: usize = 64 * 1024;

/// The stock serving model configuration (perf-snapshot scale, so a
/// default server boots in seconds on one CPU). The `tspn-serve` binary
/// and the `serve_bench` load generator both build exactly this model, so
/// a fresh server and a client-side reference predictor agree bitwise.
pub fn default_model_config() -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        attn_blocks: 1,
        hgat_layers: 1,
        top_k: 4,
        max_prefix: 6,
        max_history: 16,
        partition: tspn_core::Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 12,
        },
        ..TspnConfig::default()
    }
}

/// Resolves a preset name to its synthetic dataset configuration — the
/// one name-to-dataset mapping the `tspn-serve` binary and `serve_bench`
/// both use (they must agree bitwise for the smoke checks).
pub fn preset_dataset_config(name: &str, scale: f64) -> Option<tspn_data::synth::SynthConfig> {
    use tspn_data::presets;
    match name {
        "nyc" => Some(presets::nyc_mini(scale)),
        "tky" => Some(presets::tky_mini(scale)),
        "california" => Some(presets::california_mini(scale)),
        "florida" => Some(presets::florida_mini(scale)),
        _ => None,
    }
}

/// How long a handler waits for its batch to be answered before giving up
/// with a 503 (covers a wedged or heavily backlogged batcher).
const ANSWER_TIMEOUT: Duration = Duration::from_secs(30);

/// Serving counters surfaced by `/healthz`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Successfully answered `/predict` requests.
    pub served: AtomicU64,
    /// Flushed batches.
    pub batches: AtomicU64,
}

/// State shared by every thread of one server.
struct Shared {
    batcher: Batcher,
    snapshots: SnapshotHandle,
    /// The parameter version the batcher is actually serving (trails the
    /// published version until the next flush boundary applies it).
    applied: AtomicU64,
    shutdown: AtomicBool,
    stats: ServeStats,
    /// Visits per `(user, trajectory)` — request validation without
    /// touching the (thread-pinned) model.
    traj_lens: Vec<Vec<usize>>,
    /// Expected parameter names/shapes for reload validation; filled by
    /// the batcher thread once the model is built.
    expected_shapes: OnceLock<Vec<(String, Vec<usize>)>>,
    default_k: usize,
    default_top: usize,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or let `/admin/shutdown` or a signal set
/// the flag) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (real port even when configured with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once shutdown has been requested from any path (admin
    /// endpoint, signal handler, or [`ServerHandle::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown (idempotent): the accept loop stops, keep-alive
    /// handlers finish their in-flight request and exit, queued
    /// predictions still flush.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the server has fully stopped (requires
    /// [`ServerHandle::shutdown`] to have been requested, otherwise this
    /// waits for an external trigger such as `/admin/shutdown`).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

/// Builds the model **on the batcher thread** (the tape is `Rc`-based and
/// thread-pinned) and starts serving. Blocks until the model is ready and
/// the listener is bound, so a returned handle is immediately usable.
///
/// `initial` optionally loads a checkpoint over the freshly initialised
/// parameters before the first request is accepted.
///
/// # Errors
/// Bind failures, or a rejected initial checkpoint.
pub fn start(
    cfg: ServerConfig,
    model_cfg: TspnConfig,
    ctx: SpatialContext,
    initial: Option<Checkpoint>,
) -> Result<ServerHandle, String> {
    let traj_lens = ctx
        .dataset
        .users
        .iter()
        .map(|u| u.trajectories.iter().map(|t| t.visits.len()).collect())
        .collect();
    let shared = Arc::new(Shared {
        batcher: Batcher::new(cfg.batch),
        snapshots: SnapshotHandle::new(),
        applied: AtomicU64::new(crate::snapshot::BOOT_VERSION),
        shutdown: AtomicBool::new(false),
        stats: ServeStats::default(),
        traj_lens,
        expected_shapes: OnceLock::new(),
        default_k: model_cfg.top_k,
        default_top: cfg.default_top,
    });

    // Build the predictor on its home thread; hand back readiness (or the
    // initial-checkpoint error) before any socket accepts traffic.
    let (ready_tx, ready_rx) = mpsc::sync_channel::<Result<(), String>>(1);
    let batcher_thread = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("tspn-serve-batcher".to_string())
            .spawn(move || batcher_main(shared, model_cfg, ctx, initial, ready_tx))
            .map_err(|e| format!("spawn batcher: {e}"))?
    };
    ready_rx
        .recv()
        .map_err(|_| "batcher thread died during startup".to_string())??;

    let listener = TcpListener::bind(&cfg.addr).map_err(|e| {
        shared.shutdown.store(true, Ordering::Release);
        shared.batcher.close();
        format!("bind {}: {e}", cfg.addr)
    })?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let accept_thread = {
        let shared = Arc::clone(&shared);
        let read_timeout = cfg.read_timeout;
        std::thread::Builder::new()
            .name("tspn-serve-accept".to_string())
            .spawn(move || accept_main(shared, listener, read_timeout))
            .map_err(|e| format!("spawn accept loop: {e}"))?
    };

    Ok(ServerHandle {
        shared,
        local_addr,
        accept_thread: Some(accept_thread),
        batcher_thread: Some(batcher_thread),
    })
}

/// The batcher thread: build the model, publish readiness, serve batches,
/// applying newer checkpoints only at flush boundaries.
fn batcher_main(
    shared: Arc<Shared>,
    model_cfg: TspnConfig,
    ctx: SpatialContext,
    initial: Option<Checkpoint>,
    ready_tx: mpsc::SyncSender<Result<(), String>>,
) {
    let predictor = Predictor::new(model_cfg, ctx);
    if let Some(ckpt) = initial {
        if let Err(e) = predictor.load_checkpoint(&ckpt) {
            let _ = ready_tx.send(Err(format!("initial checkpoint rejected: {e}")));
            return;
        }
    }
    let expected = predictor
        .model()
        .named_params()
        .iter()
        .map(|(name, t)| (name.clone(), t.shape().0.clone()))
        .collect();
    shared
        .expected_shapes
        .set(expected)
        .expect("expected_shapes set once");
    let _ = ready_tx.send(Ok(()));

    let mut applied = shared.snapshots.version();
    shared.batcher.run_loop(|queries| {
        // Hot-swap boundary: at most one snapshot per batch, applied
        // before any query of the batch runs.
        if let Some(published) = shared.snapshots.newer_than(applied) {
            match predictor.load_checkpoint(&published.checkpoint) {
                Ok(()) => {
                    applied = published.version;
                    shared.applied.store(applied, Ordering::Release);
                }
                // Published checkpoints were validated against the same
                // shape table, so this is unreachable in practice; keep
                // the old parameters rather than take the server down.
                Err(e) => eprintln!("tspn-serve: published checkpoint rejected: {e}"),
            }
        }
        let answers = predictor.predict_batch(queries);
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        (answers, applied)
    });
}

/// The accept loop: poll-accept so the shutdown flag is honoured within
/// milliseconds, one handler thread per connection, joined on the way out.
fn accept_main(shared: Arc<Shared>, listener: TcpListener, read_timeout: Duration) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(read_timeout));
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("tspn-serve-conn".to_string())
                    .spawn(move || handle_connection(shared, stream));
                if let Ok(handle) = handle {
                    let mut guard = handlers.lock().expect("handler registry");
                    // Opportunistically reap finished handlers so a
                    // long-lived server does not accumulate join handles.
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Shutdown: handlers observe the flag within one read timeout; the
    // batcher drains queued work before its loop exits.
    for handle in handlers.into_inner().expect("handler registry") {
        let _ = handle.join();
    }
    shared.batcher.close();
}

/// One keep-alive connection: requests in, JSON out, until close/shutdown.
fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let mut conn = HttpConn::new(stream);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn.read_request(MAX_BODY) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Request(req)) => {
                let (status, body) = route(&shared, &req);
                // Decide keep-alive *after* routing so a request that
                // itself triggers shutdown is answered `Connection:
                // close` instead of promising a session we then drop.
                let keep = req.keep_alive && !shared.shutdown.load(Ordering::Acquire);
                if conn.respond(status, &body, keep).is_err() || !keep {
                    return;
                }
            }
            Err(e) => {
                conn.reject(400, &format!("bad request: {e}"));
                return;
            }
        }
    }
}

/// Dispatches one request to its endpoint.
fn route(shared: &Shared, req: &Request) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => predict(shared, &req.body),
        ("GET", "/healthz") => (
            200,
            protocol::health_response(
                shared.applied.load(Ordering::Acquire),
                shared.snapshots.version(),
                shared.stats.served.load(Ordering::Relaxed),
                shared.stats.batches.load(Ordering::Relaxed),
                shared.batcher.queue_len(),
            ),
        ),
        ("POST", "/admin/reload") => reload(shared, &req.body),
        ("POST", "/admin/shutdown") => {
            shared.shutdown.store(true, Ordering::Release);
            (200, "{\"ok\":true}".to_string())
        }
        _ => (
            404,
            protocol::error_response(&format!("no route {} {}", req.method, req.path)),
        ),
    }
}

/// `POST /predict`: validate, enqueue, await the batched answer.
fn predict(shared: &Shared, body: &[u8]) -> (u16, String) {
    let parsed = match protocol::parse_predict(body) {
        Ok(p) => p,
        Err(e) => return (400, protocol::error_response(&e)),
    };
    let sample = parsed.sample;
    let servable = shared
        .traj_lens
        .get(sample.user_index)
        .and_then(|u| u.get(sample.traj_index))
        .is_some_and(|&len| sample.prefix_len >= 1 && sample.prefix_len <= len);
    if !servable {
        return (
            400,
            protocol::error_response(&format!(
                "no servable history at user {} trajectory {} prefix {}",
                sample.user_index, sample.traj_index, sample.prefix_len
            )),
        );
    }
    let k = parsed.k.unwrap_or(shared.default_k).max(1);
    let top = parsed.top.unwrap_or(shared.default_top).max(1);
    let query = Query::with_top(sample, k, top);
    let rx = match shared.batcher.submit(query) {
        Ok(rx) => rx,
        Err(SubmitError::Closed) => {
            return (503, protocol::error_response("server shutting down"));
        }
    };
    match rx.recv_timeout(ANSWER_TIMEOUT) {
        Ok(answered) => {
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            (
                200,
                protocol::predict_response(&answered.topk, answered.snapshot, answered.batch),
            )
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            (503, protocol::error_response("prediction timed out"))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            (500, protocol::error_response("prediction batch failed"))
        }
    }
}

/// `POST /admin/reload`: load + validate on this thread, then publish for
/// the batcher to apply at its next flush boundary.
fn reload(shared: &Shared, body: &[u8]) -> (u16, String) {
    let path = match protocol::parse_reload(body) {
        Ok(p) => p,
        Err(e) => return (400, protocol::error_response(&e)),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return (
                400,
                protocol::error_response(&format!("cannot read {path:?}: {e}")),
            );
        }
    };
    let ckpt: Checkpoint = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            return (
                400,
                protocol::error_response(&format!("cannot parse checkpoint {path:?}: {e}")),
            );
        }
    };
    let expected = shared
        .expected_shapes
        .get()
        .expect("set before the listener binds");
    if let Err(e) = validate_shapes(&ckpt, expected) {
        return (
            400,
            protocol::error_response(&format!("checkpoint rejected: {e}")),
        );
    }
    let version = shared.snapshots.publish(ckpt);
    (200, format!("{{\"ok\":true,\"snapshot\":{version}}}"))
}
