//! The long-lived serving process: an event-driven connection
//! multiplexer ([`crate::mux`]) in front of N user-sharded **batcher
//! lanes**, plus the admin endpoints (checkpoint hot-swap, health,
//! shutdown).
//!
//! ## Thread layout
//!
//! * **mux thread** — owns every client socket behind one `poll` loop;
//!   connections are poll entries, not threads. Complete requests are
//!   handed to a bounded worker pool whose handlers parse, validate, and
//!   block on their lane's answer channel.
//! * **lane threads** (one per lane) — each owns a full [`Predictor`]
//!   replica (the autodiff tape is `Rc`-based, so a model cannot migrate
//!   threads; it is *built* on its lane thread). Each flush first applies
//!   any newer published checkpoint, then answers the whole batch under
//!   that one snapshot — reloads can never mix parameters within a batch.
//!
//! ## Lanes and sharding
//!
//! Work is partitioned by user with the fleet-wide hash
//! ([`crate::shard`]): session traffic and legacy index-addressed
//! requests shard on the user index, ad-hoc `/v1/predict` payloads on
//! request content. Every lane is an independent failure domain — its own
//! bounded admission queue, supervisor, circuit breaker, chaos scope, and
//! session-store partition (a user's session state never crosses lanes).
//! Session ids are stride-partitioned (`first = shard + lane·shards + 1`,
//! `stride = shards·lanes`) so an id names its owning backend *and* lane,
//! and lanes never issue colliding ids.
//!
//! Model parameters hot-swap via [`SnapshotHandle`]: `/admin/reload`
//! validates on a worker thread and publishes once; every lane applies at
//! its next flush boundary without blocking in-flight work.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tspn_core::{Predictor, Query, SpatialContext, TspnConfig};
use tspn_data::{AdHocTrajectory, UserId, Visit, DEFAULT_GAP_SECS};
use tspn_tensor::serialize::Checkpoint;

use crate::batcher::{BatchConfig, Batcher, LoopExit, SubmitError, Verdict};
use crate::chaos::{Chaos, ChaosConfig};
use crate::http::Request;
use crate::mux::{self, MuxConfig, MuxResponse};
use crate::protocol::{self, ApiError, LaneStats};
use crate::session::{SessionConfig, SessionError, SessionStore};
use crate::shard::{self, IdPartition, SHARD_FN_ID};
use crate::snapshot::{validate_shapes, SnapshotHandle};

/// Circuit-breaker policy for a lane's batcher supervisor: `threshold`
/// panics within `window` flip that lane not-ready; it recovers
/// `cooldown` after the trip. Each lane trips independently — one broken
/// lane sheds only its own shard of users.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Panics within the window that open the breaker.
    pub threshold: u32,
    /// Sliding window over which panics are counted.
    pub window: Duration,
    /// How long the breaker stays open once tripped.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            window: Duration::from_secs(30),
            cooldown: Duration::from_secs(5),
        }
    }
}

impl BreakerConfig {
    /// Resolves the breaker knobs from `TSPN_SERVE_BREAKER_THRESHOLD`,
    /// `TSPN_SERVE_BREAKER_WINDOW_MS`, and
    /// `TSPN_SERVE_BREAKER_COOLDOWN_MS`; unparseable (or zero) values
    /// keep their defaults.
    pub fn resolve(env: impl Fn(&str) -> Option<String>) -> BreakerConfig {
        let default = BreakerConfig::default();
        let num = |key: &str| {
            env(key)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n >= 1)
        };
        BreakerConfig {
            threshold: num("TSPN_SERVE_BREAKER_THRESHOLD")
                .map(|n| n as u32)
                .unwrap_or(default.threshold),
            window: num("TSPN_SERVE_BREAKER_WINDOW_MS")
                .map(Duration::from_millis)
                .unwrap_or(default.window),
            cooldown: num("TSPN_SERVE_BREAKER_COOLDOWN_MS")
                .map(Duration::from_millis)
                .unwrap_or(default.cooldown),
        }
    }
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// Micro-batching knobs, applied **per lane** (each lane runs its own
    /// admission queue of `queue_cap`).
    pub batch: BatchConfig,
    /// Session-store knobs, applied **per lane** (capacity is per
    /// partition).
    pub session: SessionConfig,
    /// Retained knob from the thread-per-connection era; the multiplexer
    /// polls readiness on a fixed tick instead of blocking reads, so this
    /// no longer affects serving.
    pub read_timeout: Duration,
    /// A buffered response making no write progress for this long means a
    /// dead or malicious peer; the connection is dropped.
    pub write_timeout: Duration,
    /// Default per-request deadline budget (requests may override per
    /// call with the `x-tspn-deadline-ms` header, clamped to
    /// [`MAX_DEADLINE_MS`]).
    pub request_timeout: Duration,
    /// Default result-list truncation when a request omits `top`.
    pub default_top: usize,
    /// Per-lane batcher-supervisor circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Fault injection (inert by default); flush faults can be scoped to
    /// one lane via [`ChaosConfig::fault_lane`].
    pub chaos: ChaosConfig,
    /// Batcher lanes (model replicas). Users are pinned to lanes by the
    /// fleet-wide shard hash; 1 reproduces the single-batcher layout.
    pub lanes: usize,
    /// This process's shard index within a routed fleet (0 standalone).
    pub shard_index: usize,
    /// Fleet size when running behind the router (1 standalone).
    pub shard_count: usize,
    /// Multiplexer worker threads (the handler-side concurrency bound).
    pub io_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            session: SessionConfig::default(),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
            default_top: 10,
            breaker: BreakerConfig::default(),
            chaos: ChaosConfig::default(),
            lanes: 1,
            shard_index: 0,
            shard_count: 1,
            io_workers: MuxConfig::default().workers,
        }
    }
}

/// Largest accepted request body (the protocol's bodies are tiny).
const MAX_BODY: usize = 64 * 1024;

/// The stock serving model configuration (perf-snapshot scale, so a
/// default server boots in seconds on one CPU). The `tspn-serve` binary
/// and the `serve_bench` load generator both build exactly this model, so
/// a fresh server and a client-side reference predictor agree bitwise.
pub fn default_model_config() -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        attn_blocks: 1,
        hgat_layers: 1,
        top_k: 4,
        max_prefix: 6,
        max_history: 16,
        partition: tspn_core::Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 12,
        },
        ..TspnConfig::default()
    }
}

/// Resolves a preset name to its synthetic dataset configuration — the
/// one name-to-dataset mapping the `tspn-serve` binary and `serve_bench`
/// both use (they must agree bitwise for the smoke checks).
pub fn preset_dataset_config(name: &str, scale: f64) -> Option<tspn_data::synth::SynthConfig> {
    use tspn_data::presets;
    match name {
        "nyc" => Some(presets::nyc_mini(scale)),
        "tky" => Some(presets::tky_mini(scale)),
        "california" => Some(presets::california_mini(scale)),
        "florida" => Some(presets::florida_mini(scale)),
        _ => None,
    }
}

/// Upper clamp on a client-supplied deadline budget: a huge header value
/// must not let one request camp in the queue for minutes.
pub const MAX_DEADLINE_MS: u64 = 60_000;

/// Extra wait past a request's deadline for a flush that already picked
/// the query up — the flush may legitimately finish a little late, and an
/// answer that exists is better than a spurious timeout.
const FLUSH_GRACE: Duration = Duration::from_secs(5);

/// `Retry-After` seconds attached to shed responses (429/503).
const RETRY_AFTER_SECS: u64 = 1;

/// How long the multiplexer keeps draining open connections after
/// shutdown before dropping them (covers the worst-case in-flight wait:
/// the deadline clamp plus the flush grace is minutes only for abusive
/// header values; real traffic drains in seconds).
const DRAIN_GRACE: Duration = Duration::from_secs(30);

/// Process-wide serving counters surfaced by `/healthz` and `/v1/stats`.
/// The served total is not stored — it is the sum of the three
/// per-endpoint counters, computed at render time so the "counters
/// partition the total" invariant holds by construction. (Per-lane
/// ledgers live on each [`Lane`]; these split the same totals by
/// *endpoint* instead of by lane.)
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Legacy `POST /predict` answers.
    pub served_legacy: AtomicU64,
    /// `POST /v1/predict` answers.
    pub served_v1: AtomicU64,
    /// `POST /v1/sessions/{id}/predict` answers.
    pub served_session: AtomicU64,
    /// Successful session-append calls.
    pub session_appends: AtomicU64,
}

/// Overload / failure-recovery state of one lane.
struct Overload {
    /// Requests refused with 429 because the admission queue was full.
    shed_queue_full: AtomicU64,
    /// Requests refused with 503 while draining or breaker-open.
    shed_not_ready: AtomicU64,
    /// Supervisor restarts of the batcher after a panic.
    batcher_restarts: AtomicU64,
    /// Breaker-open deadline in milliseconds since `epoch`; 0 = closed.
    breaker_until_ms: AtomicU64,
    /// Time base for `breaker_until_ms` (an `Instant`, so wall-clock
    /// jumps cannot reopen or extend the breaker).
    epoch: Instant,
}

impl Overload {
    fn new() -> Self {
        Overload {
            shed_queue_full: AtomicU64::new(0),
            shed_not_ready: AtomicU64::new(0),
            batcher_restarts: AtomicU64::new(0),
            breaker_until_ms: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    fn breaker_open(&self) -> bool {
        let until = self.breaker_until_ms.load(Ordering::Acquire);
        until != 0 && (self.epoch.elapsed().as_millis() as u64) < until
    }

    fn trip_breaker(&self, cooldown: Duration) {
        let until = (self.epoch.elapsed() + cooldown).as_millis() as u64;
        self.breaker_until_ms.store(until.max(1), Ordering::Release);
    }
}

/// One batcher lane: an independent failure domain owning a model
/// replica (on its thread), a bounded admission queue, a session-store
/// partition, and its own breaker/chaos/ledger state.
struct Lane {
    index: usize,
    batcher: Batcher,
    /// The parameter version this lane's model is actually serving
    /// (trails the published version until the next flush boundary).
    applied: AtomicU64,
    /// This lane's session partition (ids stride-partitioned so no two
    /// lanes — or two backends — ever issue the same id).
    sessions: SessionStore,
    /// Flush-fault injection scoped to this lane.
    chaos: Chaos,
    overload: Overload,
    /// Flushed batches on this lane.
    batches: AtomicU64,
    /// Predictions answered through this lane (all endpoints).
    served: AtomicU64,
}

/// State shared by every thread of one server.
struct Shared {
    lanes: Vec<Lane>,
    snapshots: SnapshotHandle,
    shutdown: Arc<AtomicBool>,
    stats: ServeStats,
    /// 503 sheds at the door while draining (before lane resolution).
    shed_draining: AtomicU64,
    /// Reload-path fault injection (checkpoint poisoning is process-wide:
    /// there is one publication stream, not one per lane).
    publish_chaos: Chaos,
    /// Visits per `(user, trajectory)` — legacy request validation without
    /// touching the (thread-pinned) models.
    traj_lens: Vec<Vec<usize>>,
    /// POI vocabulary size — payload validation without the model.
    num_pois: usize,
    /// Expected parameter names/shapes for reload validation; filled by
    /// the first lane thread to build its model (replicas agree).
    expected_shapes: OnceLock<Vec<(String, Vec<usize>)>>,
    default_k: usize,
    default_top: usize,
    /// Default per-request deadline budget.
    request_timeout: Duration,
    /// Configured per-lane admission-queue depth (for stats).
    queue_cap: usize,
    shard_index: usize,
    shard_count: usize,
}

impl Shared {
    fn lane_for_user(&self, user: usize) -> &Lane {
        &self.lanes[shard::shard_of_user(user, self.lanes.len())]
    }

    fn lane_for_content(&self, user: usize, checkins: &[Visit]) -> &Lane {
        &self.lanes[shard::shard_of_content(user, checkins, self.lanes.len())]
    }

    fn lane_for_session_id(&self, id: u64) -> &Lane {
        &self.lanes
            [shard::lane_of_session_id(id, self.shard_index, self.shard_count, self.lanes.len())]
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or let `/admin/shutdown` or a signal set
/// the flag) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    mux_thread: Option<JoinHandle<()>>,
    lane_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (real port even when configured with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once shutdown has been requested from any path (admin
    /// endpoint, signal handler, or [`ServerHandle::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown (idempotent): the multiplexer stops accepting,
    /// in-flight requests finish, queued predictions still flush.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the server has fully stopped (requires
    /// [`ServerHandle::shutdown`] to have been requested, otherwise this
    /// waits for an external trigger such as `/admin/shutdown`).
    pub fn join(mut self) {
        if let Some(t) = self.mux_thread.take() {
            let _ = t.join();
        }
        for t in self.lane_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Builds one model replica **per lane, on that lane's thread** (the tape
/// is `Rc`-based and thread-pinned) and starts serving. Blocks until
/// every lane's model is ready and the listener is bound, so a returned
/// handle is immediately usable.
///
/// `initial` optionally loads a checkpoint over the freshly initialised
/// parameters of every lane before the first request is accepted.
///
/// # Errors
/// Bind failures, or a rejected initial checkpoint.
pub fn start(
    cfg: ServerConfig,
    model_cfg: TspnConfig,
    ctx: SpatialContext,
    initial: Option<Checkpoint>,
) -> Result<ServerHandle, String> {
    let lanes_n = cfg.lanes.max(1);
    let shard_count = cfg.shard_count.max(1);
    let traj_lens = ctx
        .dataset
        .users
        .iter()
        .map(|u| u.trajectories.iter().map(|t| t.visits.len()).collect())
        .collect();
    let num_pois = ctx.dataset.pois.len();
    let lanes = (0..lanes_n)
        .map(|l| {
            let ids = IdPartition::new(cfg.shard_index, shard_count, l, lanes_n);
            Lane {
                index: l,
                // Batch ids only need process-wide uniqueness (the
                // hot-swap tests key on them), so lanes tile 1-based.
                batcher: Batcher::with_ids(cfg.batch, l as u64 + 1, lanes_n as u64),
                applied: AtomicU64::new(crate::snapshot::BOOT_VERSION),
                sessions: SessionStore::with_ids(cfg.session, ids.first, ids.stride),
                chaos: Chaos::new(cfg.chaos.for_lane(l)),
                overload: Overload::new(),
                batches: AtomicU64::new(0),
                served: AtomicU64::new(0),
            }
        })
        .collect();
    let shared = Arc::new(Shared {
        lanes,
        snapshots: SnapshotHandle::new(),
        shutdown: Arc::new(AtomicBool::new(false)),
        stats: ServeStats::default(),
        shed_draining: AtomicU64::new(0),
        publish_chaos: Chaos::new(cfg.chaos),
        traj_lens,
        num_pois,
        expected_shapes: OnceLock::new(),
        default_k: model_cfg.top_k,
        default_top: cfg.default_top,
        request_timeout: cfg.request_timeout,
        queue_cap: cfg.batch.queue_cap,
        shard_index: cfg.shard_index,
        shard_count,
    });

    // Build each replica on its home thread; hand back readiness (or the
    // initial-checkpoint error) before any socket accepts traffic.
    let mut ctx = Some(ctx);
    let mut lane_threads = Vec::with_capacity(lanes_n);
    let mut readies = Vec::with_capacity(lanes_n);
    for l in 0..lanes_n {
        let (ready_tx, ready_rx) = mpsc::sync_channel::<Result<(), String>>(1);
        // The loop consumes `ctx` exactly on the last lane, so both arms
        // are infallible; a typed error still beats bringing down startup
        // with a panic if that invariant ever drifts.
        let lane_ctx = if l + 1 == lanes_n {
            ctx.take()
                .ok_or_else(|| format!("lane {l}: serving context already consumed"))?
        } else {
            ctx.as_ref()
                .ok_or_else(|| format!("lane {l}: serving context missing"))?
                .clone()
        };
        let shared = Arc::clone(&shared);
        let model_cfg = model_cfg.clone();
        let initial = initial.clone();
        let breaker = cfg.breaker;
        lane_threads.push(
            std::thread::Builder::new()
                .name(format!("tspn-serve-lane-{l}"))
                .spawn(move || {
                    lane_main(shared, l, model_cfg, lane_ctx, initial, ready_tx, breaker)
                })
                .map_err(|e| format!("spawn lane {l}: {e}"))?,
        );
        readies.push(ready_rx);
    }
    for (l, rx) in readies.into_iter().enumerate() {
        if let Err(e) = rx
            .recv()
            .map_err(|_| format!("lane {l} thread died during startup"))
            .and_then(|r| r)
        {
            shared.shutdown.store(true, Ordering::Release);
            for lane in &shared.lanes {
                lane.batcher.close();
            }
            return Err(e);
        }
    }

    let listener = TcpListener::bind(&cfg.addr).map_err(|e| {
        shared.shutdown.store(true, Ordering::Release);
        for lane in &shared.lanes {
            lane.batcher.close();
        }
        format!("bind {}: {e}", cfg.addr)
    })?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;

    let mux_cfg = MuxConfig {
        max_body: MAX_BODY,
        workers: cfg.io_workers.max(1),
        write_timeout: cfg.write_timeout,
        drain_grace: DRAIN_GRACE,
    };
    let handler: Arc<mux::Handler> = {
        let shared = Arc::clone(&shared);
        Arc::new(move |req: &Request| respond(&shared, req))
    };
    let mux_thread = {
        let shared = Arc::clone(&shared);
        let flag = Arc::clone(&shared.shutdown);
        std::thread::Builder::new()
            .name("tspn-serve-mux".to_string())
            .spawn(move || {
                if let Err(e) = mux::run(listener, mux_cfg, flag, handler) {
                    eprintln!("tspn-serve: multiplexer failed: {e}");
                    shared.shutdown.store(true, Ordering::Release);
                }
                // Connections are drained; lanes may now run their queues
                // dry and exit.
                for lane in &shared.lanes {
                    lane.batcher.close();
                }
            })
            .map_err(|e| format!("spawn multiplexer: {e}"))?
    };

    Ok(ServerHandle {
        shared,
        local_addr,
        mux_thread: Some(mux_thread),
        lane_threads,
    })
}

/// A lane thread: build the model replica, publish readiness, then run
/// the serve loop **under supervision**. A panicked flush fails only its
/// own batch; the supervisor rebuilds the model over the same spatial
/// context, restores the last good (published or boot) checkpoint, counts
/// the crash against this lane's circuit breaker, and re-enters the loop
/// — queued requests keep their places throughout, and other lanes never
/// notice.
fn lane_main(
    shared: Arc<Shared>,
    lane_idx: usize,
    model_cfg: TspnConfig,
    ctx: SpatialContext,
    initial: Option<Checkpoint>,
    ready_tx: mpsc::SyncSender<Result<(), String>>,
    breaker: BreakerConfig,
) {
    let lane = &shared.lanes[lane_idx];
    let mut predictor = Predictor::new(model_cfg, ctx);
    if let Some(ckpt) = initial {
        if let Err(e) = predictor.load_checkpoint(&ckpt) {
            let _ = ready_tx.send(Err(format!("initial checkpoint rejected: {e}")));
            return;
        }
    }
    let expected: Vec<(String, Vec<usize>)> = predictor
        .model()
        .named_params()
        .iter()
        .map(|(name, t)| (name.clone(), t.shape().0.clone()))
        .collect();
    // Replicas share one config, so whichever lane gets here first pins
    // the shape table everyone validates reloads against.
    let _ = shared.expected_shapes.set(expected);
    let _ = ready_tx.send(Ok(()));

    // The crash-recovery restore point: the parameters currently being
    // served (boot or the last successfully applied publication).
    let mut last_good: Checkpoint = predictor.save();
    let mut applied = shared.snapshots.version();
    // Newest published version that failed validation model-side; tracked
    // so a poisoned publication is rejected once, not re-tried per flush.
    let mut rejected = 0u64;
    let mut panic_times: VecDeque<Instant> = VecDeque::new();
    loop {
        let exit = lane.batcher.run_supervised(|queries| {
            // Hot-swap boundary: at most one snapshot per batch, applied
            // before any query of the batch runs.
            if let Some(published) = shared.snapshots.newer_than(applied.max(rejected)) {
                match predictor.load_checkpoint(&published.checkpoint) {
                    Ok(()) => {
                        applied = published.version;
                        lane.applied.store(applied, Ordering::Release);
                        last_good = published.checkpoint.clone();
                    }
                    // Publications were validated against the same shape
                    // table, so outside fault injection this is
                    // unreachable; keep the old parameters rather than
                    // take the lane down.
                    Err(e) => {
                        rejected = published.version;
                        eprintln!(
                            "tspn-serve: lane {lane_idx}: published checkpoint rejected: {e}"
                        );
                    }
                }
            }
            lane.chaos.on_flush();
            let answers = predictor.predict_batch(queries);
            lane.batches.fetch_add(1, Ordering::Relaxed);
            (answers, applied)
        });
        match exit {
            LoopExit::Drained => return,
            LoopExit::Panicked => {
                let restarts = lane
                    .overload
                    .batcher_restarts
                    .fetch_add(1, Ordering::Relaxed)
                    + 1;
                eprintln!(
                    "tspn-serve: lane {lane_idx}: batcher flush panicked (restart #{restarts}); \
                     rebuilding model from last good checkpoint"
                );
                predictor = predictor.rebuild();
                if let Err(e) = predictor.load_checkpoint(&last_good) {
                    // Unreachable: `last_good` loaded successfully once.
                    eprintln!("tspn-serve: lane {lane_idx}: post-crash restore failed: {e}");
                }
                let now = Instant::now();
                panic_times.push_back(now);
                while panic_times
                    .front()
                    .is_some_and(|&t| now.duration_since(t) > breaker.window)
                {
                    panic_times.pop_front();
                }
                if panic_times.len() as u32 >= breaker.threshold {
                    lane.overload.trip_breaker(breaker.cooldown);
                    panic_times.clear();
                    eprintln!(
                        "tspn-serve: lane {lane_idx}: circuit breaker open for {:?} \
                         after {} crashes in {:?}",
                        breaker.cooldown, breaker.threshold, breaker.window
                    );
                }
            }
        }
    }
}

/// The multiplexer's route handler (runs on mux worker threads).
///
/// During shutdown a request that arrives before the socket closes gets a
/// typed `503 shutting_down` (with `Retry-After`) rather than a reset —
/// a draining server is explicit about it, so clients can fail over.
fn respond(shared: &Shared, req: &Request) -> MuxResponse {
    if shared.draining() {
        shared.shed_draining.fetch_add(1, Ordering::Relaxed);
        let (status, body) =
            ApiError::shutting_down("server is draining; connection closing").render();
        return MuxResponse {
            status,
            body,
            retry_after: Some(RETRY_AFTER_SECS),
            close: true,
        };
    }
    let (status, body) = route(shared, req);
    // Decide keep-alive *after* routing so a request that itself triggers
    // shutdown is answered `Connection: close` instead of promising a
    // session we then drop.
    let close = shared.draining();
    // Shed responses carry `Retry-After` so well-behaved clients back off
    // instead of hammering a full queue.
    let retry_after = (status == 429 || status == 503).then_some(RETRY_AFTER_SECS);
    MuxResponse {
        status,
        body,
        retry_after,
        close,
    }
}

/// One resolved endpoint (routing decided; body not yet parsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    LegacyPredict,
    Healthz,
    V1Predict,
    V1Stats,
    V1Topology,
    SessionCreate,
    SessionGet(u64),
    SessionDelete(u64),
    SessionAppend(u64),
    SessionPredict(u64),
    AdminReload,
    AdminShutdown,
}

/// Resolves `(method, path)` to a route with correct HTTP hygiene: an
/// unknown path is `404 not_found`, a known path with the wrong verb is
/// `405 method_not_allowed`. The path arrives with its query string
/// already split off.
fn route_of(method: &str, path: &str) -> Result<Route, ApiError> {
    use Route::*;
    let allow = |allowed: &[(&str, Route)]| -> Result<Route, ApiError> {
        allowed
            .iter()
            .find(|(m, _)| *m == method)
            .map(|&(_, r)| r)
            .ok_or_else(|| {
                let verbs: Vec<&str> = allowed.iter().map(|(m, _)| *m).collect();
                ApiError::method_not_allowed(format!(
                    "{method} not allowed on {path} (allowed: {})",
                    verbs.join(", ")
                ))
            })
    };
    match path {
        "/predict" => return allow(&[("POST", LegacyPredict)]),
        "/healthz" => return allow(&[("GET", Healthz)]),
        "/v1/predict" => return allow(&[("POST", V1Predict)]),
        "/v1/stats" => return allow(&[("GET", V1Stats)]),
        "/v1/topology" => return allow(&[("GET", V1Topology)]),
        "/v1/sessions" => return allow(&[("POST", SessionCreate)]),
        "/admin/reload" => return allow(&[("POST", AdminReload)]),
        "/admin/shutdown" => return allow(&[("POST", AdminShutdown)]),
        _ => {}
    }
    if let Some(rest) = path.strip_prefix("/v1/sessions/") {
        let mut parts = rest.splitn(2, '/');
        let id_segment = parts.next().unwrap_or("");
        if let Some(id) = protocol::parse_session_id(id_segment) {
            return match parts.next() {
                None => allow(&[("GET", SessionGet(id)), ("DELETE", SessionDelete(id))]),
                Some("checkins") => allow(&[("POST", SessionAppend(id))]),
                Some("predict") => allow(&[("POST", SessionPredict(id))]),
                Some(_) => Err(ApiError::not_found(format!("no route {method} {path}"))),
            };
        }
    }
    Err(ApiError::not_found(format!("no route {method} {path}")))
}

/// True when a query string (already split off the path) asks for the
/// pre-v2 flat stats rendering.
pub(crate) fn wants_flat(query: &str) -> bool {
    query.split('&').any(|kv| kv == "flat=1")
}

/// Dispatches one request to its endpoint. Prediction routes carry a
/// per-request deadline: the `x-tspn-deadline-ms` budget when the client
/// sent one (clamped to [`MAX_DEADLINE_MS`]), the configured default
/// otherwise.
fn route(shared: &Shared, req: &Request) -> (u16, String) {
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let resolved = match route_of(&req.method, path) {
        Ok(r) => r,
        Err(e) => return e.render(),
    };
    let budget_ms = req
        .deadline_ms
        .unwrap_or(shared.request_timeout.as_millis() as u64)
        .clamp(1, MAX_DEADLINE_MS);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    match resolved {
        Route::LegacyPredict => predict_legacy(shared, &req.body, deadline),
        Route::Healthz => (200, protocol::health_response(&stats_snapshot(shared))),
        Route::V1Predict => answer(v1_predict(shared, &req.body, deadline)),
        Route::V1Stats => {
            let s = stats_snapshot(shared);
            if wants_flat(query) {
                (200, protocol::stats_response(&s))
            } else {
                (200, protocol::stats_response_v2(&s, &lane_stats(shared)))
            }
        }
        Route::V1Topology => {
            let mode = if shared.shard_count > 1 {
                "backend"
            } else {
                "single"
            };
            (
                200,
                protocol::topology_response(
                    mode,
                    shared.lanes.len(),
                    SHARD_FN_ID,
                    shared.shard_index,
                    shared.shard_count,
                    &[],
                ),
            )
        }
        Route::SessionCreate => answer(session_create(shared, &req.body)),
        Route::SessionGet(id) => answer(session_get(shared, id)),
        Route::SessionDelete(id) => answer(session_delete(shared, id)),
        Route::SessionAppend(id) => answer(session_append(shared, id, &req.body)),
        Route::SessionPredict(id) => answer(session_predict(shared, id, &req.body, deadline)),
        Route::AdminReload => reload(shared, &req.body),
        Route::AdminShutdown => {
            shared.shutdown.store(true, Ordering::Release);
            (200, "{\"ok\":true}".to_string())
        }
    }
}

/// Collapses a handler's typed-error result into the wire pair.
fn answer(result: Result<(u16, String), ApiError>) -> (u16, String) {
    result.unwrap_or_else(|e| e.render())
}

/// Gathers the aggregate ledger `/healthz` and both stats renderings
/// report: per-lane counters summed, `snapshot` the newest version any
/// lane serves, `ready` only when **every** lane is (a tripped lane
/// still sheds its own shard even while the aggregate reads not-ready).
fn stats_snapshot(shared: &Shared) -> protocol::StatsSnapshot {
    let served_legacy = shared.stats.served_legacy.load(Ordering::Relaxed);
    let served_v1 = shared.stats.served_v1.load(Ordering::Relaxed);
    let served_session = shared.stats.served_session.load(Ordering::Relaxed);
    let mut snapshot = 0u64;
    let mut queue = 0usize;
    let mut batches = 0u64;
    let mut shed_queue_full = 0u64;
    let mut shed_expired = 0u64;
    let mut shed_not_ready = shared.shed_draining.load(Ordering::Relaxed);
    let mut restarts = 0u64;
    let mut injected_panics = 0u64;
    let mut all_ready = true;
    let mut live = 0usize;
    let mut created = 0u64;
    let mut expired = 0u64;
    let mut evicted = 0u64;
    for lane in &shared.lanes {
        snapshot = snapshot.max(lane.applied.load(Ordering::Acquire));
        queue += lane.batcher.queue_len();
        batches += lane.batches.load(Ordering::Relaxed);
        shed_queue_full += lane.overload.shed_queue_full.load(Ordering::Relaxed);
        shed_expired += lane.batcher.shed_expired_total();
        shed_not_ready += lane.overload.shed_not_ready.load(Ordering::Relaxed);
        restarts += lane.overload.batcher_restarts.load(Ordering::Relaxed);
        injected_panics += lane.chaos.injected_panics();
        all_ready &= !lane.overload.breaker_open();
        let s = lane.sessions.stats();
        live += s.live;
        created += s.created;
        expired += s.expired;
        evicted += s.evicted;
    }
    let session_cfg = shared.lanes[0].sessions.config();
    protocol::StatsSnapshot {
        snapshot,
        published: shared.snapshots.version(),
        served: served_legacy + served_v1 + served_session,
        served_legacy,
        served_v1,
        served_session,
        batches,
        queue,
        ready: !shared.draining() && all_ready,
        queue_cap: shared.queue_cap,
        shed_queue_full,
        shed_expired,
        shed_not_ready,
        batcher_restarts: restarts,
        request_timeout_ms: shared.request_timeout.as_millis() as u64,
        chaos_injected_panics: injected_panics,
        chaos_corrupted_publishes: shared.publish_chaos.corrupted_publishes(),
        sessions_live: live,
        sessions_created: created,
        session_appends: shared.stats.session_appends.load(Ordering::Relaxed),
        sessions_expired: expired,
        sessions_evicted: evicted,
        session_ttl_ms: session_cfg.ttl.as_millis() as u64,
        session_capacity: session_cfg.max_sessions,
    }
}

/// The per-lane rows of the v2 stats answer.
fn lane_stats(shared: &Shared) -> Vec<LaneStats> {
    let draining = shared.draining();
    shared
        .lanes
        .iter()
        .map(|lane| LaneStats {
            lane: lane.index,
            snapshot: lane.applied.load(Ordering::Acquire),
            ready: !draining && !lane.overload.breaker_open(),
            queue_depth: lane.batcher.queue_len(),
            queue_cap: shared.queue_cap,
            served: lane.served.load(Ordering::Relaxed),
            batches: lane.batches.load(Ordering::Relaxed),
            shed_queue_full: lane.overload.shed_queue_full.load(Ordering::Relaxed),
            shed_expired: lane.batcher.shed_expired_total(),
            shed_not_ready: lane.overload.shed_not_ready.load(Ordering::Relaxed),
            restarts: lane.overload.batcher_restarts.load(Ordering::Relaxed),
            sessions_live: lane.sessions.stats().live,
            injected_panics: lane.chaos.injected_panics(),
        })
        .collect()
}

/// The shared enqueue-and-await tail of every predict flavor: by the time
/// a query reaches here the address mode is already resolved and its lane
/// chosen, so legacy, payload, and session predictions ride the same
/// batcher path (and mix freely within one flush of their lane).
fn predict_common(
    shared: &Shared,
    lane: &Lane,
    query: Query,
    endpoint_counter: &AtomicU64,
    deadline: Instant,
) -> (u16, String) {
    if shared.draining() {
        lane.overload.shed_not_ready.fetch_add(1, Ordering::Relaxed);
        return ApiError::shutting_down("server is draining").render();
    }
    if lane.overload.breaker_open() {
        lane.overload.shed_not_ready.fetch_add(1, Ordering::Relaxed);
        return ApiError::not_ready(format!(
            "lane {} circuit breaker open after repeated batch crashes",
            lane.index
        ))
        .render();
    }
    let rx = match lane.batcher.try_submit(query, Some(deadline)) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            lane.overload
                .shed_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return ApiError::overloaded(format!("lane {} admission queue is full", lane.index))
                .render();
        }
        Err(SubmitError::Closed) => {
            return ApiError::shutting_down("server is draining").render();
        }
    };
    // Wait a bounded grace past the deadline: the batcher already drops
    // queued-and-expired entries, so a late answer here means the flush
    // picked the query up in time and simply ran long.
    let wait = deadline.saturating_duration_since(Instant::now()) + FLUSH_GRACE;
    match rx.recv_timeout(wait) {
        Ok(Verdict::Answered(answered)) => {
            endpoint_counter.fetch_add(1, Ordering::Relaxed);
            lane.served.fetch_add(1, Ordering::Relaxed);
            (
                200,
                protocol::predict_response(&answered.topk, answered.snapshot, answered.batch),
            )
        }
        Ok(Verdict::Expired) | Err(mpsc::RecvTimeoutError::Timeout) => {
            ApiError::deadline_exceeded("request deadline exceeded before the batch ran").render()
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            ApiError::internal("prediction batch crashed; retry after the supervisor restarts it")
                .render()
        }
    }
}

/// `POST /predict` — the legacy index-addressed endpoint, now a thin
/// adapter: it resolves its `(user, traj, prefix_len)` triple to an
/// indexed [`Query`], pins the lane by user, and rides the same
/// [`predict_common`] path as the v1 endpoints. Statuses keep the
/// original contract (any violation is `400`, and `k`/`top` of 0 are
/// clamped, not rejected).
fn predict_legacy(shared: &Shared, body: &[u8], deadline: Instant) -> (u16, String) {
    let parsed = match protocol::parse_predict(body) {
        Ok(p) => p,
        Err(e) => return e.render(),
    };
    let sample = parsed.sample;
    let servable = shared
        .traj_lens
        .get(sample.user_index)
        .and_then(|u| u.get(sample.traj_index))
        .is_some_and(|&len| sample.prefix_len >= 1 && sample.prefix_len <= len);
    if !servable {
        return ApiError::bad_request(format!(
            "no servable history at user {} trajectory {} prefix {}",
            sample.user_index, sample.traj_index, sample.prefix_len
        ))
        .render();
    }
    let k = parsed.k.unwrap_or(shared.default_k).max(1);
    let top = parsed.top.unwrap_or(shared.default_top).max(1);
    let lane = shared.lane_for_user(sample.user_index);
    let query = Query::with_top(sample, k, top);
    predict_common(shared, lane, query, &shared.stats.served_legacy, deadline)
}

/// Validates every POI of a payload against the vocabulary (the bound
/// check itself is [`tspn_data::first_invalid_poi`], shared with
/// `Subject::validate` so the rule has one definition).
fn check_vocabulary(shared: &Shared, visits: &[Visit]) -> Result<(), ApiError> {
    match tspn_data::first_invalid_poi(visits, shared.num_pois) {
        Some(i) => Err(ApiError::unprocessable(format!(
            "checkin {i} names POI {} outside the vocabulary (0..{})",
            visits[i].poi.0, shared.num_pois
        ))),
        None => Ok(()),
    }
}

/// Builds the payload-addressed query the v1 predict flavors submit. The
/// caller guarantees every POI is inside the vocabulary (checked at
/// request parse time for `/v1/predict`, at create/append time for
/// session state — a session predict never re-scans its visits).
fn adhoc_query(
    shared: &Shared,
    user: usize,
    checkins: &[Visit],
    k: Option<usize>,
    top: Option<usize>,
) -> Result<Query, ApiError> {
    let trajectory = AdHocTrajectory::from_checkins(UserId(user), checkins, DEFAULT_GAP_SECS)
        .map_err(|e| ApiError::unprocessable(e.to_string()))?;
    Ok(Query::adhoc(
        Arc::new(trajectory),
        k.unwrap_or(shared.default_k),
        top.unwrap_or(shared.default_top),
    ))
}

/// `POST /v1/predict`: run the model directly on the supplied check-in
/// sequence. Stateless payloads shard on request content (user + visits),
/// so repeated identical requests batch on one lane while the overall
/// flow spreads.
fn v1_predict(shared: &Shared, body: &[u8], deadline: Instant) -> Result<(u16, String), ApiError> {
    let req = protocol::parse_v1_predict(body)?;
    check_vocabulary(shared, &req.checkins)?;
    let lane = shared.lane_for_content(req.user, &req.checkins);
    let query = adhoc_query(shared, req.user, &req.checkins, req.k, req.top)?;
    Ok(predict_common(
        shared,
        lane,
        query,
        &shared.stats.served_v1,
        deadline,
    ))
}

/// Maps a store failure for session `id` onto the typed error model.
fn session_error(id: u64, e: SessionError) -> ApiError {
    match e {
        SessionError::Unknown => {
            ApiError::not_found(format!("session \"s{id}\" was never created"))
        }
        SessionError::Gone => {
            ApiError::gone(format!("session \"s{id}\" has expired or been deleted"))
        }
        SessionError::Unordered(i) => ApiError::unprocessable(format!(
            "checkin {i} is earlier than the session's newest visit"
        )),
    }
}

/// `POST /v1/sessions`: create a session on the user's lane, optionally
/// seeding check-ins. The seeded create is a single atomic store
/// operation — an invalid seed issues no id, and no racing eviction can
/// strand the seed. The issued id encodes the lane (and shard), so every
/// later call on it lands back on the same partition.
fn session_create(shared: &Shared, body: &[u8]) -> Result<(u16, String), ApiError> {
    let req = protocol::parse_session_create(body)?;
    check_vocabulary(shared, &req.checkins)?;
    let lane = shared.lane_for_user(req.user);
    let (id, count) = lane
        .sessions
        .create(req.user, &req.checkins)
        .map_err(|e| match e {
            SessionError::Unordered(i) => {
                ApiError::unprocessable(format!("checkin {i} is earlier than its predecessor"))
            }
            other => session_error(0, other),
        })?;
    let ttl_ms = lane.sessions.config().ttl.as_millis() as u64;
    Ok((
        200,
        protocol::session_created_response(id, req.user, count, ttl_ms),
    ))
}

/// `POST /v1/sessions/{id}/checkins`: append observed visits.
fn session_append(shared: &Shared, id: u64, body: &[u8]) -> Result<(u16, String), ApiError> {
    let checkins = protocol::parse_session_append(body)?;
    check_vocabulary(shared, &checkins)?;
    let lane = shared.lane_for_session_id(id);
    let total = lane
        .sessions
        .append(id, &checkins)
        .map_err(|e| session_error(id, e))?;
    shared.stats.session_appends.fetch_add(1, Ordering::Relaxed);
    Ok((200, protocol::session_append_response(id, total)))
}

/// `POST /v1/sessions/{id}/predict`: predict from the accumulated state,
/// on the lane the id encodes (session state and its predictions share a
/// lane by construction).
fn session_predict(
    shared: &Shared,
    id: u64,
    body: &[u8],
    deadline: Instant,
) -> Result<(u16, String), ApiError> {
    let (k, top) = protocol::parse_predict_opts(body)?;
    let lane = shared.lane_for_session_id(id);
    let (user, visits) = lane
        .sessions
        .snapshot(id)
        .map_err(|e| session_error(id, e))?;
    if visits.is_empty() {
        return Err(ApiError::unprocessable(format!(
            "session \"s{id}\" has no check-ins to predict from"
        )));
    }
    let query = adhoc_query(shared, user, &visits, k, top)?;
    Ok(predict_common(
        shared,
        lane,
        query,
        &shared.stats.served_session,
        deadline,
    ))
}

/// `GET /v1/sessions/{id}`: session state (does not refresh the TTL).
fn session_get(shared: &Shared, id: u64) -> Result<(u16, String), ApiError> {
    let lane = shared.lane_for_session_id(id);
    let info = lane.sessions.info(id).map_err(|e| session_error(id, e))?;
    Ok((
        200,
        protocol::session_info_response(id, info.user, info.checkins, info.idle_ms),
    ))
}

/// `DELETE /v1/sessions/{id}`: end a session (it reports `410` after).
fn session_delete(shared: &Shared, id: u64) -> Result<(u16, String), ApiError> {
    let lane = shared.lane_for_session_id(id);
    lane.sessions.delete(id).map_err(|e| session_error(id, e))?;
    Ok((200, "{\"ok\":true}".to_string()))
}

/// `POST /admin/reload`: load + validate on this thread, then publish
/// once; every lane applies at its next flush boundary.
fn reload(shared: &Shared, body: &[u8]) -> (u16, String) {
    let path = match protocol::parse_reload(body) {
        Ok(p) => p,
        Err(e) => return e.render(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return ApiError::bad_request(format!("cannot read {path:?}: {e}")).render();
        }
    };
    let ckpt: Checkpoint = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            return ApiError::bad_request(format!("cannot parse checkpoint {path:?}: {e}"))
                .render();
        }
    };
    // Set before the listener binds; answer 500 instead of killing the
    // connection thread if a future refactor reorders startup.
    let Some(expected) = shared.expected_shapes.get() else {
        return ApiError::internal("server shape registry not initialised").render();
    };
    if let Err(e) = validate_shapes(&ckpt, expected) {
        return ApiError::bad_request(format!("checkpoint rejected: {e}")).render();
    }
    // Fault injection: poison the checkpoint *after* this handler's
    // validation passed, so each lane's own re-validation is what must
    // catch it (and does — they keep serving the old parameters).
    let mut ckpt = ckpt;
    if shared.publish_chaos.corrupt(&mut ckpt) {
        eprintln!("tspn-serve: chaos poisoned published checkpoint");
    }
    let version = shared.snapshots.publish(ckpt);
    (200, format!("{{\"ok\":true,\"snapshot\":{version}}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_distinguishes_unknown_paths_from_wrong_methods() {
        // Known paths with the right verb resolve.
        assert_eq!(route_of("POST", "/predict"), Ok(Route::LegacyPredict));
        assert_eq!(route_of("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route_of("POST", "/v1/predict"), Ok(Route::V1Predict));
        assert_eq!(route_of("GET", "/v1/stats"), Ok(Route::V1Stats));
        assert_eq!(route_of("GET", "/v1/topology"), Ok(Route::V1Topology));
        assert_eq!(route_of("POST", "/v1/sessions"), Ok(Route::SessionCreate));
        assert_eq!(route_of("POST", "/admin/reload"), Ok(Route::AdminReload));

        // Known paths with the wrong verb are 405, never 404.
        for (method, path) in [
            ("GET", "/predict"),
            ("POST", "/healthz"),
            ("DELETE", "/v1/predict"),
            ("POST", "/v1/stats"),
            ("POST", "/v1/topology"),
            ("GET", "/v1/sessions"),
            ("GET", "/admin/shutdown"),
            ("POST", "/v1/sessions/s1"),
            ("GET", "/v1/sessions/s1/checkins"),
            ("DELETE", "/v1/sessions/s1/predict"),
        ] {
            let err = route_of(method, path).unwrap_err();
            assert_eq!(err.status, 405, "{method} {path} should be 405");
            assert_eq!(err.code, "method_not_allowed");
        }

        // Unknown paths are 404 for any verb.
        for (method, path) in [
            ("GET", "/nope"),
            ("POST", "/v1"),
            ("POST", "/v1/session"),
            ("POST", "/v1/sessions/"),
            ("POST", "/v1/sessions/notanid/predict"),
            ("POST", "/v1/sessions/s1/nope"),
            ("POST", "/v1/sessions/s1/predict/extra"),
        ] {
            let err = route_of(method, path).unwrap_err();
            assert_eq!(err.status, 404, "{method} {path} should be 404");
            assert_eq!(err.code, "not_found");
        }
    }

    #[test]
    fn session_routes_carry_their_id() {
        assert_eq!(route_of("GET", "/v1/sessions/s7"), Ok(Route::SessionGet(7)));
        assert_eq!(
            route_of("DELETE", "/v1/sessions/s7"),
            Ok(Route::SessionDelete(7))
        );
        assert_eq!(
            route_of("POST", "/v1/sessions/s12/checkins"),
            Ok(Route::SessionAppend(12))
        );
        assert_eq!(
            route_of("POST", "/v1/sessions/s12/predict"),
            Ok(Route::SessionPredict(12))
        );
    }

    #[test]
    fn flat_query_flag_is_detected_exactly() {
        assert!(wants_flat("flat=1"));
        assert!(wants_flat("a=b&flat=1"));
        assert!(!wants_flat(""));
        assert!(!wants_flat("flat=0"));
        assert!(!wants_flat("deflate=1"));
    }
}
