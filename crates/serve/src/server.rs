//! The long-lived serving process: accept loop, per-connection handler
//! threads, the batcher thread that owns the model, and the admin
//! endpoints (checkpoint hot-swap, health, shutdown).
//!
//! ## Thread layout
//!
//! * **accept loop** — non-blocking `TcpListener` polled every few
//!   milliseconds so shutdown is prompt; one handler thread per
//!   connection (keep-alive, so a connection is a session, not a
//!   request).
//! * **handler threads** — parse requests, validate them against the
//!   dataset dimensions, enqueue [`tspn_core::Query`]s on the
//!   [`Batcher`] and block on their answer channel.
//! * **batcher thread** — owns the [`Predictor`] (the autodiff tape is
//!   `Rc`-based, so the model cannot migrate threads; it is *built* on
//!   this thread). Each flush first applies any newer published
//!   checkpoint, then answers the whole batch under that one snapshot —
//!   reloads can never mix parameters within a batch.
//!
//! Model parameters hot-swap via [`SnapshotHandle`]: `/admin/reload`
//! validates on the handler thread and publishes; the batcher applies at
//! the next flush boundary without blocking in-flight work.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tspn_core::{Predictor, Query, SpatialContext, TspnConfig};
use tspn_data::{AdHocTrajectory, UserId, Visit, DEFAULT_GAP_SECS};
use tspn_tensor::serialize::Checkpoint;

use crate::batcher::{BatchConfig, Batcher, LoopExit, SubmitError, Verdict};
use crate::chaos::{Chaos, ChaosConfig};
use crate::http::{HttpConn, ReadError, ReadOutcome, Request};
use crate::protocol::{self, ApiError};
use crate::session::{SessionConfig, SessionError, SessionStore};
use crate::snapshot::{validate_shapes, SnapshotHandle};

/// Circuit-breaker policy for the batcher supervisor: `threshold` panics
/// within `window` flip the server not-ready; it recovers `cooldown`
/// after the trip.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Panics within the window that open the breaker.
    pub threshold: u32,
    /// Sliding window over which panics are counted.
    pub window: Duration,
    /// How long the breaker stays open once tripped.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            window: Duration::from_secs(30),
            cooldown: Duration::from_secs(5),
        }
    }
}

impl BreakerConfig {
    /// Resolves the breaker knobs from `TSPN_SERVE_BREAKER_THRESHOLD`,
    /// `TSPN_SERVE_BREAKER_WINDOW_MS`, and
    /// `TSPN_SERVE_BREAKER_COOLDOWN_MS`; unparseable (or zero) values
    /// keep their defaults.
    pub fn resolve(env: impl Fn(&str) -> Option<String>) -> BreakerConfig {
        let default = BreakerConfig::default();
        let num = |key: &str| {
            env(key)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n >= 1)
        };
        BreakerConfig {
            threshold: num("TSPN_SERVE_BREAKER_THRESHOLD")
                .map(|n| n as u32)
                .unwrap_or(default.threshold),
            window: num("TSPN_SERVE_BREAKER_WINDOW_MS")
                .map(Duration::from_millis)
                .unwrap_or(default.window),
            cooldown: num("TSPN_SERVE_BREAKER_COOLDOWN_MS")
                .map(Duration::from_millis)
                .unwrap_or(default.cooldown),
        }
    }
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// Micro-batching knobs (including the admission-queue depth).
    pub batch: BatchConfig,
    /// Session-store knobs (TTL, capacity).
    pub session: SessionConfig,
    /// Per-connection read timeout: the idle-poll granularity for
    /// shutdown checks on keep-alive connections.
    pub read_timeout: Duration,
    /// Per-connection write timeout: a peer that stops draining its
    /// socket cannot pin a handler thread past this.
    pub write_timeout: Duration,
    /// Default per-request deadline budget (requests may override per
    /// call with the `x-tspn-deadline-ms` header, clamped to
    /// [`MAX_DEADLINE_MS`]).
    pub request_timeout: Duration,
    /// Default result-list truncation when a request omits `top`.
    pub default_top: usize,
    /// Batcher-supervisor circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Fault injection (inert by default).
    pub chaos: ChaosConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            session: SessionConfig::default(),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
            default_top: 10,
            breaker: BreakerConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }
}

/// Largest accepted request body (the protocol's bodies are tiny).
const MAX_BODY: usize = 64 * 1024;

/// The stock serving model configuration (perf-snapshot scale, so a
/// default server boots in seconds on one CPU). The `tspn-serve` binary
/// and the `serve_bench` load generator both build exactly this model, so
/// a fresh server and a client-side reference predictor agree bitwise.
pub fn default_model_config() -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        attn_blocks: 1,
        hgat_layers: 1,
        top_k: 4,
        max_prefix: 6,
        max_history: 16,
        partition: tspn_core::Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 12,
        },
        ..TspnConfig::default()
    }
}

/// Resolves a preset name to its synthetic dataset configuration — the
/// one name-to-dataset mapping the `tspn-serve` binary and `serve_bench`
/// both use (they must agree bitwise for the smoke checks).
pub fn preset_dataset_config(name: &str, scale: f64) -> Option<tspn_data::synth::SynthConfig> {
    use tspn_data::presets;
    match name {
        "nyc" => Some(presets::nyc_mini(scale)),
        "tky" => Some(presets::tky_mini(scale)),
        "california" => Some(presets::california_mini(scale)),
        "florida" => Some(presets::florida_mini(scale)),
        _ => None,
    }
}

/// Upper clamp on a client-supplied deadline budget: a huge header value
/// must not let one request camp in the queue for minutes.
pub const MAX_DEADLINE_MS: u64 = 60_000;

/// Extra wait past a request's deadline for a flush that already picked
/// the query up — the flush may legitimately finish a little late, and an
/// answer that exists is better than a spurious timeout.
const FLUSH_GRACE: Duration = Duration::from_secs(5);

/// `Retry-After` seconds attached to shed responses (429/503).
const RETRY_AFTER_SECS: u64 = 1;

/// Serving counters surfaced by `/healthz` and `/v1/stats`. The served
/// total is not stored — it is the sum of the three per-endpoint
/// counters, computed at render time so the "counters partition the
/// total" invariant holds by construction.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Flushed batches.
    pub batches: AtomicU64,
    /// Legacy `POST /predict` answers.
    pub served_legacy: AtomicU64,
    /// `POST /v1/predict` answers.
    pub served_v1: AtomicU64,
    /// `POST /v1/sessions/{id}/predict` answers.
    pub served_session: AtomicU64,
    /// Successful session-append calls.
    pub session_appends: AtomicU64,
}

/// Overload / failure-recovery state shared across threads.
struct Overload {
    /// Requests refused with 429 because the admission queue was full.
    shed_queue_full: AtomicU64,
    /// Requests refused with 503 while draining or breaker-open.
    shed_not_ready: AtomicU64,
    /// Supervisor restarts of the batcher after a panic.
    batcher_restarts: AtomicU64,
    /// Breaker-open deadline in milliseconds since `epoch`; 0 = closed.
    breaker_until_ms: AtomicU64,
    /// Time base for `breaker_until_ms` (an `Instant`, so wall-clock
    /// jumps cannot reopen or extend the breaker).
    epoch: Instant,
}

impl Overload {
    fn new() -> Self {
        Overload {
            shed_queue_full: AtomicU64::new(0),
            shed_not_ready: AtomicU64::new(0),
            batcher_restarts: AtomicU64::new(0),
            breaker_until_ms: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    fn breaker_open(&self) -> bool {
        let until = self.breaker_until_ms.load(Ordering::Acquire);
        until != 0 && (self.epoch.elapsed().as_millis() as u64) < until
    }

    fn trip_breaker(&self, cooldown: Duration) {
        let until = (self.epoch.elapsed() + cooldown).as_millis() as u64;
        self.breaker_until_ms.store(until.max(1), Ordering::Release);
    }
}

/// State shared by every thread of one server.
struct Shared {
    batcher: Batcher,
    snapshots: SnapshotHandle,
    /// The parameter version the batcher is actually serving (trails the
    /// published version until the next flush boundary applies it).
    applied: AtomicU64,
    shutdown: AtomicBool,
    stats: ServeStats,
    overload: Overload,
    chaos: Chaos,
    /// The per-user session state behind the stateful v1 flow.
    sessions: SessionStore,
    /// Visits per `(user, trajectory)` — legacy request validation without
    /// touching the (thread-pinned) model.
    traj_lens: Vec<Vec<usize>>,
    /// POI vocabulary size — payload validation without the model.
    num_pois: usize,
    /// Expected parameter names/shapes for reload validation; filled by
    /// the batcher thread once the model is built.
    expected_shapes: OnceLock<Vec<(String, Vec<usize>)>>,
    default_k: usize,
    default_top: usize,
    /// Default per-request deadline budget.
    request_timeout: Duration,
    /// Configured admission-queue depth (for stats).
    queue_cap: usize,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or let `/admin/shutdown` or a signal set
/// the flag) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (real port even when configured with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once shutdown has been requested from any path (admin
    /// endpoint, signal handler, or [`ServerHandle::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown (idempotent): the accept loop stops, keep-alive
    /// handlers finish their in-flight request and exit, queued
    /// predictions still flush.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the server has fully stopped (requires
    /// [`ServerHandle::shutdown`] to have been requested, otherwise this
    /// waits for an external trigger such as `/admin/shutdown`).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
    }
}

/// Builds the model **on the batcher thread** (the tape is `Rc`-based and
/// thread-pinned) and starts serving. Blocks until the model is ready and
/// the listener is bound, so a returned handle is immediately usable.
///
/// `initial` optionally loads a checkpoint over the freshly initialised
/// parameters before the first request is accepted.
///
/// # Errors
/// Bind failures, or a rejected initial checkpoint.
pub fn start(
    cfg: ServerConfig,
    model_cfg: TspnConfig,
    ctx: SpatialContext,
    initial: Option<Checkpoint>,
) -> Result<ServerHandle, String> {
    let traj_lens = ctx
        .dataset
        .users
        .iter()
        .map(|u| u.trajectories.iter().map(|t| t.visits.len()).collect())
        .collect();
    let num_pois = ctx.dataset.pois.len();
    let shared = Arc::new(Shared {
        batcher: Batcher::new(cfg.batch),
        snapshots: SnapshotHandle::new(),
        applied: AtomicU64::new(crate::snapshot::BOOT_VERSION),
        shutdown: AtomicBool::new(false),
        stats: ServeStats::default(),
        overload: Overload::new(),
        chaos: Chaos::new(cfg.chaos),
        sessions: SessionStore::new(cfg.session),
        traj_lens,
        num_pois,
        expected_shapes: OnceLock::new(),
        default_k: model_cfg.top_k,
        default_top: cfg.default_top,
        request_timeout: cfg.request_timeout,
        queue_cap: cfg.batch.queue_cap,
    });

    // Build the predictor on its home thread; hand back readiness (or the
    // initial-checkpoint error) before any socket accepts traffic.
    let (ready_tx, ready_rx) = mpsc::sync_channel::<Result<(), String>>(1);
    let batcher_thread = {
        let shared = Arc::clone(&shared);
        let breaker = cfg.breaker;
        std::thread::Builder::new()
            .name("tspn-serve-batcher".to_string())
            .spawn(move || batcher_main(shared, model_cfg, ctx, initial, ready_tx, breaker))
            .map_err(|e| format!("spawn batcher: {e}"))?
    };
    ready_rx
        .recv()
        .map_err(|_| "batcher thread died during startup".to_string())??;

    let listener = TcpListener::bind(&cfg.addr).map_err(|e| {
        shared.shutdown.store(true, Ordering::Release);
        shared.batcher.close();
        format!("bind {}: {e}", cfg.addr)
    })?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let accept_thread = {
        let shared = Arc::clone(&shared);
        let read_timeout = cfg.read_timeout;
        let write_timeout = cfg.write_timeout;
        std::thread::Builder::new()
            .name("tspn-serve-accept".to_string())
            .spawn(move || accept_main(shared, listener, read_timeout, write_timeout))
            .map_err(|e| format!("spawn accept loop: {e}"))?
    };

    Ok(ServerHandle {
        shared,
        local_addr,
        accept_thread: Some(accept_thread),
        batcher_thread: Some(batcher_thread),
    })
}

/// The batcher thread: build the model, publish readiness, then run the
/// serve loop **under supervision**. A panicked flush fails only its own
/// batch; the supervisor rebuilds the model over the same spatial context,
/// restores the last good (published or boot) checkpoint, counts the
/// crash against the circuit breaker, and re-enters the loop — queued
/// requests keep their places throughout.
fn batcher_main(
    shared: Arc<Shared>,
    model_cfg: TspnConfig,
    ctx: SpatialContext,
    initial: Option<Checkpoint>,
    ready_tx: mpsc::SyncSender<Result<(), String>>,
    breaker: BreakerConfig,
) {
    let mut predictor = Predictor::new(model_cfg, ctx);
    if let Some(ckpt) = initial {
        if let Err(e) = predictor.load_checkpoint(&ckpt) {
            let _ = ready_tx.send(Err(format!("initial checkpoint rejected: {e}")));
            return;
        }
    }
    let expected = predictor
        .model()
        .named_params()
        .iter()
        .map(|(name, t)| (name.clone(), t.shape().0.clone()))
        .collect();
    shared
        .expected_shapes
        .set(expected)
        .expect("expected_shapes set once");
    let _ = ready_tx.send(Ok(()));

    // The crash-recovery restore point: the parameters currently being
    // served (boot or the last successfully applied publication).
    let mut last_good: Checkpoint = predictor.save();
    let mut applied = shared.snapshots.version();
    // Newest published version that failed validation model-side; tracked
    // so a poisoned publication is rejected once, not re-tried per flush.
    let mut rejected = 0u64;
    let mut panic_times: VecDeque<Instant> = VecDeque::new();
    loop {
        let exit = shared.batcher.run_supervised(|queries| {
            // Hot-swap boundary: at most one snapshot per batch, applied
            // before any query of the batch runs.
            if let Some(published) = shared.snapshots.newer_than(applied.max(rejected)) {
                match predictor.load_checkpoint(&published.checkpoint) {
                    Ok(()) => {
                        applied = published.version;
                        shared.applied.store(applied, Ordering::Release);
                        last_good = published.checkpoint.clone();
                    }
                    // Publications were validated against the same shape
                    // table, so outside fault injection this is
                    // unreachable; keep the old parameters rather than
                    // take the server down.
                    Err(e) => {
                        rejected = published.version;
                        eprintln!("tspn-serve: published checkpoint rejected: {e}");
                    }
                }
            }
            shared.chaos.on_flush();
            let answers = predictor.predict_batch(queries);
            shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            (answers, applied)
        });
        match exit {
            LoopExit::Drained => return,
            LoopExit::Panicked => {
                let restarts = shared
                    .overload
                    .batcher_restarts
                    .fetch_add(1, Ordering::Relaxed)
                    + 1;
                eprintln!(
                    "tspn-serve: batcher flush panicked (restart #{restarts}); \
                     rebuilding model from last good checkpoint"
                );
                predictor = predictor.rebuild();
                if let Err(e) = predictor.load_checkpoint(&last_good) {
                    // Unreachable: `last_good` loaded successfully once.
                    eprintln!("tspn-serve: post-crash restore failed: {e}");
                }
                let now = Instant::now();
                panic_times.push_back(now);
                while panic_times
                    .front()
                    .is_some_and(|&t| now.duration_since(t) > breaker.window)
                {
                    panic_times.pop_front();
                }
                if panic_times.len() as u32 >= breaker.threshold {
                    shared.overload.trip_breaker(breaker.cooldown);
                    panic_times.clear();
                    eprintln!(
                        "tspn-serve: circuit breaker open for {:?} after {} crashes in {:?}",
                        breaker.cooldown, breaker.threshold, breaker.window
                    );
                }
            }
        }
    }
}

/// The accept loop: poll-accept so the shutdown flag is honoured within
/// milliseconds, one handler thread per connection, joined on the way out.
fn accept_main(
    shared: Arc<Shared>,
    listener: TcpListener,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_write_timeout(Some(write_timeout));
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("tspn-serve-conn".to_string())
                    .spawn(move || handle_connection(shared, stream));
                if let Ok(handle) = handle {
                    let mut guard = handlers.lock().expect("handler registry");
                    // Opportunistically reap finished handlers so a
                    // long-lived server does not accumulate join handles.
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Shutdown: handlers observe the flag within one read timeout; the
    // batcher drains queued work before its loop exits.
    for handle in handlers.into_inner().expect("handler registry") {
        let _ = handle.join();
    }
    shared.batcher.close();
}

/// One keep-alive connection: requests in, JSON out, until close/shutdown.
///
/// During shutdown a request that arrives before the socket closes gets a
/// typed `503 shutting_down` (with `Retry-After`) rather than a reset —
/// a draining server is explicit about it, so clients can fail over.
fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let mut conn = HttpConn::new(stream);
    loop {
        let draining = shared.shutdown.load(Ordering::Acquire);
        match conn.read_request(MAX_BODY) {
            Ok(ReadOutcome::Idle) => {
                if draining {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Request(req)) => {
                if draining {
                    shared
                        .overload
                        .shed_not_ready
                        .fetch_add(1, Ordering::Relaxed);
                    let (status, body) =
                        ApiError::shutting_down("server is draining; connection closing").render();
                    let _ = conn.respond_ex(status, &body, false, Some(RETRY_AFTER_SECS));
                    return;
                }
                let (status, body) = route(&shared, &req);
                // Decide keep-alive *after* routing so a request that
                // itself triggers shutdown is answered `Connection:
                // close` instead of promising a session we then drop.
                let keep = req.keep_alive && !shared.shutdown.load(Ordering::Acquire);
                // Shed responses carry `Retry-After` so well-behaved
                // clients back off instead of hammering a full queue.
                let retry_after = (status == 429 || status == 503).then_some(RETRY_AFTER_SECS);
                if conn.respond_ex(status, &body, keep, retry_after).is_err() || !keep {
                    return;
                }
            }
            // Protocol-level violations (oversized headers/body, parse
            // failures) get their typed status before the close; pure I/O
            // errors (peer reset, stalled socket) just drop the connection.
            Err(ReadError::Bad { status, message }) => {
                conn.reject(status, &message);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

/// One resolved endpoint (routing decided; body not yet parsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    LegacyPredict,
    Healthz,
    V1Predict,
    V1Stats,
    SessionCreate,
    SessionGet(u64),
    SessionDelete(u64),
    SessionAppend(u64),
    SessionPredict(u64),
    AdminReload,
    AdminShutdown,
}

/// Resolves `(method, path)` to a route with correct HTTP hygiene: an
/// unknown path is `404 not_found`, a known path with the wrong verb is
/// `405 method_not_allowed`.
fn route_of(method: &str, path: &str) -> Result<Route, ApiError> {
    use Route::*;
    let allow = |allowed: &[(&str, Route)]| -> Result<Route, ApiError> {
        allowed
            .iter()
            .find(|(m, _)| *m == method)
            .map(|&(_, r)| r)
            .ok_or_else(|| {
                let verbs: Vec<&str> = allowed.iter().map(|(m, _)| *m).collect();
                ApiError::method_not_allowed(format!(
                    "{method} not allowed on {path} (allowed: {})",
                    verbs.join(", ")
                ))
            })
    };
    match path {
        "/predict" => return allow(&[("POST", LegacyPredict)]),
        "/healthz" => return allow(&[("GET", Healthz)]),
        "/v1/predict" => return allow(&[("POST", V1Predict)]),
        "/v1/stats" => return allow(&[("GET", V1Stats)]),
        "/v1/sessions" => return allow(&[("POST", SessionCreate)]),
        "/admin/reload" => return allow(&[("POST", AdminReload)]),
        "/admin/shutdown" => return allow(&[("POST", AdminShutdown)]),
        _ => {}
    }
    if let Some(rest) = path.strip_prefix("/v1/sessions/") {
        let mut parts = rest.splitn(2, '/');
        let id_segment = parts.next().unwrap_or("");
        if let Some(id) = protocol::parse_session_id(id_segment) {
            return match parts.next() {
                None => allow(&[("GET", SessionGet(id)), ("DELETE", SessionDelete(id))]),
                Some("checkins") => allow(&[("POST", SessionAppend(id))]),
                Some("predict") => allow(&[("POST", SessionPredict(id))]),
                Some(_) => Err(ApiError::not_found(format!("no route {method} {path}"))),
            };
        }
    }
    Err(ApiError::not_found(format!("no route {method} {path}")))
}

/// Dispatches one request to its endpoint. Prediction routes carry a
/// per-request deadline: the `x-tspn-deadline-ms` budget when the client
/// sent one (clamped to [`MAX_DEADLINE_MS`]), the configured default
/// otherwise.
fn route(shared: &Shared, req: &Request) -> (u16, String) {
    let resolved = match route_of(&req.method, &req.path) {
        Ok(r) => r,
        Err(e) => return e.render(),
    };
    let budget_ms = req
        .deadline_ms
        .unwrap_or(shared.request_timeout.as_millis() as u64)
        .clamp(1, MAX_DEADLINE_MS);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    match resolved {
        Route::LegacyPredict => predict_legacy(shared, &req.body, deadline),
        Route::Healthz => (200, protocol::health_response(&stats_snapshot(shared))),
        Route::V1Predict => answer(v1_predict(shared, &req.body, deadline)),
        Route::V1Stats => (200, protocol::stats_response(&stats_snapshot(shared))),
        Route::SessionCreate => answer(session_create(shared, &req.body)),
        Route::SessionGet(id) => answer(session_get(shared, id)),
        Route::SessionDelete(id) => answer(session_delete(shared, id)),
        Route::SessionAppend(id) => answer(session_append(shared, id, &req.body)),
        Route::SessionPredict(id) => answer(session_predict(shared, id, &req.body, deadline)),
        Route::AdminReload => reload(shared, &req.body),
        Route::AdminShutdown => {
            shared.shutdown.store(true, Ordering::Release);
            (200, "{\"ok\":true}".to_string())
        }
    }
}

/// Collapses a handler's typed-error result into the wire pair.
fn answer(result: Result<(u16, String), ApiError>) -> (u16, String) {
    result.unwrap_or_else(|e| e.render())
}

/// Gathers every counter `/healthz` and `/v1/stats` report.
fn stats_snapshot(shared: &Shared) -> protocol::StatsSnapshot {
    let sessions = shared.sessions.stats();
    let session_cfg = shared.sessions.config();
    let served_legacy = shared.stats.served_legacy.load(Ordering::Relaxed);
    let served_v1 = shared.stats.served_v1.load(Ordering::Relaxed);
    let served_session = shared.stats.served_session.load(Ordering::Relaxed);
    protocol::StatsSnapshot {
        snapshot: shared.applied.load(Ordering::Acquire),
        published: shared.snapshots.version(),
        served: served_legacy + served_v1 + served_session,
        served_legacy,
        served_v1,
        served_session,
        batches: shared.stats.batches.load(Ordering::Relaxed),
        queue: shared.batcher.queue_len(),
        ready: !shared.shutdown.load(Ordering::Acquire) && !shared.overload.breaker_open(),
        queue_cap: shared.queue_cap,
        shed_queue_full: shared.overload.shed_queue_full.load(Ordering::Relaxed),
        shed_expired: shared.batcher.shed_expired_total(),
        shed_not_ready: shared.overload.shed_not_ready.load(Ordering::Relaxed),
        batcher_restarts: shared.overload.batcher_restarts.load(Ordering::Relaxed),
        request_timeout_ms: shared.request_timeout.as_millis() as u64,
        chaos_injected_panics: shared.chaos.injected_panics(),
        chaos_corrupted_publishes: shared.chaos.corrupted_publishes(),
        sessions_live: sessions.live,
        sessions_created: sessions.created,
        session_appends: shared.stats.session_appends.load(Ordering::Relaxed),
        sessions_expired: sessions.expired,
        sessions_evicted: sessions.evicted,
        session_ttl_ms: session_cfg.ttl.as_millis() as u64,
        session_capacity: session_cfg.max_sessions,
    }
}

/// The shared enqueue-and-await tail of every predict flavor: by the time
/// a query reaches here the address mode is already resolved, so legacy,
/// payload, and session predictions ride the same batcher path (and mix
/// freely within one flush).
fn predict_common(
    shared: &Shared,
    query: Query,
    endpoint_counter: &AtomicU64,
    deadline: Instant,
) -> (u16, String) {
    if shared.shutdown.load(Ordering::Acquire) {
        shared
            .overload
            .shed_not_ready
            .fetch_add(1, Ordering::Relaxed);
        return ApiError::shutting_down("server is draining").render();
    }
    if shared.overload.breaker_open() {
        shared
            .overload
            .shed_not_ready
            .fetch_add(1, Ordering::Relaxed);
        return ApiError::not_ready("circuit breaker open after repeated batch crashes").render();
    }
    let rx = match shared.batcher.try_submit(query, Some(deadline)) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            shared
                .overload
                .shed_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return ApiError::overloaded("admission queue is full").render();
        }
        Err(SubmitError::Closed) => {
            return ApiError::shutting_down("server is draining").render();
        }
    };
    // Wait a bounded grace past the deadline: the batcher already drops
    // queued-and-expired entries, so a late answer here means the flush
    // picked the query up in time and simply ran long.
    let wait = deadline.saturating_duration_since(Instant::now()) + FLUSH_GRACE;
    match rx.recv_timeout(wait) {
        Ok(Verdict::Answered(answered)) => {
            endpoint_counter.fetch_add(1, Ordering::Relaxed);
            (
                200,
                protocol::predict_response(&answered.topk, answered.snapshot, answered.batch),
            )
        }
        Ok(Verdict::Expired) | Err(mpsc::RecvTimeoutError::Timeout) => {
            ApiError::deadline_exceeded("request deadline exceeded before the batch ran").render()
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            ApiError::internal("prediction batch crashed; retry after the supervisor restarts it")
                .render()
        }
    }
}

/// `POST /predict` — the legacy index-addressed endpoint, now a thin
/// adapter: it resolves its `(user, traj, prefix_len)` triple to an
/// indexed [`Query`] and rides the same [`predict_common`] path as the
/// v1 endpoints. Statuses keep the original contract (any violation is
/// `400`, and `k`/`top` of 0 are clamped, not rejected).
fn predict_legacy(shared: &Shared, body: &[u8], deadline: Instant) -> (u16, String) {
    let parsed = match protocol::parse_predict(body) {
        Ok(p) => p,
        Err(e) => return e.render(),
    };
    let sample = parsed.sample;
    let servable = shared
        .traj_lens
        .get(sample.user_index)
        .and_then(|u| u.get(sample.traj_index))
        .is_some_and(|&len| sample.prefix_len >= 1 && sample.prefix_len <= len);
    if !servable {
        return ApiError::bad_request(format!(
            "no servable history at user {} trajectory {} prefix {}",
            sample.user_index, sample.traj_index, sample.prefix_len
        ))
        .render();
    }
    let k = parsed.k.unwrap_or(shared.default_k).max(1);
    let top = parsed.top.unwrap_or(shared.default_top).max(1);
    let query = Query::with_top(sample, k, top);
    predict_common(shared, query, &shared.stats.served_legacy, deadline)
}

/// Validates every POI of a payload against the vocabulary (the bound
/// check itself is [`tspn_data::first_invalid_poi`], shared with
/// `Subject::validate` so the rule has one definition).
fn check_vocabulary(shared: &Shared, visits: &[Visit]) -> Result<(), ApiError> {
    match tspn_data::first_invalid_poi(visits, shared.num_pois) {
        Some(i) => Err(ApiError::unprocessable(format!(
            "checkin {i} names POI {} outside the vocabulary (0..{})",
            visits[i].poi.0, shared.num_pois
        ))),
        None => Ok(()),
    }
}

/// Builds the payload-addressed query the v1 predict flavors submit. The
/// caller guarantees every POI is inside the vocabulary (checked at
/// request parse time for `/v1/predict`, at create/append time for
/// session state — a session predict never re-scans its visits).
fn adhoc_query(
    shared: &Shared,
    user: usize,
    checkins: &[Visit],
    k: Option<usize>,
    top: Option<usize>,
) -> Result<Query, ApiError> {
    let trajectory = AdHocTrajectory::from_checkins(UserId(user), checkins, DEFAULT_GAP_SECS)
        .map_err(|e| ApiError::unprocessable(e.to_string()))?;
    Ok(Query::adhoc(
        Arc::new(trajectory),
        k.unwrap_or(shared.default_k),
        top.unwrap_or(shared.default_top),
    ))
}

/// `POST /v1/predict`: run the model directly on the supplied check-in
/// sequence.
fn v1_predict(shared: &Shared, body: &[u8], deadline: Instant) -> Result<(u16, String), ApiError> {
    let req = protocol::parse_v1_predict(body)?;
    check_vocabulary(shared, &req.checkins)?;
    let query = adhoc_query(shared, req.user, &req.checkins, req.k, req.top)?;
    Ok(predict_common(
        shared,
        query,
        &shared.stats.served_v1,
        deadline,
    ))
}

/// Maps a store failure for session `id` onto the typed error model.
fn session_error(id: u64, e: SessionError) -> ApiError {
    match e {
        SessionError::Unknown => {
            ApiError::not_found(format!("session \"s{id}\" was never created"))
        }
        SessionError::Gone => {
            ApiError::gone(format!("session \"s{id}\" has expired or been deleted"))
        }
        SessionError::Unordered(i) => ApiError::unprocessable(format!(
            "checkin {i} is earlier than the session's newest visit"
        )),
    }
}

/// `POST /v1/sessions`: create a session, optionally seeding check-ins.
/// The seeded create is a single atomic store operation — an invalid
/// seed issues no id, and no racing eviction can strand the seed.
fn session_create(shared: &Shared, body: &[u8]) -> Result<(u16, String), ApiError> {
    let req = protocol::parse_session_create(body)?;
    check_vocabulary(shared, &req.checkins)?;
    let (id, count) = shared
        .sessions
        .create(req.user, &req.checkins)
        .map_err(|e| match e {
            SessionError::Unordered(i) => {
                ApiError::unprocessable(format!("checkin {i} is earlier than its predecessor"))
            }
            other => session_error(0, other),
        })?;
    let ttl_ms = shared.sessions.config().ttl.as_millis() as u64;
    Ok((
        200,
        protocol::session_created_response(id, req.user, count, ttl_ms),
    ))
}

/// `POST /v1/sessions/{id}/checkins`: append observed visits.
fn session_append(shared: &Shared, id: u64, body: &[u8]) -> Result<(u16, String), ApiError> {
    let checkins = protocol::parse_session_append(body)?;
    check_vocabulary(shared, &checkins)?;
    let total = shared
        .sessions
        .append(id, &checkins)
        .map_err(|e| session_error(id, e))?;
    shared.stats.session_appends.fetch_add(1, Ordering::Relaxed);
    Ok((200, protocol::session_append_response(id, total)))
}

/// `POST /v1/sessions/{id}/predict`: predict from the accumulated state.
fn session_predict(
    shared: &Shared,
    id: u64,
    body: &[u8],
    deadline: Instant,
) -> Result<(u16, String), ApiError> {
    let (k, top) = protocol::parse_predict_opts(body)?;
    let (user, visits) = shared
        .sessions
        .snapshot(id)
        .map_err(|e| session_error(id, e))?;
    if visits.is_empty() {
        return Err(ApiError::unprocessable(format!(
            "session \"s{id}\" has no check-ins to predict from"
        )));
    }
    let query = adhoc_query(shared, user, &visits, k, top)?;
    Ok(predict_common(
        shared,
        query,
        &shared.stats.served_session,
        deadline,
    ))
}

/// `GET /v1/sessions/{id}`: session state (does not refresh the TTL).
fn session_get(shared: &Shared, id: u64) -> Result<(u16, String), ApiError> {
    let info = shared.sessions.info(id).map_err(|e| session_error(id, e))?;
    Ok((
        200,
        protocol::session_info_response(id, info.user, info.checkins, info.idle_ms),
    ))
}

/// `DELETE /v1/sessions/{id}`: end a session (it reports `410` after).
fn session_delete(shared: &Shared, id: u64) -> Result<(u16, String), ApiError> {
    shared
        .sessions
        .delete(id)
        .map_err(|e| session_error(id, e))?;
    Ok((200, "{\"ok\":true}".to_string()))
}

/// `POST /admin/reload`: load + validate on this thread, then publish for
/// the batcher to apply at its next flush boundary.
fn reload(shared: &Shared, body: &[u8]) -> (u16, String) {
    let path = match protocol::parse_reload(body) {
        Ok(p) => p,
        Err(e) => return e.render(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return ApiError::bad_request(format!("cannot read {path:?}: {e}")).render();
        }
    };
    let ckpt: Checkpoint = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            return ApiError::bad_request(format!("cannot parse checkpoint {path:?}: {e}"))
                .render();
        }
    };
    let expected = shared
        .expected_shapes
        .get()
        .expect("set before the listener binds");
    if let Err(e) = validate_shapes(&ckpt, expected) {
        return ApiError::bad_request(format!("checkpoint rejected: {e}")).render();
    }
    // Fault injection: poison the checkpoint *after* this handler's
    // validation passed, so the batcher's own re-validation is what must
    // catch it (and does — it keeps serving the old parameters).
    let mut ckpt = ckpt;
    if shared.chaos.corrupt(&mut ckpt) {
        eprintln!("tspn-serve: chaos poisoned published checkpoint");
    }
    let version = shared.snapshots.publish(ckpt);
    (200, format!("{{\"ok\":true,\"snapshot\":{version}}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_distinguishes_unknown_paths_from_wrong_methods() {
        // Known paths with the right verb resolve.
        assert_eq!(route_of("POST", "/predict"), Ok(Route::LegacyPredict));
        assert_eq!(route_of("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route_of("POST", "/v1/predict"), Ok(Route::V1Predict));
        assert_eq!(route_of("GET", "/v1/stats"), Ok(Route::V1Stats));
        assert_eq!(route_of("POST", "/v1/sessions"), Ok(Route::SessionCreate));
        assert_eq!(route_of("POST", "/admin/reload"), Ok(Route::AdminReload));

        // Known paths with the wrong verb are 405, never 404.
        for (method, path) in [
            ("GET", "/predict"),
            ("POST", "/healthz"),
            ("DELETE", "/v1/predict"),
            ("POST", "/v1/stats"),
            ("GET", "/v1/sessions"),
            ("GET", "/admin/shutdown"),
            ("POST", "/v1/sessions/s1"),
            ("GET", "/v1/sessions/s1/checkins"),
            ("DELETE", "/v1/sessions/s1/predict"),
        ] {
            let err = route_of(method, path).unwrap_err();
            assert_eq!(err.status, 405, "{method} {path} should be 405");
            assert_eq!(err.code, "method_not_allowed");
        }

        // Unknown paths are 404 for any verb.
        for (method, path) in [
            ("GET", "/nope"),
            ("POST", "/v1"),
            ("POST", "/v1/session"),
            ("POST", "/v1/sessions/"),
            ("POST", "/v1/sessions/notanid/predict"),
            ("POST", "/v1/sessions/s1/nope"),
            ("POST", "/v1/sessions/s1/predict/extra"),
        ] {
            let err = route_of(method, path).unwrap_err();
            assert_eq!(err.status, 404, "{method} {path} should be 404");
            assert_eq!(err.code, "not_found");
        }
    }

    #[test]
    fn session_routes_carry_their_id() {
        assert_eq!(route_of("GET", "/v1/sessions/s7"), Ok(Route::SessionGet(7)));
        assert_eq!(
            route_of("DELETE", "/v1/sessions/s7"),
            Ok(Route::SessionDelete(7))
        );
        assert_eq!(
            route_of("POST", "/v1/sessions/s12/checkins"),
            Ok(Route::SessionAppend(12))
        );
        assert_eq!(
            route_of("POST", "/v1/sessions/s12/predict"),
            Ok(Route::SessionPredict(12))
        );
    }
}
