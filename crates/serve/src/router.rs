//! The cross-process router: a thin `/v1` proxy that pins every request
//! to the backend its shard hash selects, so a fleet of independent
//! `tspn-serve` processes behaves like one logical server.
//!
//! The router is deliberately *thin*: it owns no model, no sessions, and
//! no batcher. It answers locally only where a fleet-wide view is the
//! whole point — `GET /healthz` and `GET /v1/stats` (backend ledgers
//! merged via [`protocol::merge_stats`]), `GET /v1/topology` (the fleet
//! map a shard-aware client bootstraps from), `POST /admin/shutdown`
//! (stops the router itself), and `POST /admin/reload` (broadcast to
//! every backend). **Everything else is forwarded verbatim** to the
//! backend selected by the same FNV-1a hash the backends use for lane
//! placement ([`crate::shard`]): users by `hash(user)`, ad-hoc `/v1`
//! payloads by content hash, session calls by the backend residue baked
//! into the session id. Requests the router cannot parse go to backend 0
//! unchanged, whose own parsers produce the *bitwise-identical* typed
//! error a standalone server would — the router duplicates no error
//! logic.
//!
//! Transport faults map onto the protocol's retry contract: a failure to
//! even connect (nothing sent) or a failed **idempotent** request yields
//! a retryable `503 not_ready`; a non-idempotent request (session create
//! or append) that died mid-flight yields `500 internal`, which clients
//! never replay, because its server-side effect is unknown.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;

use crate::client::{is_idempotent, Client, Response};
use crate::http::Request;
use crate::mux::{self, MuxConfig, MuxResponse};
use crate::protocol::{
    self, health_response, merge_stats, parse_lane_stats, parse_stats, parse_topology,
    stats_response, stats_response_v2, topology_response, ApiError, LaneStats, StatsSnapshot,
};
use crate::server::wants_flat;
use crate::shard::{backend_of_session_id, shard_of_content, shard_of_user, SHARD_FN_ID};

/// How many idle keep-alive connections the router retains per backend.
const POOL_CAP: usize = 16;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Backend addresses, in shard order: backend `i` of `backends.len()`.
    pub backends: Vec<String>,
    /// Write-stall deadline on router client connections.
    pub write_timeout: Duration,
    /// Multiplexer worker threads (each blocks on one backend call).
    pub io_workers: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            write_timeout: MuxConfig::default().write_timeout,
            io_workers: MuxConfig::default().workers,
        }
    }
}

/// A running router: its address and the thread driving its mux.
pub struct RouterHandle {
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
    mux_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begins draining: new requests get `503 shutting_down`, in-flight
    /// forwards finish, then the mux exits.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested (a signal handler's store or a
    /// client's `POST /admin/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until the mux thread exits (call [`RouterHandle::shutdown`]
    /// first, or `POST /admin/shutdown` the router).
    pub fn join(mut self) {
        if let Some(t) = self.mux_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.mux_thread.take() {
            let _ = t.join();
        }
    }
}

/// Why a backend call failed — the distinction drives the status mapping.
enum CallError {
    /// Could not connect; nothing was sent, so any request retries safely.
    Connect(std::io::Error),
    /// The connection died after the request may have been transmitted.
    Transport(std::io::Error),
}

/// One backend: its address and a pool of idle keep-alive connections.
struct Backend {
    addr: String,
    pool: Mutex<Vec<Client>>,
}

impl Backend {
    fn new(addr: &str) -> Backend {
        Backend {
            addr: addr.to_string(),
            pool: Mutex::new(Vec::new()),
        }
    }

    fn put(&self, client: Client) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    /// Issues one request, reusing a pooled connection when one is idle.
    /// A *pooled* connection may have gone stale (the backend restarted or
    /// reaped it), so a failure there is retried once on a fresh dial —
    /// but only when replaying is safe ([`is_idempotent`]).
    fn call(
        &self,
        method: &str,
        path: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, CallError> {
        let pooled = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let was_pooled = pooled.is_some();
        let mut client = match pooled {
            Some(c) => c,
            None => Client::connect(&self.addr).map_err(CallError::Connect)?,
        };
        client.set_deadline_ms(deadline_ms);
        match client.request_full(method, path, Some(body)) {
            Ok(resp) => {
                self.put(client);
                Ok(resp)
            }
            Err(first) if was_pooled && is_idempotent(method, path) => {
                let mut fresh = Client::connect(&self.addr).map_err(|_| {
                    // The stale-conn error is the more informative one.
                    CallError::Transport(first)
                })?;
                fresh.set_deadline_ms(deadline_ms);
                match fresh.request_full(method, path, Some(body)) {
                    Ok(resp) => {
                        self.put(fresh);
                        Ok(resp)
                    }
                    Err(e) => Err(CallError::Transport(e)),
                }
            }
            Err(e) => Err(CallError::Transport(e)),
        }
    }
}

struct RouterState {
    backends: Vec<Backend>,
    shutdown: Arc<AtomicBool>,
}

/// Starts the router on `cfg.addr`, proxying for `cfg.backends`.
///
/// # Errors
/// An empty backend list, bind failures, or thread-spawn failures.
/// Backends are *not* dialled eagerly — a backend may boot after the
/// router, and an unreachable one degrades to per-request `503`s on its
/// shard only.
pub fn start_router(cfg: RouterConfig) -> Result<RouterHandle, String> {
    if cfg.backends.is_empty() {
        return Err("router mode needs at least one backend address".to_string());
    }
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let state = Arc::new(RouterState {
        backends: cfg.backends.iter().map(|a| Backend::new(a)).collect(),
        shutdown: Arc::clone(&shutdown),
    });
    let mux_cfg = MuxConfig {
        workers: cfg.io_workers.max(1),
        write_timeout: cfg.write_timeout,
        ..MuxConfig::default()
    };
    let handler: Arc<mux::Handler> = {
        let state = Arc::clone(&state);
        Arc::new(move |req| respond(&state, req))
    };
    let flag = Arc::clone(&shutdown);
    let mux_thread = std::thread::Builder::new()
        .name("tspn-route-mux".to_string())
        .spawn(move || {
            if let Err(e) = mux::run(listener, mux_cfg, flag, handler) {
                eprintln!("tspn-serve: router mux error: {e}");
            }
        })
        .map_err(|e| format!("spawn router mux: {e}"))?;
    Ok(RouterHandle {
        shutdown,
        local_addr,
        mux_thread: Some(mux_thread),
    })
}

fn error(err: ApiError) -> MuxResponse {
    let (status, body) = err.render();
    MuxResponse {
        status,
        body,
        retry_after: (status == 429 || status == 503).then_some(1),
        close: false,
    }
}

/// The router's request handler, run on mux workers (each call may block
/// on one backend round-trip).
fn respond(state: &RouterState, req: &Request) -> MuxResponse {
    if state.shutdown.load(Ordering::Acquire) {
        let mut resp = error(ApiError::shutting_down(
            "router is draining; retry against a healthy instance",
        ));
        resp.close = true;
        return resp;
    }
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => merged_health(state),
        ("GET", "/v1/stats") => merged_stats(state, wants_flat(query)),
        ("GET", "/v1/topology") => fleet_topology(state),
        ("POST", "/admin/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            MuxResponse {
                status: 200,
                body: "{\"ok\":true}".to_string(),
                retry_after: None,
                close: true,
            }
        }
        ("POST", "/admin/reload") => broadcast_reload(state, req),
        _ => forward(state, req),
    }
}

// ---------------------------------------------------------------------
// Forwarding
// ---------------------------------------------------------------------

/// Which backend owns a request. Bodies that fail to parse route to
/// backend 0, whose identical parsers answer with the standalone
/// server's exact typed error.
fn backend_index(state: &RouterState, method: &str, path: &str, body: &[u8]) -> usize {
    let n = state.backends.len();
    if let Some(rest) = path.strip_prefix("/v1/sessions/") {
        let segment = rest.split('/').next().unwrap_or("");
        return protocol::parse_session_id(segment).map_or(0, |id| backend_of_session_id(id, n));
    }
    match (method, path) {
        ("POST", "/v1/sessions") => {
            protocol::parse_session_create(body).map_or(0, |r| shard_of_user(r.user, n))
        }
        ("POST", "/v1/predict") => {
            protocol::parse_v1_predict(body).map_or(0, |r| shard_of_content(r.user, &r.checkins, n))
        }
        ("POST", "/predict") => {
            protocol::parse_predict(body).map_or(0, |r| shard_of_user(r.sample.user_index, n))
        }
        _ => 0,
    }
}

fn forward(state: &RouterState, req: &Request) -> MuxResponse {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        // Matches the backends' own `parse_json` refusal byte-for-byte.
        return error(ApiError::bad_request("body is not UTF-8"));
    };
    let (path, _) = req.path.split_once('?').unwrap_or((req.path.as_str(), ""));
    let idx = backend_index(state, &req.method, path, &req.body);
    let backend = &state.backends[idx];
    match backend.call(&req.method, &req.path, body, req.deadline_ms) {
        Ok(resp) => MuxResponse {
            status: resp.status,
            body: resp.body,
            retry_after: resp.retry_after,
            close: false,
        },
        Err(CallError::Connect(e)) => error(ApiError::not_ready(format!(
            "backend {} unreachable: {e}",
            backend.addr
        ))),
        Err(CallError::Transport(e)) if is_idempotent(&req.method, path) => error(
            ApiError::not_ready(format!("backend {} connection failed: {e}", backend.addr)),
        ),
        Err(CallError::Transport(e)) => {
            // Session create/append with an unknown server-side effect:
            // 500 so overload-aware clients do NOT auto-replay it.
            error(ApiError::internal(format!(
                "backend {} connection failed mid-request: {e}",
                backend.addr
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Fleet views (answered locally)
// ---------------------------------------------------------------------

/// Fetches `path` from every backend and parses each answer as JSON.
fn fetch_all(state: &RouterState, path: &str) -> Result<Vec<Value>, MuxResponse> {
    let mut answers = Vec::with_capacity(state.backends.len());
    for backend in &state.backends {
        let resp = backend.call("GET", path, "", None).map_err(|e| {
            let err = match e {
                CallError::Connect(e) | CallError::Transport(e) => e,
            };
            error(ApiError::not_ready(format!(
                "backend {} unreachable: {err}",
                backend.addr
            )))
        })?;
        if resp.status != 200 {
            return Err(MuxResponse {
                status: resp.status,
                body: resp.body,
                retry_after: resp.retry_after,
                close: false,
            });
        }
        let parsed = serde_json::from_str::<Value>(&resp.body).map_err(|e| {
            error(ApiError::internal(format!(
                "backend {} returned non-JSON for {path}: {e}",
                backend.addr
            )))
        })?;
        answers.push(parsed);
    }
    Ok(answers)
}

/// Merges every backend's flat stats ledger into one fleet snapshot.
fn merged_snapshot(state: &RouterState) -> Result<StatsSnapshot, MuxResponse> {
    let mut merged: Option<StatsSnapshot> = None;
    for (i, v) in fetch_all(state, "/v1/stats?flat=1")?.iter().enumerate() {
        let s = parse_stats(v).ok_or_else(|| {
            error(ApiError::internal(format!(
                "backend {} returned an unparseable stats ledger",
                state.backends[i].addr
            )))
        })?;
        merged = Some(match merged {
            Some(acc) => merge_stats(&acc, &s),
            None => s,
        });
    }
    merged.ok_or_else(|| error(ApiError::internal("no backends answered")))
}

fn merged_health(state: &RouterState) -> MuxResponse {
    match merged_snapshot(state) {
        Ok(s) => MuxResponse {
            status: 200,
            body: health_response(&s),
            retry_after: None,
            close: false,
        },
        Err(resp) => resp,
    }
}

fn merged_stats(state: &RouterState, flat: bool) -> MuxResponse {
    if flat {
        return match merged_snapshot(state) {
            Ok(s) => MuxResponse {
                status: 200,
                body: stats_response(&s),
                retry_after: None,
                close: false,
            },
            Err(resp) => resp,
        };
    }
    // v2: merge backend aggregates and splice their lane arrays into one
    // fleet-wide list, renumbered in backend order.
    let answers = match fetch_all(state, "/v1/stats") {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let mut merged: Option<StatsSnapshot> = None;
    let mut lanes: Vec<LaneStats> = Vec::new();
    for (i, v) in answers.iter().enumerate() {
        let parsed = v.get("aggregate").and_then(parse_stats);
        let Some(s) = parsed else {
            return error(ApiError::internal(format!(
                "backend {} returned an unparseable v2 stats answer",
                state.backends[i].addr
            )));
        };
        merged = Some(match merged {
            Some(acc) => merge_stats(&acc, &s),
            None => s,
        });
        for lane in v.get("lanes").and_then(Value::as_array).unwrap_or(&[]) {
            if let Some(mut l) = parse_lane_stats(lane) {
                l.lane = lanes.len();
                lanes.push(l);
            }
        }
    }
    match merged {
        Some(s) => MuxResponse {
            status: 200,
            body: stats_response_v2(&s, &lanes),
            retry_after: None,
            close: false,
        },
        None => error(ApiError::internal("no backends answered")),
    }
}

fn fleet_topology(state: &RouterState) -> MuxResponse {
    let answers = match fetch_all(state, "/v1/topology") {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let mut total_lanes = 0usize;
    for (i, v) in answers.iter().enumerate() {
        let Some(t) = parse_topology(v) else {
            return error(ApiError::internal(format!(
                "backend {} returned an unparseable topology",
                state.backends[i].addr
            )));
        };
        if t.shard_fn != SHARD_FN_ID {
            return error(ApiError::internal(format!(
                "backend {} speaks shard fn {:?}, router speaks {:?}",
                state.backends[i].addr, t.shard_fn, SHARD_FN_ID
            )));
        }
        total_lanes += t.lanes;
    }
    let addrs: Vec<String> = state.backends.iter().map(|b| b.addr.clone()).collect();
    MuxResponse {
        status: 200,
        body: topology_response(
            "router",
            total_lanes,
            SHARD_FN_ID,
            0,
            state.backends.len(),
            &addrs,
        ),
        retry_after: None,
        close: false,
    }
}

/// `POST /admin/reload` fans out to every backend so the fleet swaps
/// checkpoints together. All-or-nothing in effect: validation failures
/// are deterministic (every backend rejects the same file identically),
/// so either all backends bump their published version or none do; the
/// first failure's typed answer is returned verbatim.
fn broadcast_reload(state: &RouterState, req: &Request) -> MuxResponse {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error(ApiError::bad_request("body is not UTF-8"));
    };
    let mut ok: Option<MuxResponse> = None;
    for backend in &state.backends {
        match backend.call("POST", "/admin/reload", body, req.deadline_ms) {
            Ok(resp) if resp.status == 200 => {
                ok = Some(MuxResponse {
                    status: resp.status,
                    body: resp.body,
                    retry_after: resp.retry_after,
                    close: false,
                });
            }
            Ok(resp) => {
                return MuxResponse {
                    status: resp.status,
                    body: resp.body,
                    retry_after: resp.retry_after,
                    close: false,
                }
            }
            Err(_) => {
                return error(ApiError::not_ready(format!(
                    "backend {} unreachable during reload",
                    backend.addr
                )))
            }
        }
    }
    ok.unwrap_or_else(|| error(ApiError::internal("no backends answered")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::error_of;

    /// A stub backend is just the real mux with a canned handler — the
    /// router cannot tell the difference, and keep-alive/framing come
    /// for free.
    fn stub_backend(
        handler: impl Fn(&Request) -> (u16, String) + Send + Sync + 'static,
    ) -> (String, Arc<AtomicBool>, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().expect("stub addr").to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let h: Arc<mux::Handler> = Arc::new(move |req| {
            let (status, body) = handler(req);
            MuxResponse {
                status,
                body,
                retry_after: None,
                close: false,
            }
        });
        let cfg = MuxConfig {
            workers: 2,
            ..MuxConfig::default()
        };
        let handle = std::thread::spawn(move || {
            mux::run(listener, cfg, flag, h).expect("stub mux runs");
        });
        (addr, stop, handle)
    }

    fn echo_backend(i: usize) -> (String, Arc<AtomicBool>, JoinHandle<()>) {
        stub_backend(move |req| {
            (
                200,
                format!(
                    "{{\"backend\":{i},\"method\":\"{}\",\"path\":\"{}\"}}",
                    req.method, req.path
                ),
            )
        })
    }

    fn start(backends: Vec<String>) -> RouterHandle {
        start_router(RouterConfig {
            backends,
            ..RouterConfig::default()
        })
        .expect("router starts")
    }

    fn backend_of(client: &mut Client, method: &str, path: &str, body: Option<&str>) -> usize {
        let (status, text) = client.request(method, path, body).expect("request");
        assert_eq!(status, 200, "{method} {path}: {text}");
        let v = serde_json::from_str::<Value>(&text).expect("json");
        v.get("backend").and_then(Value::as_usize).expect("backend")
    }

    #[test]
    fn requests_are_pinned_to_the_backend_the_shard_hash_selects() {
        let (a0, s0, h0) = echo_backend(0);
        let (a1, s1, h1) = echo_backend(1);
        let router = start(vec![a0, a1]);
        let mut client = Client::connect(&router.local_addr().to_string()).expect("connect");

        // Session ids carry their backend residue: (id - 1) mod 2.
        assert_eq!(backend_of(&mut client, "GET", "/v1/sessions/s1", None), 0);
        assert_eq!(backend_of(&mut client, "GET", "/v1/sessions/s2", None), 1);
        assert_eq!(
            backend_of(&mut client, "POST", "/v1/sessions/s3/predict", Some("{}")),
            0
        );

        // User-keyed requests follow shard_of_user; payloads follow the
        // content hash. Check a handful against the hash directly.
        for user in 0..8usize {
            let expect = shard_of_user(user, 2);
            let body = format!("{{\"user\":{user},\"traj\":0,\"prefix_len\":2}}");
            assert_eq!(
                backend_of(&mut client, "POST", "/predict", Some(&body)),
                expect,
                "user {user}"
            );
            let create = format!("{{\"user\":{user}}}");
            assert_eq!(
                backend_of(&mut client, "POST", "/v1/sessions", Some(&create)),
                expect,
                "create {user}"
            );
        }

        // Unparseable bodies and unknown routes go to backend 0, whose
        // parsers own the typed error.
        assert_eq!(
            backend_of(&mut client, "POST", "/predict", Some("not json")),
            0
        );
        assert_eq!(backend_of(&mut client, "GET", "/nope", None), 0);

        drop(client);
        router.shutdown();
        router.join();
        s0.store(true, Ordering::Release);
        s1.store(true, Ordering::Release);
        h0.join().unwrap();
        h1.join().unwrap();
    }

    fn canned_stats(i: u64) -> StatsSnapshot {
        StatsSnapshot {
            snapshot: i + 1,
            published: i + 1,
            served: 10 * (i + 1),
            served_legacy: 10 * (i + 1),
            batches: 3,
            queue: 1,
            ready: true,
            queue_cap: 64,
            session_ttl_ms: 1000,
            session_capacity: 16,
            request_timeout_ms: 10_000,
            ..StatsSnapshot::default()
        }
    }

    fn stats_backend(i: u64) -> (String, Arc<AtomicBool>, JoinHandle<()>) {
        stub_backend(move |req| {
            let s = canned_stats(i);
            let lane = LaneStats {
                lane: 0,
                snapshot: s.snapshot,
                ready: true,
                queue_cap: 64,
                served: s.served,
                batches: s.batches,
                ..LaneStats::default()
            };
            match req.path.as_str() {
                "/v1/stats?flat=1" => (200, stats_response(&s)),
                "/v1/stats" => (200, stats_response_v2(&s, &[lane])),
                "/v1/topology" => (
                    200,
                    topology_response("backend", 2, SHARD_FN_ID, i as usize, 2, &[]),
                ),
                _ => (404, "{}".to_string()),
            }
        })
    }

    #[test]
    fn fleet_views_merge_backend_ledgers() {
        let (a0, s0, h0) = stats_backend(0);
        let (a1, s1, h1) = stats_backend(1);
        let router = start(vec![a0.clone(), a1.clone()]);
        let mut client = Client::connect(&router.local_addr().to_string()).expect("connect");

        // /healthz and /v1/stats?flat=1 report the summed fleet ledger.
        let (status, text) = client.get("/healthz").expect("healthz");
        assert_eq!(status, 200);
        let v = serde_json::from_str::<Value>(&text).expect("json");
        assert_eq!(v.get("served").and_then(Value::as_usize), Some(30));
        assert_eq!(v.get("snapshot").and_then(Value::as_usize), Some(2));
        assert_eq!(v.get("ready").and_then(Value::as_bool), Some(true));

        let (status, text) = client.get("/v1/stats?flat=1").expect("flat stats");
        assert_eq!(status, 200);
        let v = serde_json::from_str::<Value>(&text).expect("json");
        let merged = parse_stats(&v).expect("flat parse");
        assert_eq!(merged.served, 30);
        assert_eq!(merged.batches, 6);
        assert_eq!(merged.queue, 2);

        // v2 splices the lane arrays, renumbered in backend order.
        let (status, text) = client.get("/v1/stats").expect("v2 stats");
        assert_eq!(status, 200);
        let v = serde_json::from_str::<Value>(&text).expect("json");
        assert_eq!(v.get("schema_version").and_then(Value::as_usize), Some(2));
        let lanes = v.get("lanes").and_then(Value::as_array).expect("lanes");
        assert_eq!(lanes.len(), 2);
        for (i, lane) in lanes.iter().enumerate() {
            let l = parse_lane_stats(lane).expect("lane");
            assert_eq!(l.lane, i);
        }

        // Topology: fleet mode, summed lanes, backend list.
        let (status, text) = client.get("/v1/topology").expect("topology");
        assert_eq!(status, 200);
        let t = parse_topology(&serde_json::from_str::<Value>(&text).unwrap()).expect("topo");
        assert_eq!(t.mode, "router");
        assert_eq!(t.lanes, 4);
        assert_eq!(t.shard_index, 0);
        assert_eq!(t.shard_count, 2);
        assert_eq!(t.backends, vec![a0, a1]);

        drop(client);
        router.shutdown();
        router.join();
        s0.store(true, Ordering::Release);
        s1.store(true, Ordering::Release);
        h0.join().unwrap();
        h1.join().unwrap();
    }

    #[test]
    fn unreachable_backends_shed_only_their_own_shard() {
        let (a0, s0, h0) = echo_backend(0);
        // Backend 1 is a dead address: bind a port, then drop it.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let router = start(vec![a0, dead]);
        let mut client = Client::connect(&router.local_addr().to_string()).expect("connect");

        let user_on_0 = (0..).find(|&u| shard_of_user(u, 2) == 0).unwrap();
        let user_on_1 = (0..).find(|&u| shard_of_user(u, 2) == 1).unwrap();

        let body = format!("{{\"user\":{user_on_0},\"traj\":0,\"prefix_len\":2}}");
        let (status, _) = client.post("/predict", &body).expect("live shard");
        assert_eq!(status, 200, "live backend keeps serving");

        let body = format!("{{\"user\":{user_on_1},\"traj\":0,\"prefix_len\":2}}");
        let resp = client
            .request_full("POST", "/predict", Some(&body))
            .expect("typed refusal, not a dropped connection");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
        let v = serde_json::from_str::<Value>(&resp.body).expect("json");
        assert_eq!(error_of(&v).expect("typed").0, "not_ready");

        drop(client);
        router.shutdown();
        router.join();
        s0.store(true, Ordering::Release);
        h0.join().unwrap();
    }

    #[test]
    fn admin_shutdown_stops_the_router_but_not_the_backends() {
        let (a0, s0, h0) = echo_backend(0);
        let router = start(vec![a0.clone()]);
        let mut client = Client::connect(&router.local_addr().to_string()).expect("connect");
        let (status, text) = client.post("/admin/shutdown", "{}").expect("shutdown");
        assert_eq!(status, 200);
        assert_eq!(text, "{\"ok\":true}");
        router.join();

        // The backend is still alive and answering directly.
        let mut direct = Client::connect(&a0).expect("backend still up");
        let (status, _) = direct.get("/healthz").expect("direct healthz");
        assert_eq!(status, 200);

        drop(direct);
        s0.store(true, Ordering::Release);
        h0.join().unwrap();
    }

    #[test]
    fn reload_broadcasts_to_every_backend() {
        use std::sync::atomic::AtomicUsize;
        let hits = Arc::new(AtomicUsize::new(0));
        let mk = |hits: Arc<AtomicUsize>| {
            stub_backend(move |req| {
                assert_eq!(req.path, "/admin/reload");
                hits.fetch_add(1, Ordering::SeqCst);
                (200, "{\"ok\":true,\"snapshot\":2}".to_string())
            })
        };
        let (a0, s0, h0) = mk(Arc::clone(&hits));
        let (a1, s1, h1) = mk(Arc::clone(&hits));
        let router = start(vec![a0, a1]);
        let mut client = Client::connect(&router.local_addr().to_string()).expect("connect");
        let (status, text) = client
            .post("/admin/reload", "{\"path\":\"ckpt.json\"}")
            .expect("reload");
        assert_eq!(status, 200);
        assert_eq!(text, "{\"ok\":true,\"snapshot\":2}");
        assert_eq!(hits.load(Ordering::SeqCst), 2, "both backends reloaded");

        drop(client);
        router.shutdown();
        router.join();
        s0.store(true, Ordering::Release);
        s1.store(true, Ordering::Release);
        h0.join().unwrap();
        h1.join().unwrap();
    }
}
