//! The request micro-batcher: a bounded queue that coalesces concurrent
//! `/predict` requests into one batched `no_grad` forward.
//!
//! Handler threads [`Batcher::submit`] queries and block on a per-request
//! channel; the single batcher thread collects a batch and answers it with
//! one `Predictor::predict_batch` call (which shards across the persistent
//! worker pool). A batch flushes when it reaches `max_batch` queries **or**
//! when `deadline` has elapsed since the oldest queued query — so an idle
//! server answers a lone request within ~`deadline`, and a busy server
//! amortises the per-flush costs (parameter checks, table reuse, pool
//! dispatch) across up to `max_batch` requests.
//!
//! The queue is bounded (`queue_cap`) and is the server's **admission
//! control** point: [`Batcher::try_submit`] refuses immediately with
//! [`SubmitError::QueueFull`] when the server is `queue_cap` requests
//! behind, so overload is shed as a typed `429` instead of growing memory
//! (or blocked handler threads) without limit. The blocking
//! [`Batcher::submit`] survives for callers that prefer backpressure.
//!
//! Every queued query may carry a **deadline**: entries whose deadline
//! passes while they wait are swept out *before* the flush and answered
//! [`Verdict::Expired`] — the model never spends a forward pass on an
//! answer nobody is waiting for.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tspn_core::{Query, TopK};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch one flush may take.
    pub max_batch: usize,
    /// Longest a queued query may wait for companions before its batch
    /// flushes anyway.
    pub deadline: Duration,
    /// Bound on queued (not yet flushed) queries; `try_submit` sheds
    /// beyond this (blocking `submit` waits instead).
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            deadline: Duration::from_millis(2),
            queue_cap: 1024,
        }
    }
}

impl BatchConfig {
    /// Resolves the tunable knobs from CLI flags and the environment:
    /// an explicit CLI value wins, then `TSPN_SERVE_MAX_BATCH` /
    /// `TSPN_SERVE_DEADLINE_US` / `TSPN_SERVE_MAX_QUEUE`, then the
    /// defaults (32 / 2 ms / 1024). A flush is one batched forward, so
    /// `max_batch` and `deadline` directly trade tail latency against
    /// per-query amortisation under load, while `queue_cap` bounds how far
    /// behind the server may fall before it starts shedding. Unparseable
    /// (or zero) environment values are ignored rather than fatal — a
    /// fleet-wide env typo must not take serving down.
    pub fn resolve(
        cli_max_batch: Option<usize>,
        cli_deadline_us: Option<u64>,
        cli_queue_cap: Option<usize>,
        env: impl Fn(&str) -> Option<String>,
    ) -> BatchConfig {
        let default = BatchConfig::default();
        let max_batch = cli_max_batch
            .or_else(|| {
                env("TSPN_SERVE_MAX_BATCH")
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
            .unwrap_or(default.max_batch);
        let deadline = cli_deadline_us
            .or_else(|| env("TSPN_SERVE_DEADLINE_US").and_then(|v| v.trim().parse::<u64>().ok()))
            .map(Duration::from_micros)
            .unwrap_or(default.deadline);
        let queue_cap = cli_queue_cap
            .or_else(|| {
                env("TSPN_SERVE_MAX_QUEUE")
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
            .unwrap_or(default.queue_cap);
        BatchConfig {
            max_batch,
            deadline,
            queue_cap,
        }
    }
}

/// The answer a waiting handler receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answered {
    /// The prediction.
    pub topk: TopK,
    /// The parameter-snapshot version the whole batch ran under.
    pub snapshot: u64,
    /// The flush sequence number (all queries of one flush share it).
    pub batch: u64,
}

/// What a waiting handler's channel ultimately delivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The query ran in a flush and this is its prediction.
    Answered(Answered),
    /// The query's deadline passed while it sat in the queue; it was
    /// dropped *before* the flush, so the model never ran it. Handlers
    /// answer `503 deadline_exceeded`; retrying is always safe.
    Expired,
}

impl Verdict {
    /// The answer, if the query was served (test/diagnostic convenience).
    pub fn answered(self) -> Option<Answered> {
        match self {
            Verdict::Answered(a) => Some(a),
            Verdict::Expired => None,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The batcher has been closed (server shutting down).
    Closed,
    /// The admission queue is at `queue_cap`; the request was shed
    /// without queuing. Handlers answer `429 overloaded` + `Retry-After`.
    QueueFull,
}

/// How one supervised run of the serve loop ended; see
/// [`Batcher::run_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopExit {
    /// The batcher was closed and the queue fully drained.
    Drained,
    /// `serve` panicked. That batch's waiters were failed (channels
    /// dropped → each handler answers 500); the queue and any later
    /// submissions are intact. The caller may rebuild state and re-enter.
    Panicked,
}

struct Waiting {
    query: Query,
    tx: mpsc::SyncSender<Verdict>,
    /// When the query entered the queue; the flush deadline runs from the
    /// oldest entry, not from when the batcher got around to looking.
    enqueued: Instant,
    /// Hard per-request deadline; entries past it are swept pre-flush.
    deadline: Option<Instant>,
}

struct Shared {
    queue: Mutex<State>,
    /// Signalled when the queue gains an element or closes.
    nonempty: Condvar,
    /// Signalled when the queue loses elements or closes.
    space: Condvar,
    /// Queries dropped pre-flush because their deadline expired in queue.
    shed_expired: AtomicU64,
}

struct State {
    waiting: VecDeque<Waiting>,
    open: bool,
    /// Next flush id to issue; lives here (not in the run loop) so batch
    /// ids stay monotonic across supervisor restarts.
    next_batch: u64,
    /// Distance between consecutive batch ids. A multi-lane server gives
    /// lane `l` of `L` the partition `first = l + 1, stride = L`, so
    /// every batch id is unique across lanes without coordination.
    batch_stride: u64,
}

/// Drops every queued entry whose deadline has passed, answering each
/// with [`Verdict::Expired`]. Called with the queue lock held.
fn sweep_expired(state: &mut State, shed: &AtomicU64) {
    let now = Instant::now();
    let mut i = 0;
    while i < state.waiting.len() {
        let dead = state.waiting[i].deadline.is_some_and(|d| d <= now);
        if dead {
            // The loop guard keeps `i` in bounds, but a sweep must never
            // take down the serve thread: skip rather than panic.
            let Some(w) = state.waiting.remove(i) else {
                break;
            };
            let _ = w.tx.send(Verdict::Expired);
            shed.fetch_add(1, Ordering::Relaxed);
        } else {
            i += 1;
        }
    }
}

/// Handle to the shared batching queue (clone-cheap).
#[derive(Clone)]
pub struct Batcher {
    cfg: BatchConfig,
    shared: Arc<Shared>,
}

impl Batcher {
    /// A new, open batcher issuing batch ids `1, 2, 3, …`.
    pub fn new(cfg: BatchConfig) -> Self {
        Batcher::with_ids(cfg, 1, 1)
    }

    /// A new, open batcher issuing batch ids from the stride-partitioned
    /// sequence `first, first + stride, …` — see
    /// [`crate::shard::IdPartition`]. Lanes of one server (and backends
    /// of one fleet) get disjoint partitions so a batch id names one
    /// flush globally.
    pub fn with_ids(cfg: BatchConfig, first: u64, stride: u64) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be positive");
        assert!(cfg.queue_cap >= 1, "queue_cap must be positive");
        assert!(first >= 1, "batch ids start at 1");
        assert!(stride >= 1, "batch id stride must be positive");
        Batcher {
            cfg,
            shared: Arc::new(Shared {
                queue: Mutex::new(State {
                    waiting: VecDeque::new(),
                    open: true,
                    next_batch: first,
                    batch_stride: stride,
                }),
                nonempty: Condvar::new(),
                space: Condvar::new(),
                shed_expired: AtomicU64::new(0),
            }),
        }
    }

    /// Enqueues one query, blocking while the queue is at capacity, and
    /// returns the channel the verdict will arrive on.
    ///
    /// # Errors
    /// [`SubmitError::Closed`] once [`Batcher::close`] has been called.
    pub fn submit(&self, query: Query) -> Result<mpsc::Receiver<Verdict>, SubmitError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        while state.open && state.waiting.len() >= self.cfg.queue_cap {
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
        if !state.open {
            return Err(SubmitError::Closed);
        }
        state.waiting.push_back(Waiting {
            query,
            tx,
            enqueued: Instant::now(),
            deadline: None,
        });
        drop(state);
        self.shared.nonempty.notify_all();
        Ok(rx)
    }

    /// Admission-controlled enqueue: never blocks. Refuses immediately
    /// when the queue is at `queue_cap` (after sweeping entries whose
    /// deadline already passed — a queue full of dead requests must not
    /// shed live ones). An entry still queued at `deadline` is dropped
    /// before the flush and resolves to [`Verdict::Expired`].
    ///
    /// # Errors
    /// [`SubmitError::Closed`] after [`Batcher::close`];
    /// [`SubmitError::QueueFull`] when at capacity.
    pub fn try_submit(
        &self,
        query: Query,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<Verdict>, SubmitError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if !state.open {
            return Err(SubmitError::Closed);
        }
        if state.waiting.len() >= self.cfg.queue_cap {
            sweep_expired(&mut state, &self.shared.shed_expired);
            if state.waiting.len() >= self.cfg.queue_cap {
                return Err(SubmitError::QueueFull);
            }
        }
        state.waiting.push_back(Waiting {
            query,
            tx,
            enqueued: Instant::now(),
            deadline,
        });
        drop(state);
        self.shared.nonempty.notify_all();
        Ok(rx)
    }

    /// Number of queries currently queued (diagnostics only).
    pub fn queue_len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .waiting
            .len()
    }

    /// Total queries ever dropped in-queue past their deadline.
    pub fn shed_expired_total(&self) -> u64 {
        self.shared.shed_expired.load(Ordering::Relaxed)
    }

    /// Closes the queue: pending queries still flush, new submissions are
    /// refused, and [`Batcher::run_loop`] returns once drained.
    pub fn close(&self) {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .open = false;
        self.shared.nonempty.notify_all();
        self.shared.space.notify_all();
    }

    /// The batcher thread's main loop. `serve` answers one batch of
    /// queries and names the parameter-snapshot version it ran under; it
    /// is invoked strictly between flush boundaries, so one batch can
    /// never observe two snapshots. Returns when the batcher is closed and
    /// the queue has drained.
    ///
    /// A panicking `serve` call fails only its own batch (the waiters'
    /// channels drop, surfacing an error to each handler); the loop keeps
    /// serving subsequent batches. Callers that need to *repair* state
    /// after a panic (rebuild the model, count crashes) should use
    /// [`Batcher::run_supervised`] directly — this is the unsupervised
    /// convenience wrapper over it.
    pub fn run_loop(&self, mut serve: impl FnMut(&[Query]) -> (Vec<TopK>, u64)) {
        while self.run_supervised(&mut serve) == LoopExit::Panicked {}
    }

    /// Runs the serve loop until the batcher drains ([`LoopExit::Drained`])
    /// or one `serve` call panics ([`LoopExit::Panicked`]). On a panic the
    /// poisoned batch's waiters have already been failed and the queue is
    /// otherwise intact, so a supervisor can rebuild whatever the panic may
    /// have corrupted (e.g. the model, from the last good checkpoint) and
    /// call this again; queued requests keep their places.
    pub fn run_supervised(&self, mut serve: impl FnMut(&[Query]) -> (Vec<TopK>, u64)) -> LoopExit {
        loop {
            let Some(pending) = self.collect_batch() else {
                return LoopExit::Drained;
            };
            let batch_id = {
                let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                let id = state.next_batch;
                state.next_batch += state.batch_stride;
                id
            };
            let queries: Vec<Query> = pending.iter().map(|w| w.query.clone()).collect();
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve(&queries)));
            match outcome {
                Ok((answers, snapshot)) => {
                    debug_assert_eq!(answers.len(), pending.len());
                    for (w, topk) in pending.into_iter().zip(answers) {
                        // A handler that timed out and left is fine to miss.
                        let _ = w.tx.send(Verdict::Answered(Answered {
                            topk,
                            snapshot,
                            batch: batch_id,
                        }));
                    }
                }
                Err(_) => {
                    // Dropping the waiters closes their channels; each
                    // handler answers 500 for exactly this batch.
                    drop(pending);
                    return LoopExit::Panicked;
                }
            }
        }
    }

    /// Blocks until a batch is ready (first query + deadline/max-batch
    /// policy) or the batcher is closed and empty (`None`).
    fn collect_batch(&self) -> Option<Vec<Waiting>> {
        loop {
            match self.collect_batch_once() {
                Some(batch) if batch.is_empty() => continue,
                other => return other,
            }
        }
    }

    /// One collection attempt; may come back empty if every candidate
    /// expired between the flush decision and the take.
    fn collect_batch_once(&self) -> Option<Vec<Waiting>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        // Phase 1: wait for the first *live* query (or close-and-drained).
        // Expired entries are swept here so a dead oldest entry cannot
        // start the flush clock for a batch that will never include it.
        loop {
            sweep_expired(&mut state, &self.shared.shed_expired);
            if !state.waiting.is_empty() {
                break;
            }
            if !state.open {
                return None;
            }
            state = self
                .shared
                .nonempty
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
        // Phase 2: give companions `deadline` to arrive, up to `max_batch`.
        // The clock runs from the *oldest* queued query, so work that
        // queued while a previous flush was running is not re-penalised.
        // Phase 1 leaves the queue non-empty; if that ever fails, hand
        // back an empty batch and let `collect_batch` retry.
        let Some(front) = state.waiting.front() else {
            return Some(Vec::new());
        };
        let oldest = front.enqueued;
        let flush_at = oldest + self.cfg.deadline;
        while state.waiting.len() < self.cfg.max_batch && state.open {
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            let (guard, _timeout) = self
                .shared
                .nonempty
                .wait_timeout(state, flush_at - now)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
        // Entries may have expired while companions were awaited; drop
        // them now so the flush never spends model time on them.
        sweep_expired(&mut state, &self.shared.shed_expired);
        let take = state.waiting.len().min(self.cfg.max_batch);
        let batch: Vec<Waiting> = state.waiting.drain(..take).collect();
        drop(state);
        self.shared.space.notify_all();
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::{PoiId, Sample};

    fn query(tag: usize) -> Query {
        // Encode an identity in the sample so the fake server can echo it.
        Query::with_top(
            Sample {
                user_index: tag,
                traj_index: 0,
                prefix_len: 1,
            },
            1,
            4,
        )
    }

    /// Fake model: answers each query with its tag as a PoiId.
    fn echo(queries: &[Query]) -> (Vec<TopK>, u64) {
        let answers = queries
            .iter()
            .map(|q| TopK {
                pois: vec![PoiId(
                    q.indexed_sample()
                        .expect("test queries are indexed")
                        .user_index,
                )],
                tiles: Vec::new(),
                candidate_count: 1,
            })
            .collect();
        (answers, 7)
    }

    #[test]
    fn queued_backlog_flushes_in_max_batch_chunks_in_order() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let receivers: Vec<_> = (0..10)
            .map(|i| batcher.submit(query(i)).expect("open"))
            .collect();
        batcher.close();
        let mut sizes = Vec::new();
        batcher.run_loop(|qs| {
            sizes.push(qs.len());
            echo(qs)
        });
        assert_eq!(sizes, vec![4, 4, 2], "backlog drains in max_batch chunks");
        for (i, rx) in receivers.into_iter().enumerate() {
            let answered = rx
                .recv()
                .expect("answered before close finished")
                .answered()
                .expect("no deadline, so served");
            assert_eq!(answered.topk.pois, vec![PoiId(i)], "answers follow queries");
            assert_eq!(answered.snapshot, 7);
        }
    }

    #[test]
    fn batch_ids_partition_the_backlog() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 3,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let receivers: Vec<_> = (0..7)
            .map(|i| batcher.submit(query(i)).expect("open"))
            .collect();
        batcher.close();
        batcher.run_loop(echo);
        let batches: Vec<u64> = receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap().answered().unwrap().batch)
            .collect();
        assert_eq!(batches, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn deadline_flushes_a_lone_query() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 64,
            deadline: Duration::from_millis(5),
            queue_cap: 64,
        });
        let loop_handle = {
            let b = batcher.clone();
            std::thread::spawn(move || b.run_loop(echo))
        };
        let rx = batcher.submit(query(42)).expect("open");
        let answered = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("deadline must flush a solo query")
            .answered()
            .expect("served");
        assert_eq!(answered.topk.pois, vec![PoiId(42)]);
        batcher.close();
        loop_handle.join().expect("loop exits after close");
    }

    #[test]
    fn batch_config_resolution_prefers_cli_then_env_then_default() {
        let env = |k: &str| match k {
            "TSPN_SERVE_MAX_BATCH" => Some("16".to_string()),
            "TSPN_SERVE_DEADLINE_US" => Some("500".to_string()),
            _ => None,
        };
        // Env only.
        let r = BatchConfig::resolve(None, None, None, env);
        assert_eq!(r.max_batch, 16);
        assert_eq!(r.deadline, Duration::from_micros(500));
        assert_eq!(r.queue_cap, BatchConfig::default().queue_cap);
        // CLI beats env.
        let r = BatchConfig::resolve(Some(8), Some(1_000), Some(64), env);
        assert_eq!(r.max_batch, 8);
        assert_eq!(r.deadline, Duration::from_micros(1_000));
        assert_eq!(r.queue_cap, 64);
        // Nothing set: the documented 32 / 2 ms / 1024 defaults.
        let r = BatchConfig::resolve(None, None, None, |_| None);
        assert_eq!(r.max_batch, 32);
        assert_eq!(r.deadline, Duration::from_millis(2));
        assert_eq!(r.queue_cap, 1024);
        // Garbage or zero env values fall through to the defaults.
        let bad = |k: &str| match k {
            "TSPN_SERVE_MAX_BATCH" => Some("0".to_string()),
            "TSPN_SERVE_DEADLINE_US" => Some("soon".to_string()),
            "TSPN_SERVE_MAX_QUEUE" => Some("0".to_string()),
            _ => None,
        };
        let r = BatchConfig::resolve(None, None, None, bad);
        assert_eq!(r.max_batch, 32);
        assert_eq!(r.deadline, Duration::from_millis(2));
        assert_eq!(r.queue_cap, 1024);
        // The queue-depth env knob is honoured when parseable.
        let q = |k: &str| (k == "TSPN_SERVE_MAX_QUEUE").then(|| "7".to_string());
        assert_eq!(BatchConfig::resolve(None, None, None, q).queue_cap, 7);
    }

    #[test]
    fn close_refuses_new_submissions() {
        let batcher = Batcher::new(BatchConfig::default());
        batcher.close();
        assert_eq!(batcher.submit(query(0)).unwrap_err(), SubmitError::Closed);
    }

    #[test]
    fn close_unblocks_a_submitter_stuck_on_a_full_queue() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(1),
            queue_cap: 1,
        });
        let _held = batcher.submit(query(0)).expect("fills the queue");
        let blocked = {
            let b = batcher.clone();
            std::thread::spawn(move || b.submit(query(1)))
        };
        // Whether the second submit blocks first or observes the close
        // directly, it must resolve to Closed rather than hang.
        std::thread::sleep(Duration::from_millis(20));
        batcher.close();
        assert_eq!(blocked.join().unwrap().unwrap_err(), SubmitError::Closed);
        // The queued query still flushes on the final drain.
        batcher.run_loop(echo);
    }

    #[test]
    fn a_panicking_batch_fails_only_its_own_waiters() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 2,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let rx_bad: Vec<_> = (0..2).map(|i| batcher.submit(query(i)).unwrap()).collect();
        let rx_good: Vec<_> = (10..12)
            .map(|i| batcher.submit(query(i)).unwrap())
            .collect();
        batcher.close();
        let mut first = true;
        batcher.run_loop(|qs| {
            if std::mem::take(&mut first) {
                panic!("poisoned batch");
            }
            echo(qs)
        });
        for rx in rx_bad {
            assert!(
                rx.recv().is_err(),
                "poisoned batch waiters see a dropped channel"
            );
        }
        for (i, rx) in rx_good.into_iter().enumerate() {
            assert_eq!(
                rx.recv().unwrap().answered().unwrap().topk.pois,
                vec![PoiId(10 + i)]
            );
        }
    }

    #[test]
    fn try_submit_sheds_at_capacity_without_blocking() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(1),
            queue_cap: 2,
        });
        let _a = batcher.try_submit(query(0), None).expect("admitted");
        let _b = batcher.try_submit(query(1), None).expect("admitted");
        assert_eq!(
            batcher.try_submit(query(2), None).unwrap_err(),
            SubmitError::QueueFull,
            "third admission over a cap of 2 is shed immediately"
        );
        // A queue full of *expired* entries must not shed live requests:
        // the sweep runs before the verdict.
        let past = Instant::now() - Duration::from_millis(1);
        let dead = Batcher::new(BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(1),
            queue_cap: 2,
        });
        let d0 = dead.try_submit(query(0), Some(past)).expect("admitted");
        let d1 = dead.try_submit(query(1), Some(past)).expect("admitted");
        let live = dead.try_submit(query(2), None);
        assert!(live.is_ok(), "sweep frees seats held by expired entries");
        assert_eq!(d0.recv().unwrap(), Verdict::Expired);
        assert_eq!(d1.recv().unwrap(), Verdict::Expired);
        assert_eq!(dead.shed_expired_total(), 2);
        // Closed still wins over full.
        batcher.close();
        assert_eq!(
            batcher.try_submit(query(3), None).unwrap_err(),
            SubmitError::Closed
        );
    }

    #[test]
    fn expired_entries_are_dropped_before_the_flush() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let past = Instant::now() - Duration::from_millis(1);
        let future = Instant::now() + Duration::from_secs(60);
        let rx_dead = batcher.try_submit(query(0), Some(past)).unwrap();
        let rx_live = batcher.try_submit(query(1), Some(future)).unwrap();
        let rx_open = batcher.try_submit(query(2), None).unwrap();
        batcher.close();
        let mut seen: Vec<usize> = Vec::new();
        batcher.run_loop(|qs| {
            seen.extend(
                qs.iter()
                    .map(|q| q.indexed_sample().expect("indexed").user_index),
            );
            echo(qs)
        });
        assert_eq!(seen, vec![1, 2], "the expired query never reaches serve");
        assert_eq!(rx_dead.recv().unwrap(), Verdict::Expired);
        assert_eq!(
            rx_live.recv().unwrap().answered().unwrap().topk.pois,
            vec![PoiId(1)]
        );
        assert_eq!(
            rx_open.recv().unwrap().answered().unwrap().topk.pois,
            vec![PoiId(2)]
        );
        assert_eq!(batcher.shed_expired_total(), 1);
    }

    #[test]
    fn run_supervised_reports_the_panic_and_resumes_where_it_left_off() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 2,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let rx_bad: Vec<_> = (0..2).map(|i| batcher.submit(query(i)).unwrap()).collect();
        let rx_good: Vec<_> = (10..12)
            .map(|i| batcher.submit(query(i)).unwrap())
            .collect();
        batcher.close();
        // First supervised run: the first flush panics, control returns.
        let exit = batcher.run_supervised(|_| panic!("injected"));
        assert_eq!(exit, LoopExit::Panicked);
        for rx in rx_bad {
            assert!(rx.recv().is_err(), "poisoned batch failed");
        }
        // The supervisor "repairs" and re-enters: queued work is intact
        // and batch ids continue (no restart from 1).
        assert_eq!(batcher.run_supervised(echo), LoopExit::Drained);
        for (i, rx) in rx_good.into_iter().enumerate() {
            let answered = rx.recv().unwrap().answered().unwrap();
            assert_eq!(answered.topk.pois, vec![PoiId(10 + i)]);
            assert_eq!(answered.batch, 2, "batch numbering survives the restart");
        }
    }

    #[test]
    fn with_ids_issues_a_stride_partitioned_sequence() {
        // Lane 1 of 3: ids 2, 5, 8, … — disjoint from every other lane.
        let batcher = Batcher::with_ids(
            BatchConfig {
                max_batch: 1,
                deadline: Duration::from_millis(0),
                queue_cap: 64,
            },
            2,
            3,
        );
        let rxs: Vec<_> = (0..3).map(|i| batcher.submit(query(i)).unwrap()).collect();
        batcher.close();
        assert_eq!(batcher.run_supervised(echo), LoopExit::Drained);
        let ids: Vec<u64> = rxs
            .into_iter()
            .map(|rx| rx.recv().unwrap().answered().unwrap().batch)
            .collect();
        assert_eq!(ids, vec![2, 5, 8]);
    }
}
