//! The request micro-batcher: a bounded queue that coalesces concurrent
//! `/predict` requests into one batched `no_grad` forward.
//!
//! Handler threads [`Batcher::submit`] queries and block on a per-request
//! channel; the single batcher thread collects a batch and answers it with
//! one `Predictor::predict_batch` call (which shards across the persistent
//! worker pool). A batch flushes when it reaches `max_batch` queries **or**
//! when `deadline` has elapsed since the oldest queued query — so an idle
//! server answers a lone request within ~`deadline`, and a busy server
//! amortises the per-flush costs (parameter checks, table reuse, pool
//! dispatch) across up to `max_batch` requests.
//!
//! The queue is bounded (`queue_cap`): submitters block when the server is
//! `queue_cap` requests behind, which backpressures clients instead of
//! growing memory without limit.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tspn_core::{Query, TopK};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch one flush may take.
    pub max_batch: usize,
    /// Longest a queued query may wait for companions before its batch
    /// flushes anyway.
    pub deadline: Duration,
    /// Bound on queued (not yet flushed) queries; submitters block beyond
    /// this.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            deadline: Duration::from_millis(2),
            queue_cap: 1024,
        }
    }
}

impl BatchConfig {
    /// Resolves the tunable knobs from CLI flags and the environment:
    /// an explicit CLI value wins, then `TSPN_SERVE_MAX_BATCH` /
    /// `TSPN_SERVE_DEADLINE_US`, then the defaults (32 / 2 ms). A flush
    /// is one batched forward, so these two directly trade tail latency
    /// against per-query amortisation under load. Unparseable (or zero
    /// `max_batch`) environment values are ignored rather than fatal —
    /// a fleet-wide env typo must not take serving down.
    pub fn resolve(
        cli_max_batch: Option<usize>,
        cli_deadline_us: Option<u64>,
        env: impl Fn(&str) -> Option<String>,
    ) -> BatchConfig {
        let default = BatchConfig::default();
        let max_batch = cli_max_batch
            .or_else(|| {
                env("TSPN_SERVE_MAX_BATCH")
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
            .unwrap_or(default.max_batch);
        let deadline = cli_deadline_us
            .or_else(|| env("TSPN_SERVE_DEADLINE_US").and_then(|v| v.trim().parse::<u64>().ok()))
            .map(Duration::from_micros)
            .unwrap_or(default.deadline);
        BatchConfig {
            max_batch,
            deadline,
            ..default
        }
    }
}

/// The answer a waiting handler receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answered {
    /// The prediction.
    pub topk: TopK,
    /// The parameter-snapshot version the whole batch ran under.
    pub snapshot: u64,
    /// The flush sequence number (all queries of one flush share it).
    pub batch: u64,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The batcher has been closed (server shutting down).
    Closed,
}

struct Waiting {
    query: Query,
    tx: mpsc::SyncSender<Answered>,
    /// When the query entered the queue; the flush deadline runs from the
    /// oldest entry, not from when the batcher got around to looking.
    enqueued: Instant,
}

struct Shared {
    queue: Mutex<State>,
    /// Signalled when the queue gains an element or closes.
    nonempty: Condvar,
    /// Signalled when the queue loses elements or closes.
    space: Condvar,
}

struct State {
    waiting: VecDeque<Waiting>,
    open: bool,
}

/// Handle to the shared batching queue (clone-cheap).
#[derive(Clone)]
pub struct Batcher {
    cfg: BatchConfig,
    shared: Arc<Shared>,
}

impl Batcher {
    /// A new, open batcher.
    pub fn new(cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be positive");
        assert!(cfg.queue_cap >= 1, "queue_cap must be positive");
        Batcher {
            cfg,
            shared: Arc::new(Shared {
                queue: Mutex::new(State {
                    waiting: VecDeque::new(),
                    open: true,
                }),
                nonempty: Condvar::new(),
                space: Condvar::new(),
            }),
        }
    }

    /// Enqueues one query, blocking while the queue is at capacity, and
    /// returns the channel the answer will arrive on.
    ///
    /// # Errors
    /// [`SubmitError::Closed`] once [`Batcher::close`] has been called.
    pub fn submit(&self, query: Query) -> Result<mpsc::Receiver<Answered>, SubmitError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let mut state = self.shared.queue.lock().expect("batcher queue");
        while state.open && state.waiting.len() >= self.cfg.queue_cap {
            state = self.shared.space.wait(state).expect("batcher queue");
        }
        if !state.open {
            return Err(SubmitError::Closed);
        }
        state.waiting.push_back(Waiting {
            query,
            tx,
            enqueued: Instant::now(),
        });
        drop(state);
        self.shared.nonempty.notify_all();
        Ok(rx)
    }

    /// Number of queries currently queued (diagnostics only).
    pub fn queue_len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("batcher queue")
            .waiting
            .len()
    }

    /// Closes the queue: pending queries still flush, new submissions are
    /// refused, and [`Batcher::run_loop`] returns once drained.
    pub fn close(&self) {
        self.shared.queue.lock().expect("batcher queue").open = false;
        self.shared.nonempty.notify_all();
        self.shared.space.notify_all();
    }

    /// The batcher thread's main loop. `serve` answers one batch of
    /// queries and names the parameter-snapshot version it ran under; it
    /// is invoked strictly between flush boundaries, so one batch can
    /// never observe two snapshots. Returns when the batcher is closed and
    /// the queue has drained.
    ///
    /// A panicking `serve` call fails only its own batch (the waiters'
    /// channels drop, surfacing an error to each handler); the loop keeps
    /// serving subsequent batches.
    pub fn run_loop(&self, mut serve: impl FnMut(&[Query]) -> (Vec<TopK>, u64)) {
        let mut batch_id = 0u64;
        loop {
            let Some(pending) = self.collect_batch() else {
                return;
            };
            batch_id += 1;
            let queries: Vec<Query> = pending.iter().map(|w| w.query.clone()).collect();
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve(&queries)));
            match outcome {
                Ok((answers, snapshot)) => {
                    debug_assert_eq!(answers.len(), pending.len());
                    for (w, topk) in pending.into_iter().zip(answers) {
                        // A handler that timed out and left is fine to miss.
                        let _ = w.tx.send(Answered {
                            topk,
                            snapshot,
                            batch: batch_id,
                        });
                    }
                }
                Err(_) => {
                    // Dropping the waiters closes their channels; each
                    // handler answers 500 for exactly this batch.
                    drop(pending);
                }
            }
        }
    }

    /// Blocks until a batch is ready (first query + deadline/max-batch
    /// policy) or the batcher is closed and empty (`None`).
    fn collect_batch(&self) -> Option<Vec<Waiting>> {
        let mut state = self.shared.queue.lock().expect("batcher queue");
        // Phase 1: wait for the first query (or close-and-drained).
        loop {
            if !state.waiting.is_empty() {
                break;
            }
            if !state.open {
                return None;
            }
            state = self.shared.nonempty.wait(state).expect("batcher queue");
        }
        // Phase 2: give companions `deadline` to arrive, up to `max_batch`.
        // The clock runs from the *oldest* queued query, so work that
        // queued while a previous flush was running is not re-penalised.
        let oldest = state
            .waiting
            .front()
            .expect("phase 1 leaves the queue non-empty")
            .enqueued;
        let flush_at = oldest + self.cfg.deadline;
        while state.waiting.len() < self.cfg.max_batch && state.open {
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            let (guard, _timeout) = self
                .shared
                .nonempty
                .wait_timeout(state, flush_at - now)
                .expect("batcher queue");
            state = guard;
        }
        let take = state.waiting.len().min(self.cfg.max_batch);
        let batch: Vec<Waiting> = state.waiting.drain(..take).collect();
        drop(state);
        self.shared.space.notify_all();
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::{PoiId, Sample};

    fn query(tag: usize) -> Query {
        // Encode an identity in the sample so the fake server can echo it.
        Query::with_top(
            Sample {
                user_index: tag,
                traj_index: 0,
                prefix_len: 1,
            },
            1,
            4,
        )
    }

    /// Fake model: answers each query with its tag as a PoiId.
    fn echo(queries: &[Query]) -> (Vec<TopK>, u64) {
        let answers = queries
            .iter()
            .map(|q| TopK {
                pois: vec![PoiId(
                    q.indexed_sample()
                        .expect("test queries are indexed")
                        .user_index,
                )],
                tiles: Vec::new(),
                candidate_count: 1,
            })
            .collect();
        (answers, 7)
    }

    #[test]
    fn queued_backlog_flushes_in_max_batch_chunks_in_order() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let receivers: Vec<_> = (0..10)
            .map(|i| batcher.submit(query(i)).expect("open"))
            .collect();
        batcher.close();
        let mut sizes = Vec::new();
        batcher.run_loop(|qs| {
            sizes.push(qs.len());
            echo(qs)
        });
        assert_eq!(sizes, vec![4, 4, 2], "backlog drains in max_batch chunks");
        for (i, rx) in receivers.into_iter().enumerate() {
            let answered = rx.recv().expect("answered before close finished");
            assert_eq!(answered.topk.pois, vec![PoiId(i)], "answers follow queries");
            assert_eq!(answered.snapshot, 7);
        }
    }

    #[test]
    fn batch_ids_partition_the_backlog() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 3,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let receivers: Vec<_> = (0..7)
            .map(|i| batcher.submit(query(i)).expect("open"))
            .collect();
        batcher.close();
        batcher.run_loop(echo);
        let batches: Vec<u64> = receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap().batch)
            .collect();
        assert_eq!(batches, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn deadline_flushes_a_lone_query() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 64,
            deadline: Duration::from_millis(5),
            queue_cap: 64,
        });
        let loop_handle = {
            let b = batcher.clone();
            std::thread::spawn(move || b.run_loop(echo))
        };
        let rx = batcher.submit(query(42)).expect("open");
        let answered = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("deadline must flush a solo query");
        assert_eq!(answered.topk.pois, vec![PoiId(42)]);
        batcher.close();
        loop_handle.join().expect("loop exits after close");
    }

    #[test]
    fn batch_config_resolution_prefers_cli_then_env_then_default() {
        let env = |k: &str| match k {
            "TSPN_SERVE_MAX_BATCH" => Some("16".to_string()),
            "TSPN_SERVE_DEADLINE_US" => Some("500".to_string()),
            _ => None,
        };
        // Env only.
        let r = BatchConfig::resolve(None, None, env);
        assert_eq!(r.max_batch, 16);
        assert_eq!(r.deadline, Duration::from_micros(500));
        assert_eq!(r.queue_cap, BatchConfig::default().queue_cap);
        // CLI beats env.
        let r = BatchConfig::resolve(Some(8), Some(1_000), env);
        assert_eq!(r.max_batch, 8);
        assert_eq!(r.deadline, Duration::from_micros(1_000));
        // Nothing set: the documented 32 / 2 ms defaults.
        let r = BatchConfig::resolve(None, None, |_| None);
        assert_eq!(r.max_batch, 32);
        assert_eq!(r.deadline, Duration::from_millis(2));
        // Garbage or zero env values fall through to the defaults.
        let bad = |k: &str| match k {
            "TSPN_SERVE_MAX_BATCH" => Some("0".to_string()),
            "TSPN_SERVE_DEADLINE_US" => Some("soon".to_string()),
            _ => None,
        };
        let r = BatchConfig::resolve(None, None, bad);
        assert_eq!(r.max_batch, 32);
        assert_eq!(r.deadline, Duration::from_millis(2));
    }

    #[test]
    fn close_refuses_new_submissions() {
        let batcher = Batcher::new(BatchConfig::default());
        batcher.close();
        assert_eq!(batcher.submit(query(0)).unwrap_err(), SubmitError::Closed);
    }

    #[test]
    fn close_unblocks_a_submitter_stuck_on_a_full_queue() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(1),
            queue_cap: 1,
        });
        let _held = batcher.submit(query(0)).expect("fills the queue");
        let blocked = {
            let b = batcher.clone();
            std::thread::spawn(move || b.submit(query(1)))
        };
        // Whether the second submit blocks first or observes the close
        // directly, it must resolve to Closed rather than hang.
        std::thread::sleep(Duration::from_millis(20));
        batcher.close();
        assert_eq!(blocked.join().unwrap().unwrap_err(), SubmitError::Closed);
        // The queued query still flushes on the final drain.
        batcher.run_loop(echo);
    }

    #[test]
    fn a_panicking_batch_fails_only_its_own_waiters() {
        let batcher = Batcher::new(BatchConfig {
            max_batch: 2,
            deadline: Duration::from_millis(0),
            queue_cap: 64,
        });
        let rx_bad: Vec<_> = (0..2).map(|i| batcher.submit(query(i)).unwrap()).collect();
        let rx_good: Vec<_> = (10..12)
            .map(|i| batcher.submit(query(i)).unwrap())
            .collect();
        batcher.close();
        let mut first = true;
        batcher.run_loop(|qs| {
            if std::mem::take(&mut first) {
                panic!("poisoned batch");
            }
            echo(qs)
        });
        for rx in rx_bad {
            assert!(
                rx.recv().is_err(),
                "poisoned batch waiters see a dropped channel"
            );
        }
        for (i, rx) in rx_good.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap().topk.pois, vec![PoiId(10 + i)]);
        }
    }
}
