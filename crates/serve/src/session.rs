//! The server-side session store for the stateful v1 flow.
//!
//! A **session** is a per-user trajectory accumulated incrementally:
//! `POST /v1/sessions` creates one, `POST /v1/sessions/{id}/checkins`
//! appends observed visits, and `POST /v1/sessions/{id}/predict` runs the
//! model on the accumulated sequence — so a client streams check-ins as
//! they happen instead of re-sending its whole history per prediction.
//!
//! The store is **bounded** two ways:
//!
//! * **TTL** — a session idle longer than `ttl` is expired (lazily, on
//!   the next store operation; no background thread). Any touch —
//!   append, predict, info — refreshes the clock.
//! * **Capacity** — at `max_sessions` live sessions, creating another
//!   evicts the longest-idle one (LRU by last touch).
//!
//! Session ids are issued from a monotonic counter (`"s1"`, `"s2"`, …),
//! which makes *gone* distinguishable from *never existed* without
//! tombstones: an id below the counter that is no longer live was
//! expired/evicted/deleted (HTTP `410 Gone`), an id at or above it was
//! never issued (`404 Not Found`).
//!
//! Per-session visit history is also bounded (`max_visits`, FIFO): the
//! model windows its inputs to `max_history + max_prefix` visits anyway,
//! so dropping the far past never changes a prediction as long as the
//! cap comfortably exceeds that window.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tspn_data::Visit;

/// Session-store knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Idle time after which a session expires.
    pub ttl: Duration,
    /// Most live sessions held at once; creation past this evicts the
    /// longest-idle session.
    pub max_sessions: usize,
    /// Most visits retained per session (oldest dropped first).
    pub max_visits: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            ttl: Duration::from_secs(15 * 60),
            max_sessions: 4096,
            max_visits: 1024,
        }
    }
}

impl SessionConfig {
    /// Resolves the tunable knobs CLI → environment → default, mirroring
    /// [`crate::BatchConfig::resolve`]: an explicit CLI value wins, then
    /// `TSPN_SERVE_SESSION_TTL_MS` / `TSPN_SERVE_MAX_SESSIONS`, then the
    /// defaults (15 min / 4096). Unparseable or zero values — from either
    /// source — are ignored rather than fatal (a zero TTL would make
    /// every session instantly gone, and a zero capacity would fail the
    /// store's constructor).
    pub fn resolve(
        cli_ttl_ms: Option<u64>,
        cli_max_sessions: Option<usize>,
        env: impl Fn(&str) -> Option<String>,
    ) -> SessionConfig {
        let default = SessionConfig::default();
        let ttl = cli_ttl_ms
            .filter(|&n| n >= 1)
            .or_else(|| {
                env("TSPN_SERVE_SESSION_TTL_MS")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .filter(|&n| n >= 1)
            })
            .map(Duration::from_millis)
            .unwrap_or(default.ttl);
        let max_sessions = cli_max_sessions
            .filter(|&n| n >= 1)
            .or_else(|| {
                env("TSPN_SERVE_MAX_SESSIONS")
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
            .unwrap_or(default.max_sessions);
        SessionConfig {
            ttl,
            max_sessions,
            ..default
        }
    }
}

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The id was never issued by this store.
    Unknown,
    /// The id existed but has expired, been evicted, or been deleted.
    Gone,
    /// An appended visit is earlier than the session's newest visit (or
    /// the appended run is internally unordered) — names the offending
    /// 0-based index within the appended run.
    Unordered(usize),
}

/// One live session.
#[derive(Debug)]
struct Session {
    user: usize,
    visits: Vec<Visit>,
    last_touch: Instant,
}

/// A session's client-visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's user id (opaque to the model).
    pub user: usize,
    /// Retained visit count.
    pub checkins: usize,
    /// Milliseconds since the last touch.
    pub idle_ms: u64,
}

/// Occupancy and lifecycle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Live sessions right now.
    pub live: usize,
    /// Sessions ever created.
    pub created: u64,
    /// TTL expirations so far.
    pub expired: u64,
    /// Capacity (LRU) evictions so far.
    pub evicted: u64,
}

struct Inner {
    sessions: HashMap<u64, Session>,
    /// Next id to issue; issued ids that are not live are Gone.
    next_id: u64,
    /// First id this store may issue — see [`crate::shard::IdPartition`].
    first_id: u64,
    /// Distance between consecutive issued ids. A lane-partitioned server
    /// gives each lane's store a disjoint residue class so an id names
    /// its lane (and, across a fleet, its backend) arithmetically.
    id_stride: u64,
    created: u64,
    expired: u64,
    evicted: u64,
}

/// The bounded, TTL-evicting session store (thread-safe; handler threads
/// share it directly — no model state lives here).
pub struct SessionStore {
    cfg: SessionConfig,
    inner: Mutex<Inner>,
}

impl SessionStore {
    /// An empty store issuing ids `1, 2, 3, …`.
    pub fn new(cfg: SessionConfig) -> Self {
        SessionStore::with_ids(cfg, 1, 1)
    }

    /// An empty store issuing ids from the stride-partitioned sequence
    /// `first, first + stride, …`. Ids from a foreign residue class are
    /// always [`SessionError::Unknown`] here — they belong to another
    /// lane or backend and were never issued by this store.
    pub fn with_ids(cfg: SessionConfig, first: u64, stride: u64) -> Self {
        assert!(cfg.max_sessions >= 1, "max_sessions must be positive");
        assert!(cfg.max_visits >= 1, "max_visits must be positive");
        assert!(first >= 1, "session ids start at 1");
        assert!(stride >= 1, "session id stride must be positive");
        SessionStore {
            cfg,
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                next_id: first,
                first_id: first,
                id_stride: stride,
                created: 0,
                expired: 0,
                evicted: 0,
            }),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> SessionConfig {
        self.cfg
    }

    /// Creates a session for `user`, atomically seeded with `seed` (which
    /// may be empty), evicting the longest-idle session first when at
    /// capacity. Returns `(issued id, retained visit count)`. Creation is
    /// all-or-nothing: an invalid seed issues no id and evicts nothing.
    ///
    /// # Errors
    /// [`SessionError::Unordered`] when the seed run regresses in time.
    pub fn create(&self, user: usize, seed: &[Visit]) -> Result<(u64, usize), SessionError> {
        check_run_order(seed, None)?;
        let mut inner = self.lock_full_sweep();
        if inner.sessions.len() >= self.cfg.max_sessions {
            if let Some((&victim, _)) = inner.sessions.iter().min_by_key(|(_, s)| s.last_touch) {
                inner.sessions.remove(&victim);
                inner.evicted += 1;
            }
        }
        let id = inner.next_id;
        inner.next_id += inner.id_stride;
        inner.created += 1;
        let mut visits = seed.to_vec();
        if visits.len() > self.cfg.max_visits {
            let overflow = visits.len() - self.cfg.max_visits;
            visits.drain(..overflow);
        }
        let count = visits.len();
        inner.sessions.insert(
            id,
            Session {
                user,
                visits,
                last_touch: Instant::now(),
            },
        );
        Ok((id, count))
    }

    /// Appends a time-ordered visit run to a session, returning the total
    /// retained visit count. Refreshes the TTL clock.
    ///
    /// # Errors
    /// [`SessionError::Unknown`]/[`SessionError::Gone`] for bad ids;
    /// [`SessionError::Unordered`] when the run regresses in time (the
    /// session is left untouched — appends are all-or-nothing).
    pub fn append(&self, id: u64, visits: &[Visit]) -> Result<usize, SessionError> {
        let mut inner = self.lock_expiring(id);
        let status = Self::status_of(&inner, id);
        let session = inner.sessions.get_mut(&id).ok_or(status)?;
        check_run_order(visits, session.visits.last().map(|v| v.time))?;
        session.visits.extend_from_slice(visits);
        if session.visits.len() > self.cfg.max_visits {
            let overflow = session.visits.len() - self.cfg.max_visits;
            session.visits.drain(..overflow);
        }
        session.last_touch = Instant::now();
        Ok(session.visits.len())
    }

    /// The session's user and a snapshot of its visits (what a predict
    /// runs on). Refreshes the TTL clock.
    ///
    /// # Errors
    /// [`SessionError::Unknown`] or [`SessionError::Gone`].
    pub fn snapshot(&self, id: u64) -> Result<(usize, Vec<Visit>), SessionError> {
        let mut inner = self.lock_expiring(id);
        let status = Self::status_of(&inner, id);
        let session = inner.sessions.get_mut(&id).ok_or(status)?;
        session.last_touch = Instant::now();
        Ok((session.user, session.visits.clone()))
    }

    /// Client-visible session state. Does **not** refresh the TTL clock
    /// (peeking at a session should not keep it alive).
    ///
    /// # Errors
    /// [`SessionError::Unknown`] or [`SessionError::Gone`].
    pub fn info(&self, id: u64) -> Result<SessionInfo, SessionError> {
        let inner = self.lock_expiring(id);
        let status = Self::status_of(&inner, id);
        let session = inner.sessions.get(&id).ok_or(status)?;
        Ok(SessionInfo {
            user: session.user,
            checkins: session.visits.len(),
            idle_ms: session.last_touch.elapsed().as_millis() as u64,
        })
    }

    /// Deletes a session (it subsequently reports [`SessionError::Gone`]).
    ///
    /// # Errors
    /// [`SessionError::Unknown`] or [`SessionError::Gone`].
    pub fn delete(&self, id: u64) -> Result<(), SessionError> {
        let mut inner = self.lock_expiring(id);
        let status = Self::status_of(&inner, id);
        inner.sessions.remove(&id).map(|_| ()).ok_or(status)
    }

    /// Occupancy and lifecycle counters (full sweep first, so `live`
    /// never counts sessions that are already past their TTL).
    pub fn stats(&self) -> SessionStats {
        let inner = self.lock_full_sweep();
        SessionStats {
            live: inner.sessions.len(),
            created: inner.created,
            expired: inner.expired,
            evicted: inner.evicted,
        }
    }

    /// Error for a missing id: an id this store issued (in its residue
    /// class, below the counter) once existed and is Gone; anything else
    /// — including another lane's ids — was never issued here.
    fn status_of(inner: &Inner, id: u64) -> SessionError {
        let issued_here = id >= inner.first_id
            && id < inner.next_id
            && (id - inner.first_id).is_multiple_of(inner.id_stride);
        if issued_here {
            SessionError::Gone
        } else {
            SessionError::Unknown
        }
    }

    /// Locks the store, expiring only the accessed session when it is
    /// past its TTL — O(1), so the per-request session operations never
    /// scan the whole store under the global mutex. Other expired
    /// sessions linger until a create or stats call sweeps them; they
    /// can never be *observed* alive, because every access path expires
    /// its own id first.
    fn lock_expiring(&self, id: u64) -> std::sync::MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner
            .sessions
            .get(&id)
            .is_some_and(|s| s.last_touch.elapsed() > self.cfg.ttl)
        {
            inner.sessions.remove(&id);
            inner.expired += 1;
        }
        inner
    }

    /// Locks the store and expires every over-TTL session — the
    /// O(live-sessions) path, reserved for creation (so capacity
    /// eviction never victimises a live session while expired ones
    /// linger) and stats reporting.
    fn lock_full_sweep(&self) -> std::sync::MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let ttl = self.cfg.ttl;
        let before = inner.sessions.len();
        inner.sessions.retain(|_, s| s.last_touch.elapsed() <= ttl);
        inner.expired += (before - inner.sessions.len()) as u64;
        inner
    }
}

/// Validates that `visits` is internally time-ordered and does not
/// regress below `floor` (the session's newest visit, for appends).
///
/// # Errors
/// [`SessionError::Unordered`] naming the offending 0-based index.
fn check_run_order(visits: &[Visit], floor: Option<i64>) -> Result<(), SessionError> {
    let mut last = floor;
    for (i, v) in visits.iter().enumerate() {
        if last.is_some_and(|t| v.time < t) {
            return Err(SessionError::Unordered(i));
        }
        last = Some(v.time);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::PoiId;

    fn v(poi: usize, t: i64) -> Visit {
        Visit {
            poi: PoiId(poi),
            time: t,
        }
    }

    fn store(ttl_ms: u64, max_sessions: usize, max_visits: usize) -> SessionStore {
        SessionStore::new(SessionConfig {
            ttl: Duration::from_millis(ttl_ms),
            max_sessions,
            max_visits,
        })
    }

    #[test]
    fn create_append_snapshot_roundtrip() {
        let s = store(60_000, 8, 64);
        let id = s.create(42, &[]).unwrap().0;
        assert_eq!(s.append(id, &[v(1, 0), v(2, 10)]).unwrap(), 2);
        assert_eq!(s.append(id, &[v(3, 10)]).unwrap(), 3); // ties are ordered
        let (user, visits) = s.snapshot(id).unwrap();
        assert_eq!(user, 42);
        assert_eq!(visits, vec![v(1, 0), v(2, 10), v(3, 10)]);
        let info = s.info(id).unwrap();
        assert_eq!((info.user, info.checkins), (42, 3));
    }

    #[test]
    fn unordered_appends_are_rejected_atomically() {
        let s = store(60_000, 8, 64);
        let id = s.create(0, &[]).unwrap().0;
        s.append(id, &[v(1, 100)]).unwrap();
        // Regresses against the stored tail.
        assert_eq!(s.append(id, &[v(2, 50)]), Err(SessionError::Unordered(0)));
        // Internally unordered run: nothing of it lands.
        assert_eq!(
            s.append(id, &[v(2, 200), v(3, 150)]),
            Err(SessionError::Unordered(1))
        );
        assert_eq!(s.snapshot(id).unwrap().1, vec![v(1, 100)]);
    }

    #[test]
    fn unknown_vs_gone_distinction() {
        let s = store(60_000, 8, 64);
        assert_eq!(s.info(1), Err(SessionError::Unknown)); // never issued
        let id = s.create(0, &[]).unwrap().0;
        s.delete(id).unwrap();
        assert_eq!(s.info(id), Err(SessionError::Gone));
        assert_eq!(s.delete(id), Err(SessionError::Gone));
        assert_eq!(s.append(id, &[v(1, 0)]), Err(SessionError::Gone));
        assert_eq!(s.info(id + 1), Err(SessionError::Unknown));
        assert_eq!(s.info(0), Err(SessionError::Unknown));
    }

    #[test]
    fn concurrent_churn_never_loses_appends_and_keeps_gone_vs_unknown() {
        // Four threads churn sessions through a 4-slot store, so capacity
        // eviction races every create/append/snapshot. The contract under
        // fire: an append either lands atomically (the returned total is
        // exactly the previous total plus one) or fails typed `Gone`;
        // a snapshot observes the exact ordered prefix of successful
        // appends (no torn or lost writes); and evicted ids stay `Gone`
        // (410) while never-issued ids stay `Unknown` (404).
        let s = store(60_000, 4, 64);
        let threads = 4usize;
        let per_thread = 50usize;
        let all_ids: Vec<u64> = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..threads {
                let s = &s;
                joins.push(scope.spawn(move || {
                    let mut ids = Vec::new();
                    for _ in 0..per_thread {
                        let id = s.create(t, &[]).expect("create always succeeds").0;
                        ids.push(id);
                        let mut appended = 0usize;
                        for j in 0..5usize {
                            match s.append(id, &[v(j + 1, j as i64 * 10)]) {
                                Ok(total) => {
                                    assert_eq!(total, appended + 1, "torn append count");
                                    appended += 1;
                                }
                                Err(SessionError::Gone) => break, // racing eviction
                                Err(e) => panic!("append failed untyped: {e:?}"),
                            }
                        }
                        match s.snapshot(id) {
                            Ok((user, visits)) => {
                                assert_eq!(user, t);
                                let expect: Vec<Visit> =
                                    (0..appended).map(|j| v(j + 1, j as i64 * 10)).collect();
                                assert_eq!(visits, expect, "lost or torn appends");
                            }
                            Err(SessionError::Gone) => {}
                            Err(e) => panic!("snapshot failed untyped: {e:?}"),
                        }
                    }
                    ids
                }));
            }
            joins
                .into_iter()
                .flat_map(|j| j.join().expect("churn thread"))
                .collect()
        });

        // Ids are never reused and never forgotten: every issued id is
        // either still live or typed Gone — present-tense Unknown is
        // reserved for ids the store never issued.
        assert_eq!(all_ids.len(), threads * per_thread);
        let mut unique = all_ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), all_ids.len(), "session ids were reused");
        for id in &all_ids {
            match s.info(*id) {
                Ok(_) | Err(SessionError::Gone) => {}
                Err(e) => panic!("issued id {id} reports {e:?}"),
            }
        }
        assert_eq!(s.info(u64::MAX), Err(SessionError::Unknown));

        let stats = s.stats();
        assert_eq!(stats.created as usize, threads * per_thread);
        assert!(stats.live <= 4, "live {} exceeds capacity", stats.live);
        assert!(stats.evicted > 0, "churn never evicted through capacity");
    }

    #[test]
    fn ttl_expires_idle_sessions() {
        let s = store(30, 8, 64);
        let id = s.create(7, &[]).unwrap().0;
        s.append(id, &[v(1, 0)]).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(s.snapshot(id), Err(SessionError::Gone));
        let stats = s.stats();
        assert_eq!((stats.live, stats.expired), (0, 1));
        // A touched session survives its original deadline.
        let id2 = s.create(8, &[]).unwrap().0;
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(15));
            assert!(s.snapshot(id2).is_ok(), "touches must refresh the TTL");
        }
    }

    #[test]
    fn capacity_evicts_the_longest_idle_session() {
        let s = store(60_000, 2, 64);
        let a = s.create(1, &[]).unwrap().0;
        std::thread::sleep(Duration::from_millis(5));
        let b = s.create(2, &[]).unwrap().0;
        std::thread::sleep(Duration::from_millis(5));
        // Touch `a` so `b` is now the longest idle.
        s.snapshot(a).unwrap();
        let c = s.create(3, &[]).unwrap().0;
        assert!(s.info(a).is_ok());
        assert_eq!(s.info(b), Err(SessionError::Gone));
        assert!(s.info(c).is_ok());
        let stats = s.stats();
        assert_eq!((stats.live, stats.evicted, stats.created), (2, 1, 3));
    }

    #[test]
    fn seeded_create_is_atomic() {
        let s = store(60_000, 1, 4);
        // A valid seed lands in one store operation (no create/append
        // window a racing eviction could split).
        let (id, count) = s.create(5, &[v(1, 0), v(2, 10)]).unwrap();
        assert_eq!(count, 2);
        assert_eq!(s.snapshot(id).unwrap().1.len(), 2);
        // An unordered seed issues no id and evicts nothing.
        let before = s.stats();
        assert_eq!(
            s.create(6, &[v(1, 10), v(2, 5)]),
            Err(SessionError::Unordered(1))
        );
        let after = s.stats();
        assert_eq!(before, after, "failed create must not change the store");
        assert!(s.info(id).is_ok(), "existing session untouched");
        // Oversized seeds truncate like appends (oldest dropped).
        let run: Vec<Visit> = (0..6).map(|i| v(i, i as i64)).collect();
        let (id2, count) = s.create(7, &run).unwrap();
        assert_eq!(count, 4);
        assert_eq!(s.snapshot(id2).unwrap().1, run[2..].to_vec());
    }

    #[test]
    fn visit_cap_drops_the_oldest() {
        let s = store(60_000, 2, 4);
        let id = s.create(0, &[]).unwrap().0;
        let run: Vec<Visit> = (0..6).map(|i| v(i, i as i64)).collect();
        assert_eq!(s.append(id, &run).unwrap(), 4);
        let (_, visits) = s.snapshot(id).unwrap();
        assert_eq!(visits, run[2..].to_vec());
    }

    #[test]
    fn config_resolution_prefers_cli_then_env_then_default() {
        let env = |k: &str| match k {
            "TSPN_SERVE_SESSION_TTL_MS" => Some("250".to_string()),
            "TSPN_SERVE_MAX_SESSIONS" => Some("9".to_string()),
            _ => None,
        };
        let r = SessionConfig::resolve(None, None, env);
        assert_eq!(r.ttl, Duration::from_millis(250));
        assert_eq!(r.max_sessions, 9);
        let r = SessionConfig::resolve(Some(1_000), Some(3), env);
        assert_eq!(r.ttl, Duration::from_millis(1_000));
        assert_eq!(r.max_sessions, 3);
        // Zero CLI values are ignored like zero env values (a zero TTL
        // or capacity would break the store), falling through to env.
        let r = SessionConfig::resolve(Some(0), Some(0), env);
        assert_eq!(r.ttl, Duration::from_millis(250));
        assert_eq!(r.max_sessions, 9);
        let r = SessionConfig::resolve(None, None, |_| None);
        assert_eq!(r.ttl, SessionConfig::default().ttl);
        assert_eq!(r.max_sessions, SessionConfig::default().max_sessions);
        // Garbage or zero env values fall back to defaults.
        let bad = |k: &str| match k {
            "TSPN_SERVE_SESSION_TTL_MS" => Some("0".to_string()),
            "TSPN_SERVE_MAX_SESSIONS" => Some("many".to_string()),
            _ => None,
        };
        let r = SessionConfig::resolve(None, None, bad);
        assert_eq!(r.ttl, SessionConfig::default().ttl);
        assert_eq!(r.max_sessions, SessionConfig::default().max_sessions);
    }

    #[test]
    fn stride_partitioned_stores_distinguish_gone_from_foreign_ids() {
        // Lane 1 of 2: issues 2, 4, 6, …
        let s = SessionStore::with_ids(
            SessionConfig {
                ttl: Duration::from_millis(60_000),
                max_sessions: 8,
                max_visits: 64,
            },
            2,
            2,
        );
        let a = s.create(7, &[]).unwrap().0;
        let b = s.create(9, &[]).unwrap().0;
        assert_eq!((a, b), (2, 4));
        s.delete(a).unwrap();
        assert_eq!(s.info(a).unwrap_err(), SessionError::Gone);
        // Odd ids belong to lane 0 — never issued here, so Unknown even
        // though they sit below this store's counter.
        assert_eq!(s.info(3).unwrap_err(), SessionError::Unknown);
        assert_eq!(s.info(1).unwrap_err(), SessionError::Unknown);
        // Beyond the counter is Unknown as always.
        assert_eq!(s.info(6).unwrap_err(), SessionError::Unknown);
    }
}
