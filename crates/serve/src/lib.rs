//! # tspn-serve
//!
//! The long-lived online serving layer for the TSPN-RA next-POI model:
//! a thread-per-connection HTTP/1.1 loop (no tokio — the offline build
//! vendors everything), a request micro-batcher that coalesces concurrent
//! predictions into single batched `no_grad` forwards over the persistent
//! worker pool, and an atomic checkpoint hot-swap path (`/admin/reload`)
//! that can never mix parameters within one batch.
//!
//! The client-facing surface is the versioned **`/v1` API**:
//! `POST /v1/predict` is *payload-addressed* (the request carries the raw
//! check-in sequence), and the `POST /v1/sessions` family maintains
//! per-user trajectory state server-side with incremental appends over a
//! bounded, TTL-evicting [`session::SessionStore`]. The pre-v1
//! index-addressed `POST /predict` survives as a thin adapter over the
//! same batched prediction path. Errors are typed
//! (`{"error":{"code":…,"message":…}}` with 400/404/405/410/422).
//!
//! See `crates/serve/README.md` for the full API reference, the batching
//! deadline semantics and the hot-swap contract; `serve_bench` in
//! `tspn-bench` is the matching load generator / smoke driver.

#![warn(missing_docs)]

pub mod batcher;
pub mod chaos;
pub mod client;
pub mod http;
pub mod mux;
pub mod protocol;
pub mod router;
pub mod server;
pub mod session;
pub mod shard;
pub mod snapshot;

pub use batcher::{Answered, BatchConfig, Batcher, SubmitError, Verdict};
pub use chaos::{Chaos, ChaosConfig};
pub use client::{Client, FleetClient, Response, RetryPolicy};
pub use mux::MuxConfig;
pub use protocol::{ApiError, LaneStats, StatsSnapshot, Topology};
pub use router::{start_router, RouterConfig, RouterHandle};
pub use server::{
    default_model_config, preset_dataset_config, start, BreakerConfig, ServeStats, ServerConfig,
    ServerHandle, MAX_DEADLINE_MS,
};
pub use session::{SessionConfig, SessionError, SessionInfo, SessionStats, SessionStore};
pub use shard::SHARD_FN_ID;
pub use snapshot::{PublishedCheckpoint, SnapshotHandle, BOOT_VERSION};
