//! # tspn-serve
//!
//! The long-lived online serving layer for the TSPN-RA next-POI model:
//! a thread-per-connection HTTP/1.1 loop (no tokio — the offline build
//! vendors everything), a request micro-batcher that coalesces concurrent
//! `/predict` calls into single batched `no_grad` forwards over the
//! persistent worker pool, and an atomic checkpoint hot-swap path
//! (`/admin/reload`) that can never mix parameters within one batch.
//!
//! See `crates/serve/README.md` for the wire protocol, the batching
//! deadline semantics and the hot-swap contract; `serve_bench` in
//! `tspn-bench` is the matching load generator / smoke driver.

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod http;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use batcher::{Answered, BatchConfig, Batcher, SubmitError};
pub use client::Client;
pub use server::{
    default_model_config, preset_dataset_config, start, ServeStats, ServerConfig, ServerHandle,
};
pub use snapshot::{PublishedCheckpoint, SnapshotHandle, BOOT_VERSION};
