//! A tiny blocking HTTP/1.1 client over one keep-alive connection — the
//! counterpart of [`crate::http`], shared by the integration tests, the
//! `serve_bench` load generator and the CI smoke driver.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

/// One persistent client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Issues one request and reads the full response.
    ///
    /// # Errors
    /// I/O failures or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
             Connection: keep-alive\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// `GET` shorthand.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    /// `POST` shorthand with a JSON body.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// `POST` that parses the response body as JSON.
    ///
    /// # Errors
    /// I/O failures or a response body that is not valid JSON.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<(u16, Value)> {
        let (status, text) = self.post(path, body)?;
        let value = serde_json::from_str::<Value>(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("non-JSON response {text:?}: {e}"),
            )
        })?;
        Ok((status, value))
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad Content-Length in response",
                        )
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body).map(|b| (status, b)).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response body")
        })
    }
}
