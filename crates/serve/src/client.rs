//! A tiny blocking HTTP/1.1 client over one keep-alive connection — the
//! counterpart of [`crate::http`], shared by the integration tests, the
//! `serve_bench` load generator and the CI smoke driver.
//!
//! [`Client::request_with_retry`] adds overload-aware resilience: typed
//! sheds (`429 overloaded`, `503 shutting_down`/`not_ready`) are retried
//! with capped exponential backoff plus jitter, waiting at least the
//! server's `Retry-After` hint. Transport errors are retried (with a
//! reconnect) only for **idempotent** requests — a session create or
//! check-in append whose connection died mid-flight may or may not have
//! been applied server-side, so replaying it could double-book state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

/// One full HTTP response, including the overload-control metadata the
/// retry layer keys on.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the protocol's bodies are always UTF-8 JSON).
    pub body: String,
    /// `Retry-After` seconds, when the server attached one to a shed.
    pub retry_after: Option<u64>,
}

/// Backoff policy for [`Client::request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed — deterministic per client so tests and the bench
    /// driver reproduce their schedules exactly.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0x7e57,
        }
    }
}

/// Statuses the retry layer treats as "the server explicitly shed this
/// request without processing it" — safe to replay for any method.
fn is_typed_shed(status: u16) -> bool {
    status == 429 || status == 503
}

/// Whether a request can be replayed after a *transport* failure, where
/// the client cannot know if the server applied it. Session creates and
/// check-in appends mutate server state non-idempotently; everything else
/// in the protocol (predictions, reads, deletes, admin) replays safely.
pub(crate) fn is_idempotent(method: &str, path: &str) -> bool {
    if method != "POST" {
        return true;
    }
    path != "/v1/sessions" && !path.ends_with("/checkins")
}

/// One persistent client connection.
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    rng: StdRng,
    deadline_ms: Option<u64>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Client {
            addr: addr.to_string(),
            reader: BufReader::new(Self::open(addr)?),
            rng: StdRng::seed_from_u64(RetryPolicy::default().seed),
            deadline_ms: None,
        })
    }

    /// Attaches (or clears) an `x-tspn-deadline-ms` budget sent with every
    /// subsequent request on this client.
    pub fn set_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms;
    }

    fn open(addr: &str) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(stream)
    }

    /// Drops the current connection and dials a fresh one.
    ///
    /// # Errors
    /// Connection failures.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.reader = BufReader::new(Self::open(&self.addr)?);
        Ok(())
    }

    /// Issues one request and reads the full response.
    ///
    /// # Errors
    /// I/O failures or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.request_full(method, path, body)
            .map(|r| (r.status, r.body))
    }

    /// Issues one request and reads the full response, including the
    /// `Retry-After` hint.
    ///
    /// # Errors
    /// I/O failures or a malformed response.
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let body = body.unwrap_or("");
        let deadline = self
            .deadline_ms
            .map(|ms| format!("x-tspn-deadline-ms: {ms}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
             {deadline}Connection: keep-alive\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// [`Client::request_full`] wrapped in the overload-aware retry loop:
    ///
    /// * Typed sheds (429/503) are replayed after a capped-exponential,
    ///   jittered backoff — never sooner than the server's `Retry-After`.
    /// * Transport errors reconnect and replay **only** idempotent
    ///   requests (see [`is_idempotent`]); a session create/append error
    ///   surfaces immediately because its server-side effect is unknown.
    ///
    /// The last shed response is returned (never hidden behind an error)
    /// when attempts run out, so callers can count sheds.
    ///
    /// # Errors
    /// Transport failures (non-idempotent, or attempts exhausted).
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        policy: RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut backoff = policy.base;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 1..=policy.max_attempts.max(1) {
            if attempt > 1 {
                // Jittered: 50%..100% of the nominal backoff, so a fleet
                // of shed clients does not re-arrive in lockstep.
                let nominal = backoff.min(policy.cap);
                std::thread::sleep(nominal.mul_f64(self.rng.gen_range(0.5..=1.0)));
                backoff = backoff.saturating_mul(2);
            }
            if last_err.take().is_some() && self.reconnect().is_err() {
                // Server gone; keep trying until attempts run out.
                last_err = Some(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "reconnect failed",
                ));
                continue;
            }
            match self.request_full(method, path, body) {
                Ok(resp) if is_typed_shed(resp.status) && attempt < policy.max_attempts => {
                    // Honour Retry-After as a floor on the next backoff.
                    if let Some(secs) = resp.retry_after {
                        backoff = backoff.max(Duration::from_secs(secs));
                    }
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if !is_idempotent(method, path) {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "retries exhausted")
        }))
    }

    /// `GET` shorthand.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    /// `POST` shorthand with a JSON body.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// `POST` that parses the response body as JSON.
    ///
    /// # Errors
    /// I/O failures or a response body that is not valid JSON.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<(u16, Value)> {
        let (status, text) = self.post(path, body)?;
        let value = serde_json::from_str::<Value>(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("non-JSON response {text:?}: {e}"),
            )
        })?;
        Ok((status, value))
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        if status_line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad Content-Length in response",
                        )
                    })?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response body")
        })?;
        Ok(Response {
            status,
            body,
            retry_after,
        })
    }
}

// ---------------------------------------------------------------------
// Shard-aware fleet client
// ---------------------------------------------------------------------

use crate::protocol::{self, Topology};
use crate::shard::{backend_of_session_id, shard_of_content, shard_of_user, SHARD_FN_ID};

/// A shard-aware client for a routed fleet.
///
/// At connect time it asks the entry process `GET /v1/topology`. If the
/// entry is a router speaking the same shard hash ([`SHARD_FN_ID`]), the
/// fleet's backend addresses are captured and every subsequent request is
/// placed **client-side** — the same decisions the router makes, one
/// network hop shorter. Requests the client cannot place (unknown paths,
/// unparseable bodies) and backends it cannot reach fall back to the
/// entry connection, which proxies them; against a standalone server (or
/// a pre-topology one answering 404) the fleet client degrades to a
/// plain [`Client`] on the entry connection, so callers never need to
/// know which deployment they are talking to.
pub struct FleetClient {
    entry: Client,
    topology: Option<Topology>,
    backends: Vec<Option<Client>>,
    deadline_ms: Option<u64>,
}

impl FleetClient {
    /// Connects to `addr` and resolves the fleet topology.
    ///
    /// # Errors
    /// Connection failures on the entry address. A missing or foreign
    /// topology is not an error — it just disables client-side routing.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let mut entry = Client::connect(addr)?;
        let topology = match entry.request("GET", "/v1/topology", None) {
            Ok((200, body)) => serde_json::from_str::<Value>(&body)
                .ok()
                .as_ref()
                .and_then(protocol::parse_topology),
            _ => None,
        };
        // Route client-side only for a router advertising our hash and a
        // full backend list; anything else proxies through the entry.
        let topology = topology.filter(|t| {
            t.mode == "router"
                && t.shard_fn == SHARD_FN_ID
                && !t.backends.is_empty()
                && t.backends.len() == t.shard_count
        });
        let n = topology.as_ref().map_or(0, |t| t.backends.len());
        Ok(FleetClient {
            entry,
            topology,
            backends: (0..n).map(|_| None).collect(),
            deadline_ms: None,
        })
    }

    /// The resolved fleet topology, when the entry was a router this
    /// client routes for.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Attaches (or clears) the `x-tspn-deadline-ms` budget sent with
    /// every subsequent request, whichever connection carries it.
    pub fn set_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms;
        self.entry.set_deadline_ms(ms);
        for c in self.backends.iter_mut().flatten() {
            c.set_deadline_ms(ms);
        }
    }

    /// Which backend owns a request — the mirror of the router's own
    /// placement. `None` means "let the entry proxy it" (unknown path,
    /// unparseable body, or no routable topology).
    fn backend_index(&self, method: &str, path: &str, body: Option<&str>) -> Option<usize> {
        let t = self.topology.as_ref()?;
        let n = t.shard_count;
        let path = path.split('?').next().unwrap_or(path);
        if let Some(rest) = path.strip_prefix("/v1/sessions/") {
            let segment = rest.split('/').next().unwrap_or("");
            return protocol::parse_session_id(segment).map(|id| backend_of_session_id(id, n));
        }
        let body = body.unwrap_or("").as_bytes();
        match (method, path) {
            ("POST", "/v1/sessions") => protocol::parse_session_create(body)
                .ok()
                .map(|r| shard_of_user(r.user, n)),
            ("POST", "/v1/predict") => protocol::parse_v1_predict(body)
                .ok()
                .map(|r| shard_of_content(r.user, &r.checkins, n)),
            ("POST", "/predict") => protocol::parse_predict(body)
                .ok()
                .map(|r| shard_of_user(r.sample.user_index, n)),
            _ => None,
        }
    }

    /// [`Client::request_with_retry`], routed: the request goes straight
    /// to the backend its shard hash selects (dialled lazily), with the
    /// entry connection as proxy fallback when the backend cannot be
    /// reached before anything was sent. A mid-flight failure on a
    /// non-idempotent request surfaces instead of being re-run elsewhere.
    ///
    /// # Errors
    /// See [`Client::request_with_retry`].
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        policy: RetryPolicy,
    ) -> std::io::Result<Response> {
        let Some(idx) = self.backend_index(method, path, body) else {
            return self.entry.request_with_retry(method, path, body, policy);
        };
        if self.backends[idx].is_none() {
            let addr = &self.topology.as_ref().expect("routable topology").backends[idx];
            match Client::connect(addr) {
                Ok(mut c) => {
                    c.set_deadline_ms(self.deadline_ms);
                    self.backends[idx] = Some(c);
                }
                // Nothing was sent; the router still owns a live path.
                Err(_) => return self.entry.request_with_retry(method, path, body, policy),
            }
        }
        let backend = self.backends[idx].as_mut().expect("dialled above");
        match backend.request_with_retry(method, path, body, policy) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // Drop the dead connection either way; re-run through the
                // proxy only when a replay is safe.
                self.backends[idx] = None;
                if is_idempotent(method, path) {
                    self.entry.request_with_retry(method, path, body, policy)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// `GET` shorthand with the default retry policy.
    ///
    /// # Errors
    /// See [`FleetClient::request_with_retry`].
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request_with_retry("GET", path, None, RetryPolicy::default())
            .map(|r| (r.status, r.body))
    }

    /// `POST` shorthand with the default retry policy.
    ///
    /// # Errors
    /// See [`FleetClient::request_with_retry`].
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request_with_retry("POST", path, Some(body), RetryPolicy::default())
            .map(|r| (r.status, r.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A scripted stub server: each inner vec is one accepted connection;
    /// each entry answers one request with the given raw bytes (`None`
    /// closes the connection instead of answering — a mid-flight kill).
    fn stub_server(
        script: Vec<Vec<Option<String>>>,
    ) -> (String, Arc<AtomicUsize>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().expect("stub addr").to_string();
        let requests = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&requests);
        let handle = std::thread::spawn(move || {
            for conn in script {
                let (stream, _) = listener.accept().expect("stub accept");
                let mut reader = BufReader::new(stream);
                for response in conn {
                    if read_one_request(&mut reader).is_none() {
                        return;
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                    match response {
                        Some(raw) => {
                            let stream = reader.get_mut();
                            stream.write_all(raw.as_bytes()).expect("stub write");
                            stream.flush().expect("stub flush");
                        }
                        None => break, // drop the connection mid-flight
                    }
                }
            }
        });
        (addr, requests, handle)
    }

    /// Reads one request (headers + Content-Length body) off the stub's
    /// connection; `None` when the client hung up.
    fn read_one_request(reader: &mut BufReader<TcpStream>) -> Option<()> {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).ok()? == 0 {
                return None;
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
        Some(())
    }

    fn shed_429() -> String {
        "HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nRetry-After: 0\r\n\
         Connection: keep-alive\r\n\r\n{}"
            .to_string()
    }

    fn ok_200() -> String {
        "HTTP/1.1 200 OK\r\nContent-Length: 11\r\nConnection: keep-alive\r\n\r\n{\"ok\":true}"
            .to_string()
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            seed: 7,
        }
    }

    #[test]
    fn typed_sheds_are_retried_until_the_server_recovers() {
        let (addr, requests, server) = stub_server(vec![vec![
            Some(shed_429()),
            Some(shed_429()),
            Some(ok_200()),
        ]]);
        let mut client = Client::connect(&addr).expect("connect");
        let resp = client
            .request_with_retry("POST", "/v1/predict", Some("{}"), fast_policy())
            .expect("retry succeeds");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert_eq!(requests.load(Ordering::SeqCst), 3, "two sheds then success");
        drop(client);
        server.join().expect("stub exits");
    }

    #[test]
    fn exhausted_retries_surface_the_last_shed_not_an_error() {
        let (addr, requests, server) = stub_server(vec![vec![
            Some(shed_429()),
            Some(shed_429()),
            Some(shed_429()),
            Some(shed_429()),
        ]]);
        let mut client = Client::connect(&addr).expect("connect");
        let resp = client
            .request_with_retry("POST", "/v1/predict", Some("{}"), fast_policy())
            .expect("a typed shed is a response, not an error");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(0));
        assert_eq!(requests.load(Ordering::SeqCst), 4, "all attempts consumed");
        drop(client);
        server.join().expect("stub exits");
    }

    #[test]
    fn transport_errors_reconnect_and_replay_idempotent_requests() {
        // First connection dies mid-flight; the retry dials a second one.
        let (addr, requests, server) = stub_server(vec![vec![None], vec![Some(ok_200())]]);
        let mut client = Client::connect(&addr).expect("connect");
        let resp = client
            .request_with_retry("GET", "/healthz", None, fast_policy())
            .expect("idempotent request survives a dead connection");
        assert_eq!(resp.status, 200);
        assert_eq!(requests.load(Ordering::SeqCst), 2);
        drop(client);
        server.join().expect("stub exits");
    }

    #[test]
    fn non_idempotent_appends_are_never_replayed_after_transport_errors() {
        for path in ["/v1/sessions", "/v1/sessions/s3/checkins"] {
            let (addr, requests, server) = stub_server(vec![vec![None]]);
            let mut client = Client::connect(&addr).expect("connect");
            let err = client
                .request_with_retry("POST", path, Some("{}"), fast_policy())
                .expect_err("unknown server-side effect must surface");
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{path}");
            assert_eq!(
                requests.load(Ordering::SeqCst),
                1,
                "{path}: one attempt only"
            );
            drop(client);
            server.join().expect("stub exits");
        }
    }

    #[test]
    fn idempotency_is_decided_by_method_and_path() {
        assert!(is_idempotent("GET", "/v1/sessions"));
        assert!(is_idempotent("DELETE", "/v1/sessions/s1"));
        assert!(is_idempotent("POST", "/predict"));
        assert!(is_idempotent("POST", "/v1/predict"));
        assert!(is_idempotent("POST", "/v1/sessions/s1/predict"));
        assert!(!is_idempotent("POST", "/v1/sessions"));
        assert!(!is_idempotent("POST", "/v1/sessions/s1/checkins"));
    }

    // --- FleetClient -------------------------------------------------

    use crate::mux::{self, MuxConfig, MuxResponse};
    use crate::protocol::topology_response;
    use crate::shard::SHARD_FN_ID;
    use std::sync::atomic::AtomicBool;

    /// A canned-handler backend on the real mux (keep-alive for free).
    fn mux_stub(
        handler: impl Fn(&crate::http::Request) -> (u16, String) + Send + Sync + 'static,
    ) -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
        let addr = listener.local_addr().expect("stub addr").to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let h: Arc<mux::Handler> = Arc::new(move |req| {
            let (status, body) = handler(req);
            MuxResponse {
                status,
                body,
                retry_after: None,
                close: false,
            }
        });
        let cfg = MuxConfig {
            workers: 2,
            ..MuxConfig::default()
        };
        let handle = std::thread::spawn(move || {
            mux::run(listener, cfg, flag, h).expect("stub mux runs");
        });
        (addr, stop, handle)
    }

    fn echo_stub(tag: &'static str) -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        mux_stub(move |req| {
            (
                200,
                format!("{{\"who\":\"{tag}\",\"path\":\"{}\"}}", req.path),
            )
        })
    }

    fn who(resp: &std::io::Result<Response>) -> String {
        let resp = resp.as_ref().expect("response");
        serde_json::from_str::<Value>(&resp.body)
            .expect("json")
            .get("who")
            .and_then(Value::as_str)
            .expect("who")
            .to_string()
    }

    #[test]
    fn fleet_client_routes_around_the_router() {
        let (a0, s0, h0) = echo_stub("b0");
        let (a1, s1, h1) = echo_stub("b1");
        let backends = vec![a0.clone(), a1.clone()];
        let topo = topology_response("router", 2, SHARD_FN_ID, 0, 2, &backends);
        let (ra, rs, rh) = mux_stub(move |req| {
            if req.path == "/v1/topology" {
                (200, topo.clone())
            } else {
                (
                    200,
                    format!("{{\"who\":\"router\",\"path\":\"{}\"}}", req.path),
                )
            }
        });

        let mut fleet = FleetClient::connect(&ra).expect("connect");
        let t = fleet.topology().expect("routable topology").clone();
        assert_eq!(t.backends, backends);

        // Session ids land on the backend their residue names — directly.
        let r = fleet.request_with_retry("GET", "/v1/sessions/s1", None, fast_policy());
        assert_eq!(who(&r), "b0");
        let r = fleet.request_with_retry("GET", "/v1/sessions/s2", None, fast_policy());
        assert_eq!(who(&r), "b1");

        // User-keyed placement mirrors shard_of_user.
        for user in 0..6usize {
            let expect = if crate::shard::shard_of_user(user, 2) == 0 {
                "b0"
            } else {
                "b1"
            };
            let body = format!("{{\"user\":{user},\"traj\":0,\"prefix_len\":2}}");
            let r = fleet.request_with_retry("POST", "/predict", Some(&body), fast_policy());
            assert_eq!(who(&r), expect, "user {user}");
        }

        // Unplaceable requests proxy through the entry.
        let r = fleet.request_with_retry("GET", "/healthz", None, fast_policy());
        assert_eq!(who(&r), "router");
        let r = fleet.request_with_retry("POST", "/predict", Some("not json"), fast_policy());
        assert_eq!(who(&r), "router");

        drop(fleet);
        for (s, h) in [(rs, rh), (s0, h0), (s1, h1)] {
            s.store(true, Ordering::Release);
            h.join().unwrap();
        }
    }

    #[test]
    fn fleet_client_degrades_to_the_entry_for_standalone_servers() {
        let topo = topology_response("single", 2, SHARD_FN_ID, 0, 1, &[]);
        let (addr, stop, handle) = mux_stub(move |req| {
            if req.path == "/v1/topology" {
                (200, topo.clone())
            } else {
                (200, "{\"who\":\"single\"}".to_string())
            }
        });
        let mut fleet = FleetClient::connect(&addr).expect("connect");
        assert!(fleet.topology().is_none(), "single mode disables routing");
        let r = fleet.request_with_retry("GET", "/v1/sessions/s7", None, fast_policy());
        assert_eq!(who(&r), "single");
        drop(fleet);
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn fleet_client_falls_back_to_the_proxy_for_unreachable_backends() {
        // Topology names a dead backend; routed requests still succeed
        // through the entry, which proxies.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let (a0, s0, h0) = echo_stub("b0");
        let backends = vec![a0.clone(), dead];
        let topo = topology_response("router", 2, SHARD_FN_ID, 0, 2, &backends);
        let (ra, rs, rh) = mux_stub(move |req| {
            if req.path == "/v1/topology" {
                (200, topo.clone())
            } else {
                (200, "{\"who\":\"router\"}".to_string())
            }
        });
        let mut fleet = FleetClient::connect(&ra).expect("connect");
        // s2 → backend 1 (dead) → proxied; s1 → backend 0 → direct.
        let r = fleet.request_with_retry("GET", "/v1/sessions/s2", None, fast_policy());
        assert_eq!(who(&r), "router");
        let r = fleet.request_with_retry("GET", "/v1/sessions/s1", None, fast_policy());
        assert_eq!(who(&r), "b0");
        drop(fleet);
        for (s, h) in [(rs, rh), (s0, h0)] {
            s.store(true, Ordering::Release);
            h.join().unwrap();
        }
    }
}
