//! Checkpoint hot-swap: an epoch-versioned published-snapshot handle.
//!
//! `/admin/reload` **validates** a checkpoint on the handler thread
//! (structure, shapes, finiteness — see [`validate_shapes`]) and then
//! [`SnapshotHandle::publish`]es it as an immutable `Arc`. The batcher
//! thread polls [`SnapshotHandle::newer_than`] *between* batches: a swap
//! therefore never blocks in-flight requests, and every batch runs under
//! exactly one parameter snapshot — mixed-parameter batches are impossible
//! by construction, not by locking discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tspn_tensor::serialize::Checkpoint;

/// A published, already-validated checkpoint.
#[derive(Debug)]
pub struct PublishedCheckpoint {
    /// Monotonic snapshot version; the boot parameters are version 1.
    pub version: u64,
    /// The validated parameter values.
    pub checkpoint: Checkpoint,
}

/// The shared swap point between reload handlers and the batcher.
pub struct SnapshotHandle {
    /// Most recently published checkpoint (`None` until the first reload:
    /// the batcher keeps serving its boot parameters).
    slot: Mutex<Option<Arc<PublishedCheckpoint>>>,
    /// Version of the latest publication (1 = boot parameters). Reads
    /// don't take the slot lock.
    version: AtomicU64,
}

/// The version number denoting the parameters the server booted with.
pub const BOOT_VERSION: u64 = 1;

impl Default for SnapshotHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotHandle {
    /// A handle at the boot version with nothing published.
    pub fn new() -> Self {
        SnapshotHandle {
            slot: Mutex::new(None),
            version: AtomicU64::new(BOOT_VERSION),
        }
    }

    /// Publishes a validated checkpoint, returning its assigned version.
    /// In-flight batches keep the snapshot they started with; the batcher
    /// picks this one up at its next flush boundary.
    pub fn publish(&self, checkpoint: Checkpoint) -> u64 {
        let mut slot = self.slot.lock().expect("snapshot slot");
        let version = self.version.load(Ordering::Acquire) + 1;
        *slot = Some(Arc::new(PublishedCheckpoint {
            version,
            checkpoint,
        }));
        self.version.store(version, Ordering::Release);
        version
    }

    /// The latest published version (lock-free).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The latest publication if it is newer than `seen`; the lock is held
    /// only for the `Arc` clone.
    pub fn newer_than(&self, seen: u64) -> Option<Arc<PublishedCheckpoint>> {
        if self.version.load(Ordering::Acquire) <= seen {
            return None;
        }
        self.slot
            .lock()
            .expect("snapshot slot")
            .as_ref()
            .filter(|p| p.version > seen)
            .map(Arc::clone)
    }
}

/// Validates a checkpoint against the serving model's expected parameter
/// list without needing the (thread-pinned) model itself: every expected
/// tensor present, every shape exact, every value finite. This mirrors
/// `Predictor::validate_checkpoint`, which the batcher re-runs before
/// applying (so publication can never corrupt the serving parameters even
/// if this check and the model disagree).
///
/// # Errors
/// Returns a client-facing message naming the first violation.
pub fn validate_shapes(ckpt: &Checkpoint, expected: &[(String, Vec<usize>)]) -> Result<(), String> {
    for (name, shape) in expected {
        let rec = ckpt
            .tensors
            .iter()
            .find(|r| &r.name == name)
            .ok_or_else(|| format!("checkpoint missing tensor {name:?}"))?;
        if &rec.shape != shape {
            return Err(format!(
                "shape mismatch for {name:?}: checkpoint {:?}, model {shape:?}",
                rec.shape
            ));
        }
        let expected_len: usize = shape.iter().product();
        if rec.data.len() != expected_len {
            return Err(format!(
                "data length {} does not match shape {shape:?} for {name:?}",
                rec.data.len()
            ));
        }
        if let Some(bad) = rec.data.iter().find(|v| !v.is_finite()) {
            return Err(format!("non-finite value {bad} in tensor {name:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_tensor::serialize::TensorRecord;

    fn ckpt(entries: &[(&str, Vec<usize>, Vec<f32>)]) -> Checkpoint {
        Checkpoint {
            tensors: entries
                .iter()
                .map(|(n, s, d)| TensorRecord {
                    name: n.to_string(),
                    shape: s.clone(),
                    data: d.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn publish_bumps_version_and_newer_than_filters() {
        let handle = SnapshotHandle::new();
        assert_eq!(handle.version(), BOOT_VERSION);
        assert!(handle.newer_than(BOOT_VERSION).is_none());

        let v2 = handle.publish(ckpt(&[]));
        assert_eq!(v2, 2);
        let seen = handle.newer_than(BOOT_VERSION).expect("newer exists");
        assert_eq!(seen.version, 2);
        assert!(
            handle.newer_than(2).is_none(),
            "already-seen version filtered"
        );

        let v3 = handle.publish(ckpt(&[]));
        assert_eq!(v3, 3);
        assert_eq!(handle.newer_than(2).expect("v3").version, 3);
    }

    #[test]
    fn shape_validation_names_the_violation() {
        let expected = vec![("w".to_string(), vec![2, 2])];
        let good = ckpt(&[("w", vec![2, 2], vec![0.0; 4])]);
        assert!(validate_shapes(&good, &expected).is_ok());

        let missing = ckpt(&[("b", vec![2, 2], vec![0.0; 4])]);
        assert!(validate_shapes(&missing, &expected)
            .unwrap_err()
            .contains("missing"));

        let reshaped = ckpt(&[("w", vec![4], vec![0.0; 4])]);
        assert!(validate_shapes(&reshaped, &expected)
            .unwrap_err()
            .contains("shape mismatch"));

        let short = ckpt(&[("w", vec![2, 2], vec![0.0; 3])]);
        assert!(validate_shapes(&short, &expected)
            .unwrap_err()
            .contains("length"));

        let nan = ckpt(&[("w", vec![2, 2], vec![0.0, f32::NAN, 0.0, 0.0])]);
        assert!(validate_shapes(&nan, &expected)
            .unwrap_err()
            .contains("non-finite"));
    }
}
