//! `tspn-serve` — the long-lived next-POI serving process.
//!
//! ```text
//! tspn-serve --port 7878 --preset nyc --scale 0.15 --days 12 \
//!            [--checkpoint model.json] [--dump-checkpoint boot.json] \
//!            [--max-batch 32] [--deadline-us 2000] [--top 10] \
//!            [--session-ttl-ms 900000] [--max-sessions 4096] \
//!            [--max-queue-depth 1024] [--request-timeout-ms 10000] \
//!            [--lanes 2] [--shard-index 0 --shard-count 2]
//! tspn-serve --port 7878 --route 127.0.0.1:7900,127.0.0.1:7901
//! ```
//!
//! The second form is **router mode**: no model is built at all — the
//! process is a thin shard-hash proxy over the listed backends (see
//! [`tspn_serve::start_router`]). Backends of a routed fleet are started
//! with matching `--shard-index i --shard-count n` so their session-id
//! spaces tile and their `/v1/topology` answers say `"backend"`.
//!
//! The synthetic presets are deterministic, so the server regenerates the
//! exact dataset a checkpoint was trained on from `(preset, scale, days)`.
//! `--dump-checkpoint` writes the booted parameters (after an optional
//! `--checkpoint` load) in `model.save` format — handy for smoke-testing
//! `/admin/reload` without a separate training run.
//!
//! Micro-batching knobs resolve CLI → environment → default: when
//! `--max-batch` / `--deadline-us` are absent, `TSPN_SERVE_MAX_BATCH` and
//! `TSPN_SERVE_DEADLINE_US` apply, else 32 / 2 ms — a flush is one
//! batched forward, so these tune its size and tail latency under load
//! without rebuilding deployment command lines. The admission queue and
//! per-request deadline budget follow the same scheme:
//! `--max-queue-depth` / `TSPN_SERVE_MAX_QUEUE` (default 1024) bounds how
//! many requests may wait for a flush before the server sheds with a
//! typed `429 overloaded`, and `--request-timeout-ms` /
//! `TSPN_SERVE_REQUEST_TIMEOUT_MS` (default 10 s) is the deadline applied
//! when a request does not carry its own `x-tspn-deadline-ms` header. The
//! v1 session store resolves the same way: `--session-ttl-ms` /
//! `--max-sessions`, then `TSPN_SERVE_SESSION_TTL_MS` /
//! `TSPN_SERVE_MAX_SESSIONS`, then the 15-minute / 4096-session defaults.
//!
//! `--lanes` / `TSPN_SERVE_LANES` (default 1) splits the batcher into
//! that many shard-partitioned lanes, each with its own model replica,
//! admission queue, supervisor, and session-store partition;
//! `TSPN_SERVE_IO_WORKERS` sizes the connection multiplexer's worker
//! pool.
//!
//! Supervision and fault injection are environment-only:
//! `TSPN_SERVE_BREAKER_{THRESHOLD,WINDOW_MS,COOLDOWN_MS}` tune the
//! batcher's crash circuit breaker, and the `TSPN_SERVE_FAULT_*` knobs
//! (see [`tspn_serve::ChaosConfig`]) arm the chaos layer for drills.
//!
//! Shutdown: SIGTERM/SIGINT or `POST /admin/shutdown`; either way queued
//! predictions flush before the process exits 0.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tspn_core::{SpatialContext, TspnConfig};
use tspn_data::synth::{generate_dataset, SynthConfig};
use tspn_serve::{server, BatchConfig, BreakerConfig, ChaosConfig, ServerConfig, SessionConfig};

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

struct Args {
    port: u16,
    preset: String,
    scale: f64,
    days: Option<usize>,
    checkpoint: Option<String>,
    dump_checkpoint: Option<String>,
    max_batch: Option<usize>,
    deadline_us: Option<u64>,
    session_ttl_ms: Option<u64>,
    max_sessions: Option<usize>,
    max_queue_depth: Option<usize>,
    request_timeout_ms: Option<u64>,
    top: usize,
    lanes: Option<usize>,
    shard_index: usize,
    shard_count: usize,
    route: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tspn-serve [--port N] [--preset nyc|tky|california|florida] [--scale F] \
         [--days N] [--checkpoint FILE] [--dump-checkpoint FILE] [--max-batch N] \
         [--deadline-us N] [--session-ttl-ms N] [--max-sessions N] \
         [--max-queue-depth N] [--request-timeout-ms N] [--top N] [--lanes N] \
         [--shard-index N --shard-count N] [--route ADDR,ADDR,…]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        port: 7878,
        preset: "nyc".into(),
        scale: 0.15,
        days: Some(12),
        checkpoint: None,
        dump_checkpoint: None,
        max_batch: None,
        deadline_us: None,
        session_ttl_ms: None,
        max_sessions: None,
        max_queue_depth: None,
        request_timeout_ms: None,
        top: 10,
        lanes: None,
        shard_index: 0,
        shard_count: 1,
        route: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--port" => args.port = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--preset" => args.preset = value(&mut i),
            "--scale" => args.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--days" => args.days = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--full-days" => args.days = None,
            "--checkpoint" => args.checkpoint = Some(value(&mut i)),
            "--dump-checkpoint" => args.dump_checkpoint = Some(value(&mut i)),
            "--max-batch" => {
                args.max_batch = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--deadline-us" => {
                args.deadline_us = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--session-ttl-ms" => {
                args.session_ttl_ms = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--max-sessions" => {
                args.max_sessions = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--max-queue-depth" => {
                args.max_queue_depth = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--request-timeout-ms" => {
                args.request_timeout_ms = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--top" => args.top = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--lanes" => args.lanes = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--shard-index" => {
                args.shard_index = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--shard-count" => {
                args.shard_count = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--route" => args.route = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn preset_config(name: &str, scale: f64) -> SynthConfig {
    tspn_serve::preset_dataset_config(name, scale).unwrap_or_else(|| {
        eprintln!("unknown preset {name:?}");
        usage()
    })
}

/// The serving model configuration, shared with `serve_bench` (see
/// [`tspn_serve::default_model_config`]).
fn model_config() -> TspnConfig {
    tspn_serve::default_model_config()
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the POSIX libc symbol with the declared
    // signature; the handler only performs an atomic store, which is
    // async-signal-safe, and registration happens once before any thread
    // that could receive these signals does meaningful work.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Router mode: no dataset, no model — just the shard-hash proxy.
fn run_router(port: u16, route: &str) -> ! {
    let backends: Vec<String> = route
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    install_signal_handlers();
    let cfg = tspn_serve::RouterConfig {
        addr: format!("127.0.0.1:{port}"),
        backends: backends.clone(),
        ..tspn_serve::RouterConfig::default()
    };
    let handle = match tspn_serve::start_router(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tspn-serve: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "tspn-serve: router over {} backend(s): {}",
        backends.len(),
        backends.join(", ")
    );
    println!("tspn-serve: listening on {}", handle.local_addr());
    while !SHUTDOWN.load(Ordering::Acquire) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("tspn-serve: shutting down…");
    handle.shutdown();
    handle.join();
    eprintln!("tspn-serve: clean shutdown");
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(route) = &args.route {
        run_router(args.port, route);
    }
    let mut dcfg = preset_config(&args.preset, args.scale);
    if let Some(days) = args.days {
        dcfg.days = days;
    }
    let model_cfg = model_config();

    eprintln!(
        "tspn-serve: generating dataset {} (scale {}, {} days)…",
        dcfg.name, args.scale, dcfg.days
    );
    let (ds, world) = generate_dataset(dcfg);
    let ctx = SpatialContext::build(ds, world, &model_cfg);
    eprintln!(
        "tspn-serve: context ready ({} POIs, {} leaf tiles, {} users)",
        ctx.dataset.pois.len(),
        ctx.num_leaves(),
        ctx.dataset.users.len()
    );

    if let Some(path) = &args.dump_checkpoint {
        // A fresh model from the same config seed and context is bitwise
        // the model the server boots with; after `--checkpoint` the boot
        // parameters are the file itself.
        let outcome = match &args.checkpoint {
            Some(src) => std::fs::copy(src, path)
                .map(|_| ())
                .map_err(|e| format!("cannot copy {src:?} to {path:?}: {e}")),
            None => {
                let ckpt = tspn_core::TspnRa::new(model_cfg.clone(), &ctx).save();
                serde_json::to_string(&ckpt)
                    .map_err(|e| format!("serialise: {e}"))
                    .and_then(|json| std::fs::write(path, json).map_err(|e| format!("write: {e}")))
            }
        };
        match outcome {
            Ok(()) => eprintln!("tspn-serve: wrote boot checkpoint to {path}"),
            Err(e) => {
                eprintln!("tspn-serve: --dump-checkpoint failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let initial = args.checkpoint.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("tspn-serve: cannot read checkpoint {path:?}: {e}");
            std::process::exit(1);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("tspn-serve: cannot parse checkpoint {path:?}: {e}");
            std::process::exit(1);
        })
    });

    let batch = BatchConfig::resolve(
        args.max_batch,
        args.deadline_us,
        args.max_queue_depth,
        |key| std::env::var(key).ok(),
    );
    let session = SessionConfig::resolve(args.session_ttl_ms, args.max_sessions, |key| {
        std::env::var(key).ok()
    });
    let breaker = BreakerConfig::resolve(|key| std::env::var(key).ok());
    let chaos = ChaosConfig::resolve(|key| std::env::var(key).ok());
    let request_timeout = args
        .request_timeout_ms
        .or_else(|| {
            std::env::var("TSPN_SERVE_REQUEST_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .filter(|&ms| ms >= 1)
        .map(Duration::from_millis)
        .unwrap_or(ServerConfig::default().request_timeout);
    eprintln!(
        "tspn-serve: micro-batcher max_batch={} deadline={:?} queue_cap={}; \
         request timeout {:?}; sessions ttl={:?} cap={}",
        batch.max_batch,
        batch.deadline,
        batch.queue_cap,
        request_timeout,
        session.ttl,
        session.max_sessions
    );
    if chaos.is_active() {
        eprintln!("tspn-serve: CHAOS ACTIVE: {chaos:?}");
    }
    let lanes = args
        .lanes
        .or_else(|| {
            std::env::var("TSPN_SERVE_LANES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    if args.shard_index >= args.shard_count.max(1) {
        eprintln!(
            "tspn-serve: --shard-index {} out of range for --shard-count {}",
            args.shard_index, args.shard_count
        );
        std::process::exit(2);
    }
    eprintln!(
        "tspn-serve: {lanes} lane(s), shard {}/{}",
        args.shard_index,
        args.shard_count.max(1)
    );
    let server_cfg = ServerConfig {
        addr: format!("127.0.0.1:{}", args.port),
        batch,
        session,
        default_top: args.top,
        request_timeout,
        breaker,
        chaos,
        lanes,
        shard_index: args.shard_index,
        shard_count: args.shard_count.max(1),
        io_workers: tspn_serve::MuxConfig::resolve_workers(|key| std::env::var(key).ok()),
        ..ServerConfig::default()
    };

    install_signal_handlers();
    let handle = match server::start(server_cfg, model_cfg, ctx, initial) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tspn-serve: {e}");
            std::process::exit(1);
        }
    };

    println!("tspn-serve: listening on {}", handle.local_addr());

    while !SHUTDOWN.load(Ordering::Acquire) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("tspn-serve: shutting down…");
    handle.shutdown();
    handle.join();
    eprintln!("tspn-serve: clean shutdown");
}
