//! Event-driven connection multiplexer: one `poll(2)` loop owns every
//! client socket, a small fixed worker pool runs the route handlers.
//!
//! The pre-scale-out server spent a thread per connection; a thousand
//! idle keep-alive clients cost a thousand parked threads. Here they cost
//! one `pollfd` each: the mux thread is the **only** reader and writer of
//! client sockets, driving each connection through a small state machine
//! — accumulate bytes and feed them to the incremental parser
//! ([`crate::http::try_parse_request`]); on a complete request, hand it
//! to the worker pool (workers may block — the micro-batcher wait happens
//! there); buffer the worker's response and drain it on `POLLOUT`. All
//! of PR 6's protocol protections survive unchanged because they live in
//! the shared parser and renderer: `431`/`413` limits, malformed-request
//! `400`s, the partial-transfer deadline (enforced here by sweeping
//! half-read connections on poll ticks), and typed `Retry-After` sheds.
//!
//! Workers finish a request by pushing the response over a channel and
//! writing one byte to a loopback **wake** socket the mux polls, so a
//! completion interrupts the poll wait exactly like client traffic
//! (std-only; no pipe/eventfd FFI — the only syscall shim is `poll`
//! itself, following the `signal` precedent in the `tspn-serve` binary).
//!
//! Shutdown/draining: once the shutdown flag is up the listener closes,
//! idle connections are dropped, in-flight requests finish (handlers
//! answer new ones with typed `503 shutting_down`), every queued response
//! byte is flushed with `Connection: close`, and the loop exits when no
//! connections remain (bounded by a drain grace).

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, render_response, try_parse_request, ReadError, Request};

// ---------------------------------------------------------------------
// poll(2) shim
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    /// Readable-data readiness.
    pub const POLLIN: i16 = 0x001;
    /// Writable readiness.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always reported).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always reported).
    pub const POLLHUP: i16 = 0x010;
    /// Invalid fd (always reported).
    pub const POLLNVAL: i16 = 0x020;

    /// Mirror of the kernel's `struct pollfd`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks until an fd is ready or `timeout_ms` elapses. A negative
    /// return (e.g. `EINTR`) is reported as 0 — the caller's loop treats
    /// it as an idle tick and re-polls.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // SAFETY: `fds` is a valid exclusive slice of `repr(C)` pollfd
        // records for the duration of the call; the kernel only writes
        // the `revents` fields.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        n.max(0)
    }

    use std::os::unix::io::AsRawFd;

    pub fn fd_of(s: &impl AsRawFd) -> i32 {
        s.as_raw_fd()
    }
}

#[cfg(not(unix))]
mod sys {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// Portable fallback without a poll syscall: report everything ready
    /// after a short sleep. Correct (all I/O is non-blocking and handles
    /// `WouldBlock`) but busier than the real thing.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(1, 2) as u64
        ));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        fds.len() as i32
    }

    pub fn fd_of<T>(_s: &T) -> i32 {
        0
    }
}

use sys::{fd_of, poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

/// Multiplexer knobs, resolved once at server start.
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Request-body cap (bytes); above it the parser rejects with `413`.
    pub max_body: usize,
    /// Worker threads running route handlers. Workers may block on the
    /// micro-batcher, so this bounds concurrently *processed* requests —
    /// connections themselves are unbounded by threads.
    pub workers: usize,
    /// A buffered response making no write progress for this long means a
    /// dead or malicious peer; the connection is dropped.
    pub write_timeout: Duration,
    /// Hard bound on draining after shutdown: connections still open this
    /// long after the flag go up are dropped.
    pub drain_grace: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            max_body: 64 * 1024,
            workers: 32,
            write_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_secs(30),
        }
    }
}

impl MuxConfig {
    /// Resolves the worker-pool size: `TSPN_SERVE_IO_WORKERS`, else 32.
    /// Zero or garbage falls through to the default.
    pub fn resolve_workers(env: impl Fn(&str) -> Option<String>) -> usize {
        env("TSPN_SERVE_IO_WORKERS")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(MuxConfig::default().workers)
    }
}

/// What a route handler produced for one request.
#[derive(Debug, Clone)]
pub struct MuxResponse {
    /// HTTP status.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// `Retry-After` seconds to attach (typed sheds).
    pub retry_after: Option<u64>,
    /// Force `Connection: close` regardless of what the client asked.
    pub close: bool,
}

/// A route handler: runs on a worker thread, may block (e.g. on the
/// micro-batcher), must be shutdown-aware itself (the mux hands it every
/// completed request, including during draining).
pub type Handler = dyn Fn(&Request) -> MuxResponse + Send + Sync;

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

struct Job {
    conn: u64,
    req: Request,
}

struct Completion {
    conn: u64,
    keep_alive: bool,
    resp: MuxResponse,
}

#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Pool {
    queue: Arc<(Mutex<PoolQueue>, Condvar)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn spawn(
        workers: usize,
        handler: Arc<Handler>,
        done_tx: mpsc::Sender<Completion>,
        wake: &TcpStream,
    ) -> std::io::Result<Pool> {
        let queue: Arc<(Mutex<PoolQueue>, Condvar)> = Arc::default();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let done_tx = done_tx.clone();
            let mut wake = wake.try_clone()?;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mux-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let (lock, cv) = &*queue;
                            // Poison-recover: the queue is a VecDeque plus
                            // a bool, both structurally valid after any
                            // panic mid-hold, so a poisoned worker must
                            // not cascade into the rest of the pool.
                            let mut q = lock.lock().unwrap_or_else(|p| p.into_inner());
                            loop {
                                if let Some(job) = q.jobs.pop_front() {
                                    break job;
                                }
                                if q.closed {
                                    return;
                                }
                                q = cv.wait(q).unwrap_or_else(|p| p.into_inner());
                            }
                        };
                        let resp = handler(&job.req);
                        let keep_alive = job.req.keep_alive;
                        if done_tx
                            .send(Completion {
                                conn: job.conn,
                                keep_alive,
                                resp,
                            })
                            .is_ok()
                        {
                            // Nudge the poll loop; a failed wake is fine —
                            // the loop re-checks completions every tick.
                            let _ = wake.write_all(&[1]);
                        }
                    })?,
            );
        }
        Ok(Pool { queue, handles })
    }

    fn dispatch(&self, job: Job) {
        let (lock, cv) = &*self.queue;
        lock.lock()
            .unwrap_or_else(|p| p.into_inner())
            .jobs
            .push_back(job);
        cv.notify_one();
    }

    fn close_and_join(self) {
        {
            let (lock, cv) = &*self.queue;
            lock.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
            cv.notify_all();
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------

enum Phase {
    /// Accumulating request bytes; the parser is fed after every read.
    Reading,
    /// A request is with the worker pool (or a terminal reject response
    /// is queued); no further parsing until its response is queued, so
    /// pipelined responses keep request order.
    Processing,
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// First byte of a partially buffered request arrived then.
    partial_since: Option<Instant>,
    /// Last moment the queued response made write progress.
    write_since: Option<Instant>,
    close_after_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            phase: Phase::Reading,
            partial_since: None,
            write_since: None,
            close_after_write: false,
        }
    }

    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn queue_response(&mut self, status: u16, body: &str, keep: bool, retry_after: Option<u64>) {
        self.out
            .extend_from_slice(&render_response(status, body, keep, retry_after));
        self.write_since.get_or_insert_with(Instant::now);
        self.close_after_write = !keep;
    }
}

/// Per-tick read cap per connection, so one firehose peer cannot starve
/// the rest of the loop.
const READ_BURST: usize = 256 * 1024;

/// Poll timeout: bounds the latency of shutdown checks and partial/write
/// deadline sweeps when no traffic flows.
const TICK: Duration = Duration::from_millis(100);

/// How long idle keep-alive connections stay open after draining begins,
/// so a request already on the wire (or about to be sent) receives the
/// typed `503 shutting_down` rather than a connection reset.
const DRAIN_NOTIFY: Duration = Duration::from_millis(1000);

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Runs the multiplexer until `shutdown` goes up and every connection has
/// drained. Call on a dedicated thread; `handler` runs on pool workers.
///
/// # Errors
/// Only setup failures (wake-channel plumbing, worker spawn); once the
/// loop is running, per-connection I/O errors just drop that connection.
pub fn run(
    listener: TcpListener,
    cfg: MuxConfig,
    shutdown: Arc<AtomicBool>,
    handler: Arc<Handler>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let (wake_tx, mut wake_rx) = wake_pair()?;
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let pool = Pool::spawn(cfg.workers.max(1), handler, done_tx, &wake_tx)?;

    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut draining_since: Option<Instant> = None;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_ids: Vec<u64> = Vec::new();

    loop {
        // --- shutdown / draining transitions --------------------------
        if shutdown.load(Ordering::Acquire) && draining_since.is_none() {
            draining_since = Some(Instant::now());
            // Stop accepting and release the port immediately.
            listener = None;
        }
        if let Some(since) = draining_since {
            // Established keep-alive connections get a short notify window:
            // one last request can still arrive and be answered with the
            // handler's typed `503 shutting_down` (+ `Connection: close`)
            // instead of hitting a reset. After the window, idle
            // connections have nothing left to wait for and are dropped;
            // in-flight work stays bounded by `drain_grace`.
            let notify = since.elapsed() <= DRAIN_NOTIFY;
            conns.retain(|_, c| {
                notify
                    || matches!(c.phase, Phase::Processing)
                    || c.has_pending_out()
                    || !c.buf.is_empty()
            });
            if conns.is_empty() || since.elapsed() > cfg.drain_grace {
                break;
            }
        }

        // --- build the poll set ---------------------------------------
        fds.clear();
        fd_ids.clear();
        fds.push(PollFd {
            fd: fd_of(&wake_rx),
            events: POLLIN,
            revents: 0,
        });
        if let Some(l) = &listener {
            fds.push(PollFd {
                fd: fd_of(l),
                events: POLLIN,
                revents: 0,
            });
        }
        let base = fds.len();
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if matches!(conn.phase, Phase::Reading) && !conn.has_pending_out() {
                events |= POLLIN;
            }
            if conn.has_pending_out() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: fd_of(&conn.stream),
                events,
                revents: 0,
            });
            fd_ids.push(id);
        }

        poll_fds(&mut fds, TICK.as_millis() as i32);

        // --- wake channel: drain the nudge bytes ----------------------
        if fds[0].revents & POLLIN != 0 {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }

        // --- accept new connections -----------------------------------
        if let Some(l) = &listener {
            if fds[base - 1].revents & POLLIN != 0 {
                for _ in 0..128 {
                    match l.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            next_id += 1;
                            conns.insert(next_id, Conn::new(stream));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            }
        }

        // --- worker completions: queue response bytes -----------------
        let draining = draining_since.is_some();
        while let Ok(done) = done_rx.try_recv() {
            let Some(conn) = conns.get_mut(&done.conn) else {
                continue; // connection died while the worker ran
            };
            let keep = done.keep_alive && !done.resp.close && !draining;
            conn.queue_response(
                done.resp.status,
                &done.resp.body,
                keep,
                done.resp.retry_after,
            );
            conn.phase = Phase::Reading;
            // Pipelined read-ahead may already hold the next request; it
            // is parsed once this response finishes writing (ordering),
            // or on the next readable tick.
        }

        // --- per-connection I/O ---------------------------------------
        let now = Instant::now();
        let mut dead: Vec<u64> = Vec::new();
        for (i, &id) in fd_ids.iter().enumerate() {
            let revents = fds[base + i].revents;
            let Some(conn) = conns.get_mut(&id) else {
                // Bookkeeping drift between fd_ids and the conn map is a
                // bug, but retiring the orphaned fd beats aborting the mux
                // thread with every live connection on it.
                dead.push(id);
                continue;
            };
            if revents & (POLLERR | POLLNVAL) != 0 {
                dead.push(id);
                continue;
            }
            if revents & POLLHUP != 0 && !matches!(conn.phase, Phase::Reading) {
                // Peer hung up while its request is in flight (or while a
                // terminal response drains): kill-mid-flight, drop. A
                // Reading conn handles HUP through read() → EOF below.
                dead.push(id);
                continue;
            }
            if revents & POLLOUT != 0 && conn.has_pending_out() {
                if flush_out(conn).is_err() {
                    dead.push(id);
                    continue;
                }
                if !conn.has_pending_out() && conn.close_after_write {
                    dead.push(id);
                    continue;
                }
            }
            if revents & (POLLIN | POLLHUP) != 0 && matches!(conn.phase, Phase::Reading) {
                match read_burst(conn) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => {
                        // EOF between requests is a clean close; EOF with
                        // a partial request buffered cannot complete.
                        dead.push(id);
                        continue;
                    }
                }
            }
            // Parse/dispatch whenever the conn is idle-reading with no
            // response in flight or pending.
            if matches!(conn.phase, Phase::Reading) && !conn.has_pending_out() {
                advance(conn, id, cfg.max_body, &pool);
            }
            // Deadline sweeps.
            if conn
                .partial_since
                .is_some_and(|t| now.duration_since(t) > http::PARTIAL_DEADLINE)
            {
                dead.push(id);
                continue;
            }
            if conn
                .write_since
                .is_some_and(|t| now.duration_since(t) > cfg.write_timeout)
            {
                dead.push(id);
            }
        }
        for id in dead {
            conns.remove(&id);
        }
    }

    pool.close_and_join();
    Ok(())
}

/// Reads until `WouldBlock` (capped at [`READ_BURST`] per call). Returns
/// `Ok(false)` on EOF, `Ok(true)` otherwise.
fn read_burst(conn: &mut Conn) -> std::io::Result<bool> {
    let mut chunk = [0u8; 4096];
    let mut total = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.partial_since.get_or_insert_with(Instant::now);
                total += n;
                if total >= READ_BURST {
                    return Ok(true);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Feeds buffered bytes to the parser; on a complete request hands it to
/// the pool (entering [`Phase::Processing`]), on a protocol violation
/// queues the typed reject and closes after writing it.
fn advance(conn: &mut Conn, id: u64, max_body: usize, pool: &Pool) {
    match try_parse_request(&mut conn.buf, max_body) {
        Ok(Some(req)) => {
            conn.partial_since = None;
            conn.phase = Phase::Processing;
            pool.dispatch(Job { conn: id, req });
        }
        Ok(None) => {
            if conn.buf.is_empty() {
                conn.partial_since = None;
            }
        }
        Err(ReadError::Bad { status, message }) => {
            let body = crate::protocol::error_response(http::error_code(status), &message);
            conn.queue_response(status, &body, false, None);
            // No worker owns this conn; Processing just blocks parsing.
            conn.phase = Phase::Processing;
            conn.partial_since = None;
        }
        Err(ReadError::Io(_)) => {
            // The pure parser never produces Io today; if it ever does,
            // tear the connection down instead of aborting the mux thread.
            conn.queue_response(
                400,
                &crate::protocol::error_response("bad_request", "unreadable request"),
                false,
                None,
            );
            conn.phase = Phase::Processing;
            conn.partial_since = None;
        }
    }
}

/// Writes as much pending response as the socket accepts right now.
fn flush_out(conn: &mut Conn) -> std::io::Result<()> {
    while conn.has_pending_out() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "peer stopped accepting",
                ))
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.write_since = Some(Instant::now());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    conn.write_since = None;
    Ok(())
}

/// A loopback socket pair used as the worker→mux wake channel (std-only;
/// avoids pipe/eventfd FFI). The write end is cloned per worker; the read
/// end sits in the poll set.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let gate = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(gate.local_addr()?)?;
    let (rx, _) = gate.accept()?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn start_echo(
        workers: usize,
    ) -> (
        String,
        Arc<AtomicBool>,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handler: Arc<Handler> = Arc::new(|req: &Request| MuxResponse {
            status: 200,
            body: format!("{{\"path\":{:?},\"len\":{}}}", req.path, req.body.len()),
            retry_after: None,
            close: false,
        });
        let cfg = MuxConfig {
            workers,
            drain_grace: Duration::from_secs(2),
            ..MuxConfig::default()
        };
        let h = std::thread::spawn(move || run(listener, cfg, flag, handler));
        (addr, shutdown, h)
    }

    #[test]
    fn serves_keep_alive_sequences_and_rejects_bad_framing() {
        let (addr, shutdown, mux) = start_echo(2);
        let mut c = crate::client::Client::connect(&addr).expect("connect");
        for i in 0..5 {
            let (status, body) = c
                .post("/v1/predict", &"x".repeat(i + 1))
                .expect("keep-alive request");
            assert_eq!(status, 200);
            assert!(body.contains(&format!("\"len\":{}", i + 1)), "{body}");
        }
        // A second, malformed connection gets a typed 400 and a close —
        // the first connection keeps serving afterwards.
        let mut bad = TcpStream::connect(&addr).expect("connect bad");
        bad.write_all(b"NOT-HTTP\r\n\r\n").expect("write");
        let mut answer = String::new();
        let _ = bad.read_to_string(&mut answer);
        assert!(answer.starts_with("HTTP/1.1 400 "), "{answer}");
        assert!(answer.contains("bad_request"), "{answer}");
        let (status, _) = c.get("/healthz").expect("still serving");
        assert_eq!(status, 200);
        drop(c);
        shutdown.store(true, Ordering::Release);
        mux.join().expect("mux thread").expect("clean exit");
    }

    #[test]
    fn concurrent_connections_outnumber_workers() {
        // 8 concurrent clients over 2 workers: connections are poll
        // entries, not threads, so all of them complete.
        let (addr, shutdown, mux) = start_echo(2);
        let mut joins = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            joins.push(std::thread::spawn(move || {
                let mut c = crate::client::Client::connect(&addr).expect("connect");
                let (status, body) = c.post(&format!("/echo/{i}"), "{}").expect("request");
                assert_eq!(status, 200);
                assert!(body.contains(&format!("/echo/{i}")), "{body}");
            }));
        }
        for j in joins {
            j.join().expect("client");
        }
        shutdown.store(true, Ordering::Release);
        mux.join().expect("mux thread").expect("clean exit");
    }

    #[test]
    fn draining_closes_idle_connections_and_exits() {
        let (addr, shutdown, mux) = start_echo(1);
        // An idle keep-alive connection holds no thread and must not
        // block shutdown.
        let idle = TcpStream::connect(&addr).expect("connect idle");
        std::thread::sleep(Duration::from_millis(50));
        shutdown.store(true, Ordering::Release);
        mux.join().expect("mux thread").expect("clean exit");
        drop(idle);
    }

    #[test]
    fn worker_knob_resolves_from_env() {
        assert_eq!(MuxConfig::resolve_workers(|_| None), 32);
        assert_eq!(
            MuxConfig::resolve_workers(|k| (k == "TSPN_SERVE_IO_WORKERS").then(|| "7".to_string())),
            7
        );
        assert_eq!(
            MuxConfig::resolve_workers(|_| Some("0".to_string())),
            32,
            "zero workers would deadlock; ignored"
        );
    }
}
