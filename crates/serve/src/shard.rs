//! Shard routing: which lane — and, in a fleet, which backend — owns a
//! request.
//!
//! Everything that fans the serving layer out agrees on one hash: the
//! server picks a lane, the router picks a backend, and a shard-aware
//! client ([`crate::client::FleetClient`]) mirrors both decisions
//! client-side. The function is FNV-1a 64 (tiny, dependency-free,
//! deterministic across processes), advertised by `GET /v1/topology` as
//! [`SHARD_FN_ID`] so a client can refuse to route for a fleet speaking a
//! different hash.
//!
//! Session ids carry their placement arithmetically instead of through a
//! lookup table: lane `l` of `L` (on backend `b` of `N`) issues ids from
//! the stride-partitioned sequence `first = b + l·N + 1`,
//! `stride = N·L`, so `(id − 1) mod N` recovers the backend and
//! `((id − 1 − b) / N) mod L` the lane — no coordination, no id ever
//! issued twice across the fleet, and the single-process single-lane
//! layout degenerates to the historical `1, 2, 3, …` sequence exactly.

use tspn_data::Visit;

/// Identifier of the shard hash advertised by `/v1/topology`. A router,
/// backend, and client must agree on this before routing by hash.
pub const SHARD_FN_ID: &str = "fnv1a64";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte stream, seedable so hashes compose.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Hash of a user id — the shard key for sessions and legacy
/// index-addressed predictions.
pub fn hash_user(user: usize) -> u64 {
    fnv1a(FNV_OFFSET, &(user as u64).to_le_bytes())
}

/// Hash of an ad-hoc payload (user + full check-in stream) — the shard
/// key for `POST /v1/predict`, which carries no server-side state and so
/// may spread one user's payloads across lanes for throughput.
pub fn hash_content(user: usize, checkins: &[Visit]) -> u64 {
    let mut state = fnv1a(FNV_OFFSET, &(user as u64).to_le_bytes());
    for v in checkins {
        state = fnv1a(state, &(v.poi.0 as u64).to_le_bytes());
        state = fnv1a(state, &v.time.to_le_bytes());
    }
    state
}

/// Lane (or backend) index for a user-keyed request.
pub fn shard_of_user(user: usize, shards: usize) -> usize {
    (hash_user(user) % shards.max(1) as u64) as usize
}

/// Lane (or backend) index for a payload-keyed request.
pub fn shard_of_content(user: usize, checkins: &[Visit], shards: usize) -> usize {
    (hash_content(user, checkins) % shards.max(1) as u64) as usize
}

/// A stride-partitioned slice of the session/batch id space: ids
/// `first, first + stride, first + 2·stride, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdPartition {
    /// First id this partition may issue (≥ 1).
    pub first: u64,
    /// Distance between consecutive ids (≥ 1).
    pub stride: u64,
}

impl IdPartition {
    /// The id space of lane `lane` of `lanes` on backend `shard_index` of
    /// `shard_count`. A standalone server is backend 0 of 1.
    pub fn new(shard_index: usize, shard_count: usize, lane: usize, lanes: usize) -> IdPartition {
        let (b, n) = (shard_index as u64, shard_count.max(1) as u64);
        let (l, lanes) = (lane as u64, lanes.max(1) as u64);
        assert!(b < n, "shard index {b} out of range for {n} backends");
        assert!(l < lanes, "lane {l} out of range for {lanes} lanes");
        IdPartition {
            first: b + l * n + 1,
            stride: n * lanes,
        }
    }

    /// Whether `id` belongs to this partition's residue class.
    pub fn owns(&self, id: u64) -> bool {
        id >= self.first && (id - self.first).is_multiple_of(self.stride)
    }
}

/// Which backend of `shard_count` issued session id `id`. Ids the fleet
/// never issued still resolve to *some* backend, whose per-lane store
/// reports them `404 unknown` — misrouting is impossible, only rejection.
pub fn backend_of_session_id(id: u64, shard_count: usize) -> usize {
    (id.saturating_sub(1) % shard_count.max(1) as u64) as usize
}

/// Which lane of `lanes` (on backend `shard_index` of `shard_count`)
/// issued session id `id`. Ids from a foreign residue class resolve to an
/// arbitrary local lane, whose store rejects them as unknown.
pub fn lane_of_session_id(id: u64, shard_index: usize, shard_count: usize, lanes: usize) -> usize {
    let r = id.saturating_sub(1).saturating_sub(shard_index as u64);
    ((r / shard_count.max(1) as u64) % lanes.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::PoiId;

    fn visit(poi: usize, time: i64) -> Visit {
        Visit {
            poi: PoiId(poi),
            time,
        }
    }

    #[test]
    fn user_hash_is_stable_and_spreads() {
        // Pinned value: the topology contract says fnv1a64 over 8 LE
        // bytes; a silent change here would strand every client.
        assert_eq!(hash_user(0), fnv1a(FNV_OFFSET, &[0u8; 8]));
        let mut lanes_hit = [false; 4];
        for user in 0..64 {
            lanes_hit[shard_of_user(user, 4)] = true;
        }
        assert!(lanes_hit.iter().all(|&h| h), "64 users cover 4 lanes");
    }

    #[test]
    fn content_hash_depends_on_every_checkin() {
        let a = vec![visit(1, 100), visit(2, 200)];
        let mut b = a.clone();
        b[1].time += 1;
        assert_ne!(hash_content(7, &a), hash_content(7, &b));
        assert_ne!(hash_content(7, &a), hash_content(8, &a));
        assert_eq!(hash_content(7, &a), hash_content(7, &a.clone()));
    }

    #[test]
    fn partitions_tile_the_id_space_without_overlap() {
        let (n, lanes) = (2usize, 3usize);
        let mut owners = std::collections::HashMap::new();
        for b in 0..n {
            for l in 0..lanes {
                let p = IdPartition::new(b, n, l, lanes);
                let mut id = p.first;
                for _ in 0..8 {
                    assert!(p.owns(id));
                    assert_eq!(owners.insert(id, (b, l)), None, "id {id} double-issued");
                    assert_eq!(backend_of_session_id(id, n), b);
                    assert_eq!(lane_of_session_id(id, b, n, lanes), l);
                    id += p.stride;
                }
            }
        }
        // Every id 1..=48 is owned by exactly one (backend, lane).
        for id in 1..=48u64 {
            assert!(owners.contains_key(&id), "id {id} unowned");
        }
    }

    #[test]
    fn single_process_single_lane_is_the_historical_sequence() {
        let p = IdPartition::new(0, 1, 0, 1);
        assert_eq!(
            p,
            IdPartition {
                first: 1,
                stride: 1
            }
        );
        assert!(p.owns(1) && p.owns(2) && p.owns(3));
        assert_eq!(lane_of_session_id(999, 0, 1, 1), 0);
        assert_eq!(backend_of_session_id(999, 1), 0);
    }
}
