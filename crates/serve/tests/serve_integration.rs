//! End-to-end serving acceptance: concurrent clients over real sockets,
//! bitwise identity with the offline predictor, checkpoint hot-swap with
//! no mixed-parameter batches, and corrupt-checkpoint rejection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use serde::Value;
use tspn_core::{Partition, Predictor, Query, SpatialContext, TspnConfig};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::{PoiId, Sample, Visit};
use tspn_serve::protocol::{
    error_of, session_append_body, session_create_body, v1_predict_request_body,
};
use tspn_serve::{
    server, BatchConfig, Client, ServerConfig, ServerHandle, SessionConfig, BOOT_VERSION,
};

fn tiny_model_cfg(seed: u64) -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 1,
        hgat_layers: 1,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        seed,
        ..TspnConfig::default()
    }
}

/// The deterministic serving context (regenerable at will: client-side
/// reference predictors see the same dataset the server serves).
fn tiny_ctx(cfg: &TspnConfig) -> SpatialContext {
    let mut dcfg = nyc_mini(0.1);
    dcfg.days = 12;
    let (ds, world) = generate_dataset(dcfg);
    SpatialContext::build(ds, world, cfg)
}

fn start_server(seed: u64, batch: BatchConfig) -> ServerHandle {
    start_server_with_sessions(seed, batch, SessionConfig::default())
}

fn start_server_with_sessions(
    seed: u64,
    batch: BatchConfig,
    session: SessionConfig,
) -> ServerHandle {
    let cfg = tiny_model_cfg(seed);
    let ctx = tiny_ctx(&cfg);
    server::start(
        ServerConfig {
            batch,
            session,
            ..ServerConfig::default()
        },
        cfg,
        ctx,
        None,
    )
    .expect("server starts")
}

fn reference_predictor(seed: u64) -> (Predictor, Vec<Sample>) {
    let cfg = tiny_model_cfg(seed);
    let ctx = tiny_ctx(&cfg);
    let samples = ctx.dataset.all_samples();
    (Predictor::new(cfg, ctx), samples)
}

fn predict_body(s: &Sample, k: usize, top: usize) -> String {
    tspn_serve::protocol::predict_request_body(s, k, top)
}

fn pois_of(v: &Value) -> Vec<PoiId> {
    tspn_serve::protocol::pois_of(v).unwrap_or_else(|| panic!("missing pois array: {v:?}"))
}

fn num_field(v: &Value, name: &str) -> u64 {
    v.get(name)
        .and_then(Value::as_usize)
        .unwrap_or_else(|| panic!("missing numeric field {name:?} in {v:?}")) as u64
}

/// Releases `stop`-gated hammer threads even when the owning scope body
/// panics — otherwise `thread::scope`'s implicit join would wait on them
/// forever and the panic would surface as a hang instead of a failure.
struct StopGuard<'a>(&'a AtomicUsize);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.store(1, Ordering::Release);
    }
}

#[test]
fn concurrent_clients_get_bitwise_identical_answers() {
    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let per_client = 6usize;
    let clients = 8usize;
    assert!(
        samples.len() >= clients * per_client,
        "dataset too small for test"
    );

    let answers: Vec<(Sample, Vec<PoiId>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let samples = &samples;
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut out = Vec::new();
                for r in 0..per_client {
                    let s = samples[(c * per_client + r) % samples.len()];
                    let (status, v) = client
                        .post_json("/predict", &predict_body(&s, 4, 10))
                        .expect("predict I/O");
                    assert_eq!(status, 200, "predict failed: {v:?}");
                    assert_eq!(num_field(&v, "snapshot"), BOOT_VERSION);
                    out.push((s, pois_of(&v)));
                }
                out
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });

    assert_eq!(answers.len(), clients * per_client);
    for (s, served) in answers {
        let offline = reference.predict_one(&Query::with_top(s, 4, 10));
        assert_eq!(served, offline.pois, "served ranking diverged for {s:?}");
        assert!(!served.is_empty());
        // Valid top-k: no duplicate POIs.
        let mut unique = served.clone();
        unique.sort_unstable_by_key(|p| p.0);
        unique.dedup();
        assert_eq!(unique.len(), served.len(), "duplicate POIs in top-k");
    }

    // Health reflects the traffic.
    let mut client = Client::connect(&addr).expect("connect");
    let (status, text) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&text).expect("health JSON");
    assert_eq!(num_field(&health, "served") as usize, clients * per_client);
    assert!(num_field(&health, "batches") >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn reload_swaps_checkpoints_without_mixing_a_batch() {
    // Two reference parameter sets over the identical dataset/context.
    let (ref_a, samples) = reference_predictor(7);
    let (ref_b, _) = reference_predictor(999);
    let dir = std::env::temp_dir().join(format!("tspn-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path_a = dir.join("ckpt_a.json");
    let path_b = dir.join("ckpt_b.json");
    std::fs::write(&path_a, serde_json::to_string(&ref_a.save()).unwrap()).unwrap();
    std::fs::write(&path_b, serde_json::to_string(&ref_b.save()).unwrap()).unwrap();

    // Small batches + a real deadline so reloads land between many
    // batches while clients hammer the server.
    let handle = start_server(
        7,
        BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(1),
            queue_cap: 256,
        },
    );
    let addr = handle.local_addr().to_string();
    let q = Query::with_top(samples[0], 4, 8);
    let expect_a = ref_a.predict_one(&q).pois;
    let expect_b = ref_b.predict_one(&q).pois;
    assert_ne!(
        expect_a, expect_b,
        "seeds must rank differently for this test"
    );

    let stop = AtomicUsize::new(0);
    let observations: Vec<(u64, u64, Vec<PoiId>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..4 {
            let addr = addr.clone();
            let (stop, s) = (&stop, samples[0]);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut seen = Vec::new();
                while stop.load(Ordering::Acquire) == 0 {
                    let (status, v) = client
                        .post_json("/predict", &predict_body(&s, 4, 8))
                        .expect("predict I/O");
                    assert_eq!(status, 200, "{v:?}");
                    seen.push((
                        num_field(&v, "batch"),
                        num_field(&v, "snapshot"),
                        pois_of(&v),
                    ));
                }
                seen
            }));
        }
        // Alternate A/B reloads while the clients run.
        let _release_hammers = StopGuard(&stop);
        let mut admin = Client::connect(&addr).expect("connect admin");
        let mut last_version = BOOT_VERSION;
        for round in 0..6 {
            std::thread::sleep(Duration::from_millis(30));
            let path = if round % 2 == 0 { &path_b } else { &path_a };
            let body = format!("{{\"path\":{:?}}}", path.display().to_string());
            let (status, v) = admin.post_json("/admin/reload", &body).expect("reload I/O");
            assert_eq!(status, 200, "reload failed: {v:?}");
            let version = num_field(&v, "snapshot");
            assert!(version > last_version, "snapshot versions are monotonic");
            last_version = version;
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(1, Ordering::Release);
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client"))
            .collect()
    });

    // Every answer matches exactly one reference parameter set, the set
    // implied by its snapshot version — never a mixture.
    let mut by_batch: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut swaps_observed = std::collections::HashSet::new();
    for (batch, snapshot, pois) in &observations {
        swaps_observed.insert(*snapshot);
        // One batch, one snapshot: a second answer from the same batch
        // must agree on the version.
        if let Some(prev) = by_batch.insert(*batch, *snapshot) {
            assert_eq!(prev, *snapshot, "batch {batch} served under two snapshots");
        }
        // Boot (version 1) and odd reload rounds serve seed-7 parameters;
        // even rounds serve seed-999 parameters.
        let expect = if *snapshot == BOOT_VERSION || snapshot % 2 == 1 {
            &expect_a
        } else {
            &expect_b
        };
        assert_eq!(
            pois, expect,
            "snapshot {snapshot} served a mixed/unknown ranking"
        );
    }
    assert!(
        swaps_observed.len() >= 2,
        "test never observed a hot swap (snapshots: {swaps_observed:?})"
    );

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoints_are_rejected_and_old_snapshot_keeps_serving() {
    let (reference, samples) = reference_predictor(7);
    let dir = std::env::temp_dir().join(format!("tspn-serve-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Corruptions: invalid JSON, wrong shapes, non-finite values.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    let mut reshaped = reference.save();
    reshaped.tensors[0].shape = vec![1, 1];
    reshaped.tensors[0].data = vec![0.5];
    let reshaped_path = dir.join("reshaped.json");
    std::fs::write(&reshaped_path, serde_json::to_string(&reshaped).unwrap()).unwrap();
    let mut poisoned = reference.save();
    let n = poisoned.tensors.len() - 1;
    poisoned.tensors[n].data[0] = f32::INFINITY;
    let poisoned_path = dir.join("poisoned.json");
    std::fs::write(&poisoned_path, serde_json::to_string(&poisoned).unwrap()).unwrap();

    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let s = samples[1];
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .unwrap();
    assert_eq!(status, 200);
    let before = pois_of(&v);
    assert_eq!(
        before,
        reference.predict_one(&Query::with_top(s, 4, 10)).pois
    );

    for (path, needle) in [
        (dir.join("missing.json"), "cannot read"),
        (garbage.clone(), "cannot parse"),
        (reshaped_path.clone(), "shape mismatch"),
        // Non-finite floats serialise as JSON null, so a poisoned file is
        // caught at parse time (the in-memory non-finite path is covered
        // by the snapshot/predictor unit tests).
        (poisoned_path.clone(), "cannot parse"),
    ] {
        let body = format!("{{\"path\":{:?}}}", path.display().to_string());
        let (status, v) = client
            .post_json("/admin/reload", &body)
            .expect("reload I/O");
        assert_eq!(status, 400, "corrupt checkpoint accepted: {v:?}");
        let (code, err) = tspn_serve::protocol::error_of(&v).expect("typed error body");
        assert_eq!(code, "bad_request");
        assert!(
            err.contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }

    // Still serving the boot snapshot, bitwise.
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(num_field(&v, "snapshot"), BOOT_VERSION);
    assert_eq!(pois_of(&v), before);

    // Malformed predict bodies and unknown routes answer without killing
    // the connection's session.
    let (status, _) = client.post("/predict", "{\"user\":0}").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .post("/predict", "{\"user\":99999,\"traj\":0,\"prefix_len\":1}")
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.post("/predict", &predict_body(&s, 4, 10)).unwrap();
    assert_eq!(status, 200, "session survives rejected requests");

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The raw check-in stream a client would send to address `s` by payload.
fn stream_of(reference: &Predictor, s: &Sample) -> Vec<Visit> {
    reference.ctx().dataset.sample_checkins(s)
}

fn str_field<'a>(v: &'a Value, name: &str) -> &'a str {
    v.get(name)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field {name:?} in {v:?}"))
}

#[test]
fn mixed_legacy_payload_and_session_queries_are_bitwise_identical_under_load() {
    // The acceptance contract: every address mode — legacy index triple,
    // v1 raw payload, and a session built by incremental appends — must
    // return the same ranking as the offline reference, bitwise, while
    // all three hammer the server concurrently (so one micro-batch flush
    // routinely mixes all three kinds).
    let handle = start_server(
        7,
        BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(1),
            queue_cap: 256,
        },
    );
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let per_client = 6usize;
    let clients = 6usize; // 2 per address mode
    assert!(samples.len() >= clients * per_client, "dataset too small");
    // Streams are precomputed: the reference predictor itself is not
    // Sync (the tape is Rc-based) and stays on this thread.
    let streams: Vec<Vec<Visit>> = samples.iter().map(|s| stream_of(&reference, s)).collect();

    let answers: Vec<(Sample, Vec<PoiId>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let (samples, streams) = (&samples, &streams);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut out = Vec::new();
                for r in 0..per_client {
                    let i = (c * per_client + r) % samples.len();
                    let s = samples[i];
                    let v = match c % 3 {
                        // Legacy index-addressed.
                        0 => {
                            let (status, v) = client
                                .post_json("/predict", &predict_body(&s, 4, 10))
                                .expect("legacy predict I/O");
                            assert_eq!(status, 200, "legacy predict failed: {v:?}");
                            v
                        }
                        // v1 payload-addressed.
                        1 => {
                            let body = v1_predict_request_body(s.user_index, &streams[i], 4, 10);
                            let (status, v) = client
                                .post_json("/v1/predict", &body)
                                .expect("v1 predict I/O");
                            assert_eq!(status, 200, "v1 predict failed: {v:?}");
                            v
                        }
                        // Sessionful: create with the full stream, predict.
                        _ => {
                            let body = session_create_body(s.user_index, &streams[i]);
                            let (status, v) = client
                                .post_json("/v1/sessions", &body)
                                .expect("session create I/O");
                            assert_eq!(status, 200, "session create failed: {v:?}");
                            let id = str_field(&v, "session").to_string();
                            let (status, v) = client
                                .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
                                .expect("session predict I/O");
                            assert_eq!(status, 200, "session predict failed: {v:?}");
                            v
                        }
                    };
                    out.push((s, pois_of(&v)));
                }
                out
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });

    for (s, served) in answers {
        let offline = reference.predict_one(&Query::with_top(s, 4, 10));
        assert_eq!(served, offline.pois, "ranking diverged for {s:?}");
    }

    // Per-endpoint stats partition the served total. `/v1/stats` is
    // schema v2 now: the counters live under `aggregate`, with a `lanes`
    // breakdown beside them.
    let mut client = Client::connect(&addr).expect("connect");
    let (status, text) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&text).expect("stats JSON");
    assert_eq!(
        stats.get("schema_version").and_then(Value::as_usize),
        Some(2)
    );
    let agg = stats.get("aggregate").expect("aggregate object");
    let served = agg.get("served").expect("served object");
    let total = num_field(served, "total");
    assert_eq!(total as usize, clients * per_client);
    assert_eq!(
        num_field(served, "legacy_predict")
            + num_field(served, "v1_predict")
            + num_field(served, "session_predict"),
        total,
        "per-endpoint counters must partition the total"
    );
    let sessions = agg.get("sessions").expect("sessions object");
    assert_eq!(num_field(sessions, "created") as usize, 2 * per_client);
    let lanes = stats
        .get("lanes")
        .and_then(Value::as_array)
        .expect("lanes array");
    assert_eq!(lanes.len(), 1, "default server runs one lane");

    // The `?flat=1` compat renderer still serves the schema v1 shape.
    let (status, text) = client.get("/v1/stats?flat=1").expect("flat stats");
    assert_eq!(status, 200);
    let flat: Value = serde_json::from_str(&text).expect("flat stats JSON");
    assert_eq!(
        num_field(flat.get("served").expect("served object"), "total"),
        total
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn session_lifecycle_appends_predict_incrementally_and_expiry_gones() {
    // Short TTL so expiry is observable; capacity 3 so eviction is too.
    let handle = start_server_with_sessions(
        7,
        BatchConfig::default(),
        SessionConfig {
            ttl: Duration::from_millis(400),
            max_sessions: 3,
            max_visits: 1024,
        },
    );
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    // A sample with history and at least two prefix visits, so appends
    // genuinely extend the trajectory.
    let s = *samples
        .iter()
        .find(|s| s.traj_index > 0 && s.prefix_len >= 3)
        .expect("dataset has a deep sample");
    let stream = stream_of(&reference, &s);
    let prefix_len = s.prefix_len;
    let history = &stream[..stream.len() - prefix_len];
    let prefix = &stream[stream.len() - prefix_len..];

    let mut client = Client::connect(&addr).expect("connect");

    // Create seeded with the history only.
    let (status, v) = client
        .post_json("/v1/sessions", &session_create_body(s.user_index, history))
        .expect("create I/O");
    assert_eq!(status, 200, "{v:?}");
    let id = str_field(&v, "session").to_string();
    assert_eq!(num_field(&v, "checkins") as usize, history.len());

    // Append the current trajectory visit by visit; after the j-th append
    // the session addresses exactly sample (user, traj, j) — predictions
    // must match the indexed reference bitwise at every step.
    for j in 1..=prefix_len {
        let (status, v) = client
            .post_json(
                &format!("/v1/sessions/{id}/checkins"),
                &session_append_body(&prefix[j - 1..j]),
            )
            .expect("append I/O");
        assert_eq!(status, 200, "append {j} failed: {v:?}");
        assert_eq!(num_field(&v, "checkins") as usize, history.len() + j);

        let (status, v) = client
            .post_json(&format!("/v1/sessions/{id}/predict"), r#"{"k":4,"top":10}"#)
            .expect("session predict I/O");
        assert_eq!(status, 200, "session predict {j} failed: {v:?}");
        let indexed = Sample { prefix_len: j, ..s };
        let offline = reference.predict_one(&Query::with_top(indexed, 4, 10));
        assert_eq!(
            pois_of(&v),
            offline.pois,
            "session predict after {j} appends diverged from indexed reference"
        );
    }

    // Info reflects the state; an unordered append is rejected atomically.
    let (status, v) = client
        .get(&format!("/v1/sessions/{id}"))
        .map(|(s, t)| (s, serde_json::from_str::<Value>(&t).unwrap()))
        .expect("info I/O");
    assert_eq!(status, 200);
    assert_eq!(num_field(&v, "checkins") as usize, stream.len());
    let backwards = vec![Visit {
        poi: stream[0].poi,
        time: stream[stream.len() - 1].time - 1_000_000,
    }];
    let (status, v) = client
        .post_json(
            &format!("/v1/sessions/{id}/checkins"),
            &session_append_body(&backwards),
        )
        .expect("bad append I/O");
    assert_eq!(status, 422, "{v:?}");
    assert_eq!(error_of(&v).unwrap().0, "unprocessable");

    // Delete → subsequent access is 410 gone; unknown ids are 404.
    let (status, _) = client
        .request("DELETE", &format!("/v1/sessions/{id}"), None)
        .expect("delete I/O");
    assert_eq!(status, 200);
    let (status, v) = client
        .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
        .expect("gone predict I/O");
    assert_eq!(status, 410, "{v:?}");
    assert_eq!(error_of(&v).unwrap().0, "gone");
    let (status, v) = client
        .post_json("/v1/sessions/s999999/predict", "{}")
        .expect("unknown predict I/O");
    assert_eq!(status, 404, "{v:?}");
    assert_eq!(error_of(&v).unwrap().0, "not_found");

    // TTL expiry: an idle session reports 410 after its deadline.
    let (status, v) = client
        .post_json(
            "/v1/sessions",
            &session_create_body(s.user_index, &stream[..1]),
        )
        .expect("create I/O");
    assert_eq!(status, 200);
    let idle = str_field(&v, "session").to_string();
    std::thread::sleep(Duration::from_millis(700));
    let (status, v) = client
        .post_json(&format!("/v1/sessions/{idle}/predict"), "{}")
        .expect("expired predict I/O");
    assert_eq!(status, 410, "expired session not gone: {v:?}");

    // Capacity: creating past max_sessions evicts the longest-idle one.
    let mut ids = Vec::new();
    for _ in 0..4 {
        let (status, v) = client
            .post_json("/v1/sessions", &session_create_body(0, &[]))
            .expect("create I/O");
        assert_eq!(status, 200);
        ids.push(str_field(&v, "session").to_string());
    }
    let (status, _) = client
        .get(&format!("/v1/sessions/{}", ids[0]))
        .expect("evicted info I/O");
    assert_eq!(status, 410, "oldest session should be evicted");

    // healthz and stats surface occupancy and evictions.
    let (status, text) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&text).expect("health JSON");
    assert_eq!(num_field(&health, "sessions"), 3);
    assert!(num_field(&health, "evictions") >= 2, "expiry + capacity");

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_session_appends_and_predictions_stay_consistent() {
    // One session is shared by an appender thread and several predictor
    // threads racing against TTL and each other; every prediction
    // must equal the reference for SOME prefix the session legitimately
    // held (appends are atomic, so no torn state is ever observable).
    let handle = start_server_with_sessions(
        7,
        BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(1),
            queue_cap: 256,
        },
        SessionConfig {
            ttl: Duration::from_secs(30),
            max_sessions: 64,
            max_visits: 1024,
        },
    );
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let s = *samples
        .iter()
        .filter(|s| s.traj_index > 0)
        .max_by_key(|s| s.prefix_len)
        .expect("dataset has history samples");
    let stream = stream_of(&reference, &s);
    let prefix_len = s.prefix_len;
    let history = &stream[..stream.len() - prefix_len];
    let prefix = &stream[stream.len() - prefix_len..];

    // Every reachable reference ranking, by prefix length — plus the
    // history-only state (before the first racing append lands), which
    // the server splits at the last trajectory gap like any payload.
    let mut expected: Vec<Vec<PoiId>> = (1..=prefix_len)
        .map(|j| {
            let indexed = Sample { prefix_len: j, ..s };
            reference.predict_one(&Query::with_top(indexed, 4, 10)).pois
        })
        .collect();
    let full_prefix_ranking = expected.last().cloned().expect("non-empty prefix");
    {
        let t = tspn_data::AdHocTrajectory::from_checkins(
            tspn_data::UserId(s.user_index),
            history,
            tspn_data::DEFAULT_GAP_SECS,
        )
        .expect("history stream is valid");
        let q = Query::adhoc(std::sync::Arc::new(t), 4, 10);
        expected.push(reference.predict_one(&q).pois);
    }

    let mut admin = Client::connect(&addr).expect("connect");
    let (status, v) = admin
        .post_json(
            "/v1/sessions",
            &session_create_body(s.user_index, &history[..history.len().min(1)]),
        )
        .expect("create I/O");
    assert_eq!(status, 200, "{v:?}");
    let id = str_field(&v, "session").to_string();
    // Seed the remaining history before racing.
    if history.len() > 1 {
        let (status, _) = admin
            .post_json(
                &format!("/v1/sessions/{id}/checkins"),
                &session_append_body(&history[1..]),
            )
            .expect("seed I/O");
        assert_eq!(status, 200);
    }

    std::thread::scope(|scope| {
        // Appender: one visit at a time with small pauses.
        let appender = {
            let (addr, id) = (addr.clone(), id.clone());
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for j in 0..prefix_len {
                    let (status, v) = client
                        .post_json(
                            &format!("/v1/sessions/{id}/checkins"),
                            &session_append_body(&prefix[j..j + 1]),
                        )
                        .expect("append I/O");
                    assert_eq!(status, 200, "racing append failed: {v:?}");
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        };
        // Predictors: hammer the same session; every answer must be one
        // of the legitimate prefix rankings (or 422 before any visit of
        // the current trajectory landed — impossible here: history is
        // non-empty, so the session always has a predictable state).
        for _ in 0..3 {
            let (addr, id) = (addr.clone(), id.clone());
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for _ in 0..10 {
                    let (status, v) = client
                        .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
                        .expect("racing predict I/O");
                    assert_eq!(status, 200, "racing predict failed: {v:?}");
                    let pois = pois_of(&v);
                    assert!(
                        expected.contains(&pois),
                        "ranking matches no reachable session state"
                    );
                }
            });
        }
        appender.join().expect("appender");
    });

    // After the race the session holds the full stream: its prediction is
    // the full-prefix reference, bitwise.
    let (status, v) = admin
        .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
        .expect("final predict I/O");
    assert_eq!(status, 200);
    assert_eq!(pois_of(&v), full_prefix_ranking);

    handle.shutdown();
    handle.join();
}

#[test]
fn typed_errors_cover_the_v1_status_classes() {
    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let mut client = Client::connect(&addr).expect("connect");

    // 404 unknown path / 405 wrong method on known paths.
    let (status, v) = client
        .post_json("/v2/predict", "{}")
        .expect("unknown path I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (404, "not_found")
    );
    let (status, v) = client
        .request("GET", "/v1/predict", None)
        .map(|(s, t)| (s, serde_json::from_str::<Value>(&t).unwrap()))
        .expect("wrong method I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (405, "method_not_allowed")
    );
    let (status, v) = client
        .post_json("/healthz", "{}")
        .expect("wrong method I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (405, "method_not_allowed")
    );

    // 400 malformed vs 422 semantically invalid payloads.
    let (status, v) = client
        .post_json("/v1/predict", "{not json")
        .expect("bad json I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (400, "bad_request")
    );
    let (status, v) = client
        .post_json("/v1/predict", r#"{"user":0,"checkins":[]}"#)
        .expect("empty checkins I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (422, "unprocessable")
    );
    let vocab = reference.ctx().dataset.pois.len();
    let (status, v) = client
        .post_json(
            "/v1/predict",
            &format!(r#"{{"user":0,"checkins":[{{"poi":{vocab},"t":0}}]}}"#),
        )
        .expect("bad poi I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (422, "unprocessable")
    );
    let (status, v) = client
        .post_json(
            "/v1/predict",
            r#"{"user":0,"checkins":[{"poi":1,"t":100},{"poi":2,"t":50}]}"#,
        )
        .expect("unordered I/O");
    assert_eq!(
        (status, error_of(&v).unwrap().0.as_str()),
        (422, "unprocessable")
    );

    // The connection session survives every rejected request.
    let s = samples[0];
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .expect("recovery I/O");
    assert_eq!(status, 200);
    assert_eq!(
        pois_of(&v),
        reference.predict_one(&Query::with_top(s, 4, 10)).pois
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn admin_shutdown_stops_the_server_cleanly() {
    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let (status, body) = client.post("/admin/shutdown", "").expect("shutdown I/O");
    assert_eq!(status, 200);
    assert!(body.contains("true"));
    assert!(handle.shutdown_requested());
    handle.join(); // must return: accept loop, handlers and batcher all stop

    // The port is released: a fresh bind to the same address succeeds.
    let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();
    let rebind = std::net::TcpListener::bind(("127.0.0.1", port));
    assert!(
        rebind.is_ok(),
        "port still held after clean shutdown: {rebind:?}"
    );
}

/// Server with explicit overload / chaos knobs (model seed 7 everywhere so
/// the reference predictor matches).
fn start_server_overload(cfg: ServerConfig) -> ServerHandle {
    let model_cfg = tiny_model_cfg(7);
    let ctx = tiny_ctx(&model_cfg);
    server::start(cfg, model_cfg, ctx, None).expect("server starts")
}

/// The flat (schema v1) stats ledger via the `?flat=1` compat renderer —
/// these tests predate lanes and read the flat shape on purpose.
fn stats_of(client: &mut Client) -> Value {
    let (status, text) = client.get("/v1/stats?flat=1").expect("stats I/O");
    assert_eq!(status, 200);
    serde_json::from_str(&text).expect("stats JSON")
}

fn p99(mut latencies: Vec<Duration>) -> Duration {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    latencies[(latencies.len() - 1) * 99 / 100]
}

#[test]
fn overload_sheds_typed_429_and_accepted_latency_stays_bounded() {
    // Chaos pins every flush at 25 ms, so serving capacity is a number:
    // max_batch=8 per 25 ms. Four client threads per queue slot overload
    // it deterministically.
    let handle = start_server_overload(ServerConfig {
        batch: BatchConfig {
            max_batch: 8,
            deadline: Duration::from_millis(1),
            queue_cap: 4,
        },
        chaos: tspn_serve::ChaosConfig {
            flush_delay: Some(Duration::from_millis(25)),
            ..Default::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let s = samples[0];

    // Calm phase: one client, sequential — the p99 baseline.
    let mut client = Client::connect(&addr).expect("connect");
    let calm: Vec<Duration> = (0..12)
        .map(|_| {
            let t0 = std::time::Instant::now();
            let (status, v) = client
                .post_json("/predict", &predict_body(&s, 4, 10))
                .expect("calm predict I/O");
            assert_eq!(status, 200, "{v:?}");
            t0.elapsed()
        })
        .collect();
    let calm_p99 = p99(calm);

    // Overload phase: 16 concurrent clients (4x the queue, 2x max_batch)
    // hammering with no pauses. Every response must be a typed 200 answer
    // or a typed shed — never a hang or a reset.
    let per_client = 12usize;
    let results: Vec<(u16, Option<String>, Duration)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..16 {
            let addr = addr.clone();
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut out = Vec::new();
                for _ in 0..per_client {
                    let t0 = std::time::Instant::now();
                    let resp = client
                        .request_full("POST", "/predict", Some(&predict_body(&s, 4, 10)))
                        .expect("overload predict I/O: typed shed expected, not a reset");
                    let v: Value = serde_json::from_str(&resp.body)
                        .unwrap_or_else(|e| panic!("untyped body {:?}: {e}", resp.body));
                    let code = error_of(&v).map(|(c, _)| c);
                    if resp.status != 200 {
                        assert!(
                            resp.retry_after.is_some(),
                            "shed without Retry-After: {v:?}"
                        );
                    }
                    out.push((resp.status, code, t0.elapsed()));
                }
                out
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("load thread"))
            .collect()
    });

    let mut sheds = 0usize;
    let mut accepted = Vec::new();
    for (status, code, latency) in &results {
        match status {
            200 => accepted.push(*latency),
            429 => {
                assert_eq!(code.as_deref(), Some("overloaded"));
                sheds += 1;
            }
            503 => {
                assert_eq!(code.as_deref(), Some("deadline_exceeded"));
                sheds += 1;
            }
            other => panic!("unexpected status {other} under overload"),
        }
    }
    assert!(sheds > 0, "4x saturation never shed");
    assert!(!accepted.is_empty(), "overload starved every request");
    let accepted_p99 = p99(accepted);
    assert!(
        accepted_p99 <= calm_p99 * 3,
        "accepted p99 {accepted_p99:?} exceeds 3x calm p99 {calm_p99:?}"
    );

    // Deadline phase: a 1 ms budget cannot survive a 25 ms flush already
    // in progress — queued requests are dropped before the flush and
    // answered with a typed 503 deadline_exceeded.
    let stop = AtomicUsize::new(0);
    let expired = std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                while stop.load(Ordering::Acquire) == 0 {
                    let _ = client.post("/predict", &predict_body(&s, 4, 10));
                }
            });
        }
        let _release_hammers = StopGuard(&stop);
        let mut client = Client::connect(&addr).expect("connect");
        client.set_deadline_ms(Some(1));
        let mut expired = 0usize;
        for _ in 0..40 {
            let (status, v) = client
                .post_json("/predict", &predict_body(&s, 4, 10))
                .expect("deadline predict I/O");
            match status {
                200 => {}
                // The hammers saturate the depth-4 queue, so this client's
                // requests legitimately shed 429 at admission too; only
                // requests that got *queued* can expire their 1 ms budget.
                429 => assert_eq!(error_of(&v).unwrap().0, "overloaded", "{v:?}"),
                503 => {
                    assert_eq!(error_of(&v).unwrap().0, "deadline_exceeded", "{v:?}");
                    expired += 1;
                }
                other => panic!("unexpected status {other} with a 1 ms deadline: {v:?}"),
            }
        }
        expired
    });
    assert!(
        expired > 0,
        "1 ms deadlines never expired against 25 ms flushes"
    );

    // The server recovered: queue drained, counters surfaced, and answers
    // are still bitwise the offline reference.
    std::thread::sleep(Duration::from_millis(200));
    let mut client = Client::connect(&addr).expect("connect");
    let stats = stats_of(&mut client);
    assert_eq!(stats.get("ready").and_then(Value::as_bool), Some(true));
    let overload = stats.get("overload").expect("overload object");
    assert_eq!(num_field(overload, "queue_cap"), 4);
    assert!(num_field(overload, "shed_queue_full") >= sheds as u64 / 2);
    assert!(num_field(overload, "shed_expired") >= expired as u64);
    assert_eq!(num_field(overload, "restarts"), 0);
    let (status, text) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&text).expect("health JSON");
    assert_eq!(health.get("ready").and_then(Value::as_bool), Some(true));
    assert_eq!(num_field(&health, "queue_cap"), 4);
    assert!(health.get("shed").is_some(), "healthz lacks shed counters");

    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .expect("post-overload predict I/O");
    assert_eq!(status, 200);
    assert_eq!(
        pois_of(&v),
        reference.predict_one(&Query::with_top(s, 4, 10)).pois,
        "post-overload predictions diverged from the offline reference"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn supervisor_restarts_from_last_published_checkpoint_and_breaker_recovers() {
    // Three injected panics (budget), breaker threshold 3: the storm
    // trips the breaker exactly once, then the server must recover and
    // serve the *published* parameters bitwise.
    let handle = start_server_overload(ServerConfig {
        chaos: tspn_serve::ChaosConfig {
            flush_panic_every: Some(1),
            flush_panic_budget: Some(3),
            ..Default::default()
        },
        breaker: tspn_serve::BreakerConfig {
            threshold: 3,
            window: Duration::from_secs(30),
            cooldown: Duration::from_millis(1500),
        },
        ..ServerConfig::default()
    });
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(999);
    let s = samples[0];

    // Publish the seed-999 parameters before any flush: the first flush
    // applies them, so they are the supervisor's restore point.
    let dir = std::env::temp_dir().join(format!("tspn-serve-supervise-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt_path = dir.join("published.json");
    std::fs::write(
        &ckpt_path,
        serde_json::to_string(&reference.save()).unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(&addr).expect("connect");
    let body = format!("{{\"path\":{:?}}}", ckpt_path.display().to_string());
    let (status, v) = client
        .post_json("/admin/reload", &body)
        .expect("reload I/O");
    assert_eq!(status, 200, "{v:?}");
    let published_version = num_field(&v, "snapshot");

    // The crash storm: each predict's flush panics; the waiter gets a
    // typed 500, never a hang or a connection reset.
    for round in 1..=3 {
        let (status, v) = client
            .post_json("/predict", &predict_body(&s, 4, 10))
            .expect("crash-storm predict I/O");
        assert_eq!(status, 500, "round {round}: {v:?}");
        assert_eq!(error_of(&v).unwrap().0, "internal", "round {round}");
    }

    // The breaker trips once the third restart is processed; observe it
    // through /healthz (not-ready) without issuing predictions.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, text) = client.get("/healthz").expect("healthz I/O");
        assert_eq!(status, 200);
        let health: Value = serde_json::from_str(&text).expect("health JSON");
        if health.get("ready").and_then(Value::as_bool) == Some(false) {
            assert_eq!(str_field(&health, "status"), "not_ready");
            assert_eq!(num_field(&health, "restarts"), 3);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "breaker never tripped after 3 panics"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // While open, predictions shed with a typed 503 not_ready.
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .expect("breaker predict I/O");
    assert_eq!(status, 503, "{v:?}");
    assert_eq!(error_of(&v).unwrap().0, "not_ready");

    // After the cool-down the breaker closes and the panic budget is
    // spent: service resumes, bitwise identical to the published
    // (seed-999) parameters — proof the supervisor restored them.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let (_, text) = client.get("/healthz").expect("healthz I/O");
        let health: Value = serde_json::from_str(&text).expect("health JSON");
        if health.get("ready").and_then(Value::as_bool) == Some(true) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "breaker never recovered after its cool-down"
        );
    }
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .expect("recovered predict I/O");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_field(&v, "snapshot"), published_version);
    assert_eq!(
        pois_of(&v),
        reference.predict_one(&Query::with_top(s, 4, 10)).pois,
        "post-recovery predictions diverged from the published checkpoint"
    );

    let stats = stats_of(&mut client);
    let overload = stats.get("overload").expect("overload object");
    assert_eq!(num_field(overload, "restarts"), 3);
    assert!(num_field(overload, "shed_not_ready") >= 1);
    let chaos = stats.get("chaos").expect("chaos object");
    assert_eq!(num_field(chaos, "injected_panics"), 3);

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn draining_server_sheds_typed_503_instead_of_resetting() {
    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let (_, samples) = reference_predictor(7);
    let s = samples[0];

    // An established keep-alive connection with a completed request.
    let mut client = Client::connect(&addr).expect("connect");
    let (status, _) = client
        .post("/predict", &predict_body(&s, 4, 10))
        .expect("warm-up predict");
    assert_eq!(status, 200);

    // Another connection triggers the drain; the first connection's next
    // request must get a typed 503 shutting_down with Retry-After — not
    // a connection reset.
    let mut admin = Client::connect(&addr).expect("connect admin");
    let (status, _) = admin.post("/admin/shutdown", "").expect("shutdown I/O");
    assert_eq!(status, 200);
    let resp = client
        .request_full("POST", "/predict", Some(&predict_body(&s, 4, 10)))
        .expect("draining request should be answered, not reset");
    assert_eq!(resp.status, 503, "{resp:?}");
    let v: Value = serde_json::from_str(&resp.body).expect("typed body");
    assert_eq!(error_of(&v).unwrap().0, "shutting_down");
    assert!(resp.retry_after.is_some(), "drain shed lacks Retry-After");

    handle.join();
}

#[test]
fn lane_partitioned_server_is_bitwise_identical_and_pins_sessions() {
    // Two lanes: every address mode must still answer bitwise like the
    // single offline reference, session ops must follow their session id
    // to its lane from ANY connection, and the v2 stats lanes array must
    // account for all traffic.
    let cfg = tiny_model_cfg(7);
    let ctx = tiny_ctx(&cfg);
    let handle = server::start(
        ServerConfig {
            batch: BatchConfig {
                max_batch: 8,
                deadline: Duration::from_millis(1),
                queue_cap: 256,
            },
            lanes: 2,
            ..ServerConfig::default()
        },
        cfg,
        ctx,
        None,
    )
    .expect("server starts");
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let streams: Vec<Vec<Visit>> = samples.iter().map(|s| stream_of(&reference, s)).collect();

    // Pick legacy samples covering BOTH lanes so the per-lane counters
    // are deterministic facts, not luck.
    let on_lane = |lane: usize| -> Vec<usize> {
        (0..samples.len())
            .filter(|&i| tspn_serve::shard::shard_of_user(samples[i].user_index, 2) == lane)
            .take(4)
            .collect()
    };
    let (lane0, lane1) = (on_lane(0), on_lane(1));
    assert!(
        !lane0.is_empty() && !lane1.is_empty(),
        "dataset covers both lanes"
    );

    let picks: Vec<usize> = lane0.iter().chain(lane1.iter()).copied().collect();
    let answers: Vec<(Sample, Vec<PoiId>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..6usize {
            let addr = addr.clone();
            let (samples, streams, picks) = (&samples, &streams, &picks);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut out = Vec::new();
                for r in 0..6usize {
                    let i = picks[(c * 6 + r) % picks.len()];
                    let s = samples[i];
                    let v = match c % 3 {
                        0 => {
                            let (status, v) = client
                                .post_json("/predict", &predict_body(&s, 4, 10))
                                .expect("legacy predict I/O");
                            assert_eq!(status, 200, "legacy predict failed: {v:?}");
                            v
                        }
                        1 => {
                            let body = v1_predict_request_body(s.user_index, &streams[i], 4, 10);
                            let (status, v) = client
                                .post_json("/v1/predict", &body)
                                .expect("v1 predict I/O");
                            assert_eq!(status, 200, "v1 predict failed: {v:?}");
                            v
                        }
                        _ => {
                            let body = session_create_body(s.user_index, &streams[i]);
                            let (status, v) = client
                                .post_json("/v1/sessions", &body)
                                .expect("session create I/O");
                            assert_eq!(status, 200, "session create failed: {v:?}");
                            let id = str_field(&v, "session").to_string();
                            let (status, v) = client
                                .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
                                .expect("session predict I/O");
                            assert_eq!(status, 200, "session predict failed: {v:?}");
                            v
                        }
                    };
                    out.push((s, pois_of(&v)));
                }
                out
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });
    for (s, served) in answers {
        let offline = reference.predict_one(&Query::with_top(s, 4, 10));
        assert_eq!(
            served, offline.pois,
            "lane-partitioned answer diverged for {s:?}"
        );
    }

    // Session affinity: a session created on one connection is reachable
    // from every other connection — appends and predicts resolve the lane
    // from the id, so there is no cross-lane 404.
    let s = samples[lane0[0]];
    let stream = &streams[lane0[0]];
    let mut creator = Client::connect(&addr).expect("connect");
    let (status, v) = creator
        .post_json(
            "/v1/sessions",
            &session_create_body(s.user_index, &stream[..1]),
        )
        .expect("create I/O");
    assert_eq!(status, 200, "{v:?}");
    let id = str_field(&v, "session").to_string();
    for _ in 0..3 {
        let mut other = Client::connect(&addr).expect("connect");
        let (status, v) = other
            .get(&format!("/v1/sessions/{id}"))
            .map(|(st, t)| (st, serde_json::from_str::<Value>(&t).unwrap()))
            .expect("info I/O");
        assert_eq!(status, 200, "foreign connection lost the session: {v:?}");
        if stream.len() > 1 {
            let (status, v) = other
                .post_json(
                    &format!("/v1/sessions/{id}"),
                    &session_append_body(&stream[1..2]),
                )
                .unwrap_or((0, Value::Null));
            // POST to the session root is 405 — affinity is about the
            // /checkins and /predict verbs below, this is just a probe
            // that the id resolves rather than 404s.
            assert_ne!(status, 404, "session id resolved to the wrong lane: {v:?}");
        }
        let (status, v) = other
            .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
            .expect("foreign predict I/O");
        assert_eq!(status, 200, "cross-connection session predict: {v:?}");
    }

    // v2 stats: two lanes, both served traffic, and the lane counters sum
    // to the aggregate.
    let mut client = Client::connect(&addr).expect("connect");
    let (status, text) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&text).expect("stats JSON");
    let agg = stats.get("aggregate").expect("aggregate");
    let total = num_field(agg.get("served").expect("served"), "total");
    let lanes = stats
        .get("lanes")
        .and_then(Value::as_array)
        .expect("lanes array");
    assert_eq!(lanes.len(), 2);
    let mut lane_sum = 0;
    for lane in lanes {
        let served = num_field(lane, "served");
        assert!(served > 0, "a lane served nothing: {lane:?}");
        lane_sum += served;
    }
    assert_eq!(lane_sum, total, "lane counters must sum to the aggregate");

    handle.shutdown();
    handle.join();
}

#[test]
fn faulting_one_lane_sheds_only_that_shard_while_others_serve() {
    // Chaos scoped to lane 0: every lane-0 flush panics until the breaker
    // opens. Lane-1 users must keep getting bitwise-correct answers the
    // whole time; lane-0 users get typed errors naming their lane.
    let cfg = tiny_model_cfg(7);
    let ctx = tiny_ctx(&cfg);
    let handle = server::start(
        ServerConfig {
            lanes: 2,
            chaos: tspn_serve::ChaosConfig {
                flush_panic_every: Some(1),
                flush_panic_budget: Some(1000),
                fault_lane: Some(0),
                ..Default::default()
            },
            breaker: tspn_serve::BreakerConfig {
                threshold: 2,
                window: Duration::from_secs(30),
                cooldown: Duration::from_secs(30),
            },
            ..ServerConfig::default()
        },
        cfg,
        ctx,
        None,
    )
    .expect("server starts");
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let on_lane = |lane: usize| -> Sample {
        *samples
            .iter()
            .find(|s| tspn_serve::shard::shard_of_user(s.user_index, 2) == lane)
            .expect("dataset covers both lanes")
    };
    let (s0, s1) = (on_lane(0), on_lane(1));
    let mut client = Client::connect(&addr).expect("connect");

    // Trip lane 0's breaker: two crashed flushes (typed 500s), then the
    // lane sheds 503 not_ready naming itself.
    for round in 1..=2 {
        let (status, v) = client
            .post_json("/predict", &predict_body(&s0, 4, 10))
            .expect("lane-0 predict I/O");
        assert_eq!(status, 500, "round {round}: {v:?}");
        assert_eq!(error_of(&v).unwrap().0, "internal");
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, v) = client
            .post_json("/predict", &predict_body(&s0, 4, 10))
            .expect("lane-0 shed I/O");
        if status == 503 {
            let (code, msg) = error_of(&v).unwrap();
            assert_eq!(code, "not_ready");
            assert!(msg.contains("lane 0"), "shed should name its lane: {msg}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "lane-0 breaker never opened"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Lane 1 keeps serving, bitwise, throughout.
    let expect = reference.predict_one(&Query::with_top(s1, 4, 10)).pois;
    for _ in 0..5 {
        let (status, v) = client
            .post_json("/predict", &predict_body(&s1, 4, 10))
            .expect("lane-1 predict I/O");
        assert_eq!(status, 200, "healthy lane shed: {v:?}");
        assert_eq!(pois_of(&v), expect, "healthy lane diverged");
    }
    // Session ops on the healthy lane work end to end too.
    let stream1 = stream_of(&reference, &s1);
    let (status, v) = client
        .post_json(
            "/v1/sessions",
            &session_create_body(s1.user_index, &stream1),
        )
        .expect("create I/O");
    assert_eq!(status, 200, "{v:?}");
    let id = str_field(&v, "session").to_string();
    let (status, v) = client
        .post_json(&format!("/v1/sessions/{id}/predict"), "{}")
        .expect("session predict I/O");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(pois_of(&v), expect);

    // The fleet view: aggregate not ready (ANDed), lane 0 down, lane 1 up.
    let (status, text) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&text).expect("stats JSON");
    let agg = stats.get("aggregate").expect("aggregate");
    assert_eq!(agg.get("ready").and_then(Value::as_bool), Some(false));
    let lanes = stats
        .get("lanes")
        .and_then(Value::as_array)
        .expect("lanes array");
    assert_eq!(lanes.len(), 2);
    assert_eq!(lanes[0].get("ready").and_then(Value::as_bool), Some(false));
    assert_eq!(lanes[1].get("ready").and_then(Value::as_bool), Some(true));
    assert!(num_field(&lanes[0], "injected_panics") >= 2);
    assert_eq!(num_field(&lanes[1], "injected_panics"), 0);
    assert_eq!(num_field(&lanes[1], "restarts"), 0);

    handle.shutdown();
    handle.join();
}
