//! End-to-end serving acceptance: concurrent clients over real sockets,
//! bitwise identity with the offline predictor, checkpoint hot-swap with
//! no mixed-parameter batches, and corrupt-checkpoint rejection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use serde::Value;
use tspn_core::{Partition, Predictor, Query, SpatialContext, TspnConfig};
use tspn_data::presets::nyc_mini;
use tspn_data::synth::generate_dataset;
use tspn_data::{PoiId, Sample};
use tspn_serve::{server, BatchConfig, Client, ServerConfig, ServerHandle, BOOT_VERSION};

fn tiny_model_cfg(seed: u64) -> TspnConfig {
    TspnConfig {
        dm: 16,
        image_size: 8,
        top_k: 4,
        attn_blocks: 1,
        hgat_layers: 1,
        max_prefix: 6,
        max_history: 16,
        partition: Partition::QuadTree {
            max_depth: 5,
            leaf_capacity: 10,
        },
        seed,
        ..TspnConfig::default()
    }
}

/// The deterministic serving context (regenerable at will: client-side
/// reference predictors see the same dataset the server serves).
fn tiny_ctx(cfg: &TspnConfig) -> SpatialContext {
    let mut dcfg = nyc_mini(0.1);
    dcfg.days = 12;
    let (ds, world) = generate_dataset(dcfg);
    SpatialContext::build(ds, world, cfg)
}

fn start_server(seed: u64, batch: BatchConfig) -> ServerHandle {
    let cfg = tiny_model_cfg(seed);
    let ctx = tiny_ctx(&cfg);
    server::start(
        ServerConfig {
            batch,
            ..ServerConfig::default()
        },
        cfg,
        ctx,
        None,
    )
    .expect("server starts")
}

fn reference_predictor(seed: u64) -> (Predictor, Vec<Sample>) {
    let cfg = tiny_model_cfg(seed);
    let ctx = tiny_ctx(&cfg);
    let samples = ctx.dataset.all_samples();
    (Predictor::new(cfg, ctx), samples)
}

fn predict_body(s: &Sample, k: usize, top: usize) -> String {
    tspn_serve::protocol::predict_request_body(s, k, top)
}

fn pois_of(v: &Value) -> Vec<PoiId> {
    tspn_serve::protocol::pois_of(v).unwrap_or_else(|| panic!("missing pois array: {v:?}"))
}

fn num_field(v: &Value, name: &str) -> u64 {
    v.get(name)
        .and_then(Value::as_usize)
        .unwrap_or_else(|| panic!("missing numeric field {name:?} in {v:?}")) as u64
}

#[test]
fn concurrent_clients_get_bitwise_identical_answers() {
    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let (reference, samples) = reference_predictor(7);
    let per_client = 6usize;
    let clients = 8usize;
    assert!(
        samples.len() >= clients * per_client,
        "dataset too small for test"
    );

    let answers: Vec<(Sample, Vec<PoiId>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let samples = &samples;
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut out = Vec::new();
                for r in 0..per_client {
                    let s = samples[(c * per_client + r) % samples.len()];
                    let (status, v) = client
                        .post_json("/predict", &predict_body(&s, 4, 10))
                        .expect("predict I/O");
                    assert_eq!(status, 200, "predict failed: {v:?}");
                    assert_eq!(num_field(&v, "snapshot"), BOOT_VERSION);
                    out.push((s, pois_of(&v)));
                }
                out
            }));
        }
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });

    assert_eq!(answers.len(), clients * per_client);
    for (s, served) in answers {
        let offline = reference.predict_one(&Query::with_top(s, 4, 10));
        assert_eq!(served, offline.pois, "served ranking diverged for {s:?}");
        assert!(!served.is_empty());
        // Valid top-k: no duplicate POIs.
        let mut unique = served.clone();
        unique.sort_unstable_by_key(|p| p.0);
        unique.dedup();
        assert_eq!(unique.len(), served.len(), "duplicate POIs in top-k");
    }

    // Health reflects the traffic.
    let mut client = Client::connect(&addr).expect("connect");
    let (status, text) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&text).expect("health JSON");
    assert_eq!(num_field(&health, "served") as usize, clients * per_client);
    assert!(num_field(&health, "batches") >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn reload_swaps_checkpoints_without_mixing_a_batch() {
    // Two reference parameter sets over the identical dataset/context.
    let (ref_a, samples) = reference_predictor(7);
    let (ref_b, _) = reference_predictor(999);
    let dir = std::env::temp_dir().join(format!("tspn-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path_a = dir.join("ckpt_a.json");
    let path_b = dir.join("ckpt_b.json");
    std::fs::write(&path_a, serde_json::to_string(&ref_a.save()).unwrap()).unwrap();
    std::fs::write(&path_b, serde_json::to_string(&ref_b.save()).unwrap()).unwrap();

    // Small batches + a real deadline so reloads land between many
    // batches while clients hammer the server.
    let handle = start_server(
        7,
        BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(1),
            queue_cap: 256,
        },
    );
    let addr = handle.local_addr().to_string();
    let q = Query::with_top(samples[0], 4, 8);
    let expect_a = ref_a.predict_one(&q).pois;
    let expect_b = ref_b.predict_one(&q).pois;
    assert_ne!(
        expect_a, expect_b,
        "seeds must rank differently for this test"
    );

    let stop = AtomicUsize::new(0);
    let observations: Vec<(u64, u64, Vec<PoiId>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..4 {
            let addr = addr.clone();
            let (stop, s) = (&stop, samples[0]);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut seen = Vec::new();
                while stop.load(Ordering::Acquire) == 0 {
                    let (status, v) = client
                        .post_json("/predict", &predict_body(&s, 4, 8))
                        .expect("predict I/O");
                    assert_eq!(status, 200, "{v:?}");
                    seen.push((
                        num_field(&v, "batch"),
                        num_field(&v, "snapshot"),
                        pois_of(&v),
                    ));
                }
                seen
            }));
        }
        // Alternate A/B reloads while the clients run.
        let mut admin = Client::connect(&addr).expect("connect admin");
        let mut last_version = BOOT_VERSION;
        for round in 0..6 {
            std::thread::sleep(Duration::from_millis(30));
            let path = if round % 2 == 0 { &path_b } else { &path_a };
            let body = format!("{{\"path\":{:?}}}", path.display().to_string());
            let (status, v) = admin.post_json("/admin/reload", &body).expect("reload I/O");
            assert_eq!(status, 200, "reload failed: {v:?}");
            let version = num_field(&v, "snapshot");
            assert!(version > last_version, "snapshot versions are monotonic");
            last_version = version;
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(1, Ordering::Release);
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("client"))
            .collect()
    });

    // Every answer matches exactly one reference parameter set, the set
    // implied by its snapshot version — never a mixture.
    let mut by_batch: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut swaps_observed = std::collections::HashSet::new();
    for (batch, snapshot, pois) in &observations {
        swaps_observed.insert(*snapshot);
        // One batch, one snapshot: a second answer from the same batch
        // must agree on the version.
        if let Some(prev) = by_batch.insert(*batch, *snapshot) {
            assert_eq!(prev, *snapshot, "batch {batch} served under two snapshots");
        }
        // Boot (version 1) and odd reload rounds serve seed-7 parameters;
        // even rounds serve seed-999 parameters.
        let expect = if *snapshot == BOOT_VERSION || snapshot % 2 == 1 {
            &expect_a
        } else {
            &expect_b
        };
        assert_eq!(
            pois, expect,
            "snapshot {snapshot} served a mixed/unknown ranking"
        );
    }
    assert!(
        swaps_observed.len() >= 2,
        "test never observed a hot swap (snapshots: {swaps_observed:?})"
    );

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoints_are_rejected_and_old_snapshot_keeps_serving() {
    let (reference, samples) = reference_predictor(7);
    let dir = std::env::temp_dir().join(format!("tspn-serve-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Corruptions: invalid JSON, wrong shapes, non-finite values.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{ not json").unwrap();
    let mut reshaped = reference.save();
    reshaped.tensors[0].shape = vec![1, 1];
    reshaped.tensors[0].data = vec![0.5];
    let reshaped_path = dir.join("reshaped.json");
    std::fs::write(&reshaped_path, serde_json::to_string(&reshaped).unwrap()).unwrap();
    let mut poisoned = reference.save();
    let n = poisoned.tensors.len() - 1;
    poisoned.tensors[n].data[0] = f32::INFINITY;
    let poisoned_path = dir.join("poisoned.json");
    std::fs::write(&poisoned_path, serde_json::to_string(&poisoned).unwrap()).unwrap();

    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let s = samples[1];
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .unwrap();
    assert_eq!(status, 200);
    let before = pois_of(&v);
    assert_eq!(
        before,
        reference.predict_one(&Query::with_top(s, 4, 10)).pois
    );

    for (path, needle) in [
        (dir.join("missing.json"), "cannot read"),
        (garbage.clone(), "cannot parse"),
        (reshaped_path.clone(), "shape mismatch"),
        // Non-finite floats serialise as JSON null, so a poisoned file is
        // caught at parse time (the in-memory non-finite path is covered
        // by the snapshot/predictor unit tests).
        (poisoned_path.clone(), "cannot parse"),
    ] {
        let body = format!("{{\"path\":{:?}}}", path.display().to_string());
        let (status, v) = client
            .post_json("/admin/reload", &body)
            .expect("reload I/O");
        assert_eq!(status, 400, "corrupt checkpoint accepted: {v:?}");
        let err = v
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        assert!(
            err.contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }

    // Still serving the boot snapshot, bitwise.
    let (status, v) = client
        .post_json("/predict", &predict_body(&s, 4, 10))
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(num_field(&v, "snapshot"), BOOT_VERSION);
    assert_eq!(pois_of(&v), before);

    // Malformed predict bodies and unknown routes answer without killing
    // the connection's session.
    let (status, _) = client.post("/predict", "{\"user\":0}").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .post("/predict", "{\"user\":99999,\"traj\":0,\"prefix_len\":1}")
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.post("/predict", &predict_body(&s, 4, 10)).unwrap();
    assert_eq!(status, 200, "session survives rejected requests");

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admin_shutdown_stops_the_server_cleanly() {
    let handle = start_server(7, BatchConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let (status, body) = client.post("/admin/shutdown", "").expect("shutdown I/O");
    assert_eq!(status, 200);
    assert!(body.contains("true"));
    assert!(handle.shutdown_requested());
    handle.join(); // must return: accept loop, handlers and batcher all stop

    // The port is released: a fresh bind to the same address succeeds.
    let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();
    let rebind = std::net::TcpListener::bind(("127.0.0.1", port));
    assert!(
        rebind.is_ok(),
        "port still held after clean shutdown: {rebind:?}"
    );
}
