//! QR-P graph construction (paper Sec. II-B).
//!
//! Given a quad-tree `Q`, the road network's tile adjacency, and a user
//! trajectory `S`, the QR-P graph `G_S = ⟨V_S, E_S, Φ_S, Ψ_S⟩` contains
//!
//! * **tile** nodes — the minimal sub-tree `Q_S` whose leaves cover every
//!   POI of `S`,
//! * **POI** nodes — the distinct POIs of `S`,
//! * **branch** edges — parent/child pairs of `Q_S`,
//! * **road** edges — leaf pairs of `Q_S` directly linked by the road
//!   network,
//! * **contain** edges — leaf tile → the POIs lying inside it.

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};
use tspn_data::{LbsnDataset, PoiId, Visit};
use tspn_geo::{NodeId, QuadTree};

/// A vertex of the QR-P graph (`Φ_S` assigns the type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QrpNode {
    /// A quad-tree tile node.
    Tile(NodeId),
    /// A POI visited in the trajectory.
    Poi(PoiId),
}

/// Edge categories (`Ψ_S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeType {
    /// Quad-tree parent ↔ child.
    Branch = 0,
    /// Road-connected leaf tiles.
    Road = 1,
    /// Leaf tile ↔ contained POI.
    Contain = 2,
}

impl EdgeType {
    /// All edge types, in index order.
    pub const ALL: [EdgeType; 3] = [EdgeType::Branch, EdgeType::Road, EdgeType::Contain];
}

/// Which edge families to include — the knobs for the paper's fine-grained
/// ablations ("QR-P with no Road" / "no Contain", Table IV).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QrpOptions {
    /// Include road edges.
    pub road_edges: bool,
    /// Include contain edges.
    pub contain_edges: bool,
}

impl Default for QrpOptions {
    fn default() -> Self {
        QrpOptions {
            road_edges: true,
            contain_edges: true,
        }
    }
}

/// The heterogeneous QR-P graph with per-type adjacency lists
/// (undirected: each edge is stored in both directions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QrpGraph {
    /// Vertices; index into this table is the node's dense id.
    pub nodes: Vec<QrpNode>,
    index: HashMap<QrpNode, usize>,
    /// `adj[edge_type][node] → neighbour node indices`.
    adj: Vec<Vec<Vec<usize>>>,
    edge_counts: [usize; 3],
}

impl QrpGraph {
    fn new(nodes: Vec<QrpNode>) -> Self {
        let index = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect::<HashMap<_, _>>();
        let n = nodes.len();
        QrpGraph {
            nodes,
            index,
            adj: vec![vec![Vec::new(); n]; 3],
            edge_counts: [0; 3],
        }
    }

    fn add_edge(&mut self, ty: EdgeType, a: usize, b: usize) {
        self.adj[ty as usize][a].push(b);
        self.adj[ty as usize][b].push(a);
        self.edge_counts[ty as usize] += 1;
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Undirected edge count of a type.
    pub fn num_edges(&self, ty: EdgeType) -> usize {
        self.edge_counts[ty as usize]
    }

    /// Dense index of a vertex, if present.
    pub fn index_of(&self, node: QrpNode) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// Neighbours of dense node `i` along `ty` edges.
    pub fn neighbors(&self, ty: EdgeType, i: usize) -> &[usize] {
        &self.adj[ty as usize][i]
    }

    /// Iterator over `(dense_index, node)` of tile vertices.
    pub fn tile_nodes(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            QrpNode::Tile(t) => Some((i, *t)),
            QrpNode::Poi(_) => None,
        })
    }

    /// Iterator over `(dense_index, poi)` of POI vertices.
    pub fn poi_nodes(&self) -> impl Iterator<Item = (usize, PoiId)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            QrpNode::Poi(p) => Some((i, *p)),
            QrpNode::Tile(_) => None,
        })
    }
}

/// Builds the QR-P graph for a visit sequence (the concatenated historical
/// trajectories, per the paper's phase-1 data extraction).
pub fn build_qrp(
    tree: &QuadTree,
    road_adjacency: &BTreeSet<(NodeId, NodeId)>,
    visits: &[Visit],
    dataset: &LbsnDataset,
    options: QrpOptions,
) -> QrpGraph {
    // Distinct POIs in first-visit order.
    let mut seen = HashSet::new();
    let mut pois: Vec<PoiId> = Vec::new();
    for v in visits {
        if seen.insert(v.poi) {
            pois.push(v.poi);
        }
    }
    // Leaf tile of every POI.
    let poi_leaf: Vec<NodeId> = pois
        .iter()
        .map(|&p| tree.leaf_for(&dataset.poi_loc(p)))
        .collect();
    let mut leaf_set: Vec<NodeId> = poi_leaf.clone();
    leaf_set.sort_unstable();
    leaf_set.dedup();
    // Step 1: minimal subtree.
    let subtree = tree.minimal_subtree(&leaf_set);
    // Vertex table: tiles first, then POIs.
    let mut nodes: Vec<QrpNode> = subtree.iter().map(|&t| QrpNode::Tile(t)).collect();
    nodes.extend(pois.iter().map(|&p| QrpNode::Poi(p)));
    let mut graph = QrpGraph::new(nodes);

    // Branch edges (tree edges of the subtree).
    for (parent, child) in tree.branch_edges_within(&subtree) {
        let a = graph.index_of(QrpNode::Tile(parent)).expect("in subtree");
        let b = graph.index_of(QrpNode::Tile(child)).expect("in subtree");
        graph.add_edge(EdgeType::Branch, a, b);
    }
    // Step 2: road edges between subtree leaves. Road-edge insertion
    // order decides the neighbour lists — and therefore the attention
    // summation order — so the adjacency is a `BTreeSet`: its ascending
    // iteration is the same sorted order in every process, keeping
    // training bitwise-reproducible across processes, not just within
    // one.
    if options.road_edges {
        let in_subtree: HashSet<NodeId> = leaf_set.iter().copied().collect();
        let road = road_adjacency
            .iter()
            .filter(|(ta, tb)| in_subtree.contains(ta) && in_subtree.contains(tb));
        for &(ta, tb) in road {
            let a = graph.index_of(QrpNode::Tile(ta)).expect("leaf in graph");
            let b = graph.index_of(QrpNode::Tile(tb)).expect("leaf in graph");
            graph.add_edge(EdgeType::Road, a, b);
        }
    }
    // Step 3: contain edges.
    if options.contain_edges {
        for (pi, &poi) in pois.iter().enumerate() {
            let tile = poi_leaf[pi];
            let a = graph.index_of(QrpNode::Tile(tile)).expect("leaf in graph");
            let b = graph.index_of(QrpNode::Poi(poi)).expect("poi in graph");
            graph.add_edge(EdgeType::Contain, a, b);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspn_data::presets::nyc_mini;
    use tspn_data::synth::generate_dataset;
    use tspn_geo::QuadTreeConfig;

    fn fixture() -> (
        LbsnDataset,
        QuadTree,
        BTreeSet<(NodeId, NodeId)>,
        Vec<Visit>,
    ) {
        let mut cfg = nyc_mini(0.15);
        cfg.days = 12;
        let (ds, _world) = generate_dataset(cfg);
        let tree = QuadTree::build(
            ds.region,
            &ds.poi_locations(),
            QuadTreeConfig {
                max_depth: 6,
                leaf_capacity: 10,
            },
        );
        // Fabricated road adjacency: link consecutive leaves pairwise.
        let leaves = tree.leaves();
        let mut road = BTreeSet::new();
        for w in leaves.windows(2) {
            let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
            road.insert((a, b));
        }
        // A trajectory: the first user's full history concatenated.
        let visits: Vec<Visit> = ds.users[0]
            .trajectories
            .iter()
            .flat_map(|t| t.visits.iter().copied())
            .collect();
        (ds, tree, road, visits)
    }

    #[test]
    fn nodes_cover_distinct_pois_and_subtree() {
        let (ds, tree, road, visits) = fixture();
        let g = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());
        let distinct: HashSet<PoiId> = visits.iter().map(|v| v.poi).collect();
        assert_eq!(g.poi_nodes().count(), distinct.len());
        assert!(g.tile_nodes().count() >= 1);
        // Every POI node reachable via exactly one contain edge.
        for (i, _p) in g.poi_nodes() {
            assert_eq!(g.neighbors(EdgeType::Contain, i).len(), 1);
        }
    }

    #[test]
    fn branch_edges_form_subtree() {
        let (ds, tree, road, visits) = fixture();
        let g = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());
        let tiles = g.tile_nodes().count();
        assert_eq!(g.num_edges(EdgeType::Branch), tiles - 1);
    }

    #[test]
    fn ablation_flags_remove_edge_families() {
        let (ds, tree, road, visits) = fixture();
        let no_road = build_qrp(
            &tree,
            &road,
            &visits,
            &ds,
            QrpOptions {
                road_edges: false,
                contain_edges: true,
            },
        );
        assert_eq!(no_road.num_edges(EdgeType::Road), 0);
        assert!(no_road.num_edges(EdgeType::Contain) > 0);
        let no_contain = build_qrp(
            &tree,
            &road,
            &visits,
            &ds,
            QrpOptions {
                road_edges: true,
                contain_edges: false,
            },
        );
        assert_eq!(no_contain.num_edges(EdgeType::Contain), 0);
    }

    #[test]
    fn contain_edge_matches_poi_location() {
        let (ds, tree, road, visits) = fixture();
        let g = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());
        for (i, p) in g.poi_nodes() {
            let tile_idx = g.neighbors(EdgeType::Contain, i)[0];
            match g.nodes[tile_idx] {
                QrpNode::Tile(t) => {
                    assert_eq!(t, tree.leaf_for(&ds.poi_loc(p)), "POI linked to wrong tile")
                }
                QrpNode::Poi(_) => panic!("contain edge must reach a tile"),
            }
        }
    }

    #[test]
    fn road_edges_only_between_graph_leaves() {
        let (ds, tree, road, visits) = fixture();
        let g = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());
        for (i, t) in g.tile_nodes() {
            for &j in g.neighbors(EdgeType::Road, i) {
                match g.nodes[j] {
                    QrpNode::Tile(o) => {
                        assert!(tree.node(t).is_leaf());
                        assert!(tree.node(o).is_leaf());
                    }
                    QrpNode::Poi(_) => panic!("road edge to a POI"),
                }
            }
        }
    }

    #[test]
    fn empty_trajectory_gives_root_only() {
        let (ds, tree, road, _) = fixture();
        let g = build_qrp(&tree, &road, &[], &ds, QrpOptions::default());
        // No POIs; minimal subtree of no leaves is empty.
        assert_eq!(g.poi_nodes().count(), 0);
    }

    #[test]
    fn repeated_visits_deduplicate() {
        let (ds, tree, road, visits) = fixture();
        let doubled: Vec<Visit> = visits.iter().chain(visits.iter()).copied().collect();
        let a = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());
        let b = build_qrp(&tree, &road, &doubled, &ds, QrpOptions::default());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(
            a.num_edges(EdgeType::Contain),
            b.num_edges(EdgeType::Contain)
        );
    }
}
