//! # tspn-graph
//!
//! The QR-P graph and its heterogeneous graph attention encoder — the
//! historical-knowledge machinery of TSPN-RA (paper Secs. II-B and IV-C).
//!
//! * [`build_qrp`] constructs `G_S` from a quad-tree, road-derived tile
//!   adjacency, and a visit sequence: the minimal sub-tree's tile nodes,
//!   the trajectory's POI nodes, and `branch` / `road` / `contain` edges,
//! * [`HgatLayer`] / [`Hgat`] implement Eq. 6: per-edge-type attention
//!   aggregation producing tile-level (`H_T◁`) and POI-level (`H_P◁`)
//!   historical knowledge embeddings,
//! * [`QrpOptions`] exposes the edge-family switches for the Table IV
//!   fine-grained ablations.

#![warn(missing_docs)]

mod hgat;
mod qrp;

pub use hgat::{Hgat, HgatLayer};
pub use qrp::{build_qrp, EdgeType, QrpGraph, QrpNode, QrpOptions};
