//! Heterogeneous graph attention (paper Eq. 6).
//!
//! For each edge type `k ∈ {Branch, Road, Contain}` the layer owns a weight
//! `W_k` and an attention vector `a_k`; messages along type-`k` edges are
//! attention-weighted with `softmax_j(LeakyReLU(a_k · [W_k h_i ‖ W_k h_j]))`
//! and summed across types:
//!
//! ```text
//! h_i^{l+1} = σ( Σ_k Σ_{j ∈ N_k(i)} A_k[i,j] · W_k h_j  +  W_self h_i )
//! ```
//!
//! The `W_self` residual term is standard GAT practice and keeps isolated
//! nodes (e.g. a tile with no road neighbours) from collapsing to zero.
//! `σ` is `tanh`, keeping embeddings bounded for the downstream cosine
//! ranking.

use rand::Rng;

use tspn_tensor::nn::Module;
use tspn_tensor::{init, Tensor};

use crate::qrp::{EdgeType, QrpGraph};

/// One HGAT layer.
pub struct HgatLayer {
    /// Per-edge-type transforms `W_k` `[d_in, d_out]`.
    pub type_weights: Vec<Tensor>,
    /// Per-edge-type attention halves: `a_k = [a_left ‖ a_right]`, stored
    /// as two `[d_out, 1]` vectors so scores decompose into
    /// `a_l·W h_i + a_r·W h_j`.
    pub attn_left: Vec<Tensor>,
    /// Right attention halves.
    pub attn_right: Vec<Tensor>,
    /// Self-connection transform `[d_in, d_out]`.
    pub self_weight: Tensor,
    in_dim: usize,
    out_dim: usize,
}

impl HgatLayer {
    /// Creates a layer mapping `in_dim` features to `out_dim`.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        let k = EdgeType::ALL.len();
        HgatLayer {
            type_weights: (0..k).map(|_| init::xavier(rng, in_dim, out_dim)).collect(),
            attn_left: (0..k).map(|_| init::xavier(rng, out_dim, 1)).collect(),
            attn_right: (0..k).map(|_| init::xavier(rng, out_dim, 1)).collect(),
            self_weight: init::xavier(rng, in_dim, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer: `h [N, in] → [N, out]` over the graph structure.
    ///
    /// The aggregation runs as **flat padded segmented attention**: per
    /// edge type, every node's neighbour set is gathered into one
    /// zero-padded `[N·D_k, ·]` block (`D_k` = the type's maximum
    /// degree), scored in a single masked row softmax, and reduced with
    /// one batched `[1×D_k]·[D_k×out]` product per node — a fixed ~10
    /// tape nodes per edge type instead of ~8 per *graph node*, which is
    /// what makes per-sample history encoding affordable inside the
    /// batched model forward. Padding is numerically transparent: padded
    /// keys are masked to `-1e9` (their probabilities underflow to exact
    /// zeros) and padded neighbour features are exact zeros, so each
    /// node's message is bit-for-bit the softmax-weighted sum over its
    /// live neighbours; a node with no type-`k` neighbours contributes an
    /// exact-zero message row, matching the retired per-node loop that
    /// skipped the type entirely.
    pub fn forward(&self, graph: &QrpGraph, h: &Tensor) -> Tensor {
        self.forward_union(&[graph], h)
    }

    /// Applies the layer over the **disjoint union** of several graphs at
    /// once: `h` stacks the graphs' feature blocks in order, neighbour
    /// indices are offset into the union, and every per-edge-type GEMM /
    /// padded softmax / batched reduction runs once for the whole union
    /// instead of once per graph. A batch's history encodings therefore
    /// cost a fixed ~10 tape nodes per edge type *total*.
    ///
    /// Each node's output row is bitwise the row its own graph's
    /// [`HgatLayer::forward`] produces: the row-wise GEMMs are
    /// row-equivalent, the union-wide padded degree only appends
    /// masked-to-exact-zero score columns (transparent to the row max /
    /// sum / reduction), and an edge type absent from one member graph
    /// but present elsewhere in the union contributes that graph's nodes
    /// an exact-zero message row — the same value the per-graph skip
    /// produces. A singleton union builds the identical tape, so
    /// per-sample gradients are bitwise unchanged too.
    pub fn forward_union(&self, graphs: &[&QrpGraph], h: &Tensor) -> Tensor {
        assert!(!graphs.is_empty(), "forward_union of zero graphs");
        let n: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        assert_eq!(h.rows(), n, "feature rows must match union nodes");
        assert_eq!(h.cols(), self.in_dim, "feature dim mismatch");

        // Self term for every node.
        let self_term = h.matmul(&self.self_weight); // [N, out]

        let mut message: Option<Tensor> = None;
        for (k, &ty) in EdgeType::ALL.iter().enumerate() {
            let mut groups: Vec<Vec<usize>> = Vec::with_capacity(n);
            let mut off = 0usize;
            for g in graphs {
                for i in 0..g.num_nodes() {
                    groups.push(g.neighbors(ty, i).iter().map(|&j| j + off).collect());
                }
                off += g.num_nodes();
            }
            let degrees: Vec<usize> = groups.iter().map(Vec::len).collect();
            let d_max = degrees.iter().max().copied().unwrap_or(0);
            if d_max == 0 {
                continue; // no edges of this type anywhere in the graph
            }
            let hk = h.matmul(&self.type_weights[k]); // [N, out]
            let sl = hk.matmul(&self.attn_left[k]); // [N, 1]
            let sr = hk.matmul(&self.attn_right[k]); // [N, 1]

            // score[i][j] = LeakyReLU(a_l·Wh_i + a_r·Wh_j), every node's
            // neighbour scores in one padded row.
            let sr_pad = sr
                .gather_rows_padded(&groups, d_max)
                .reshape(vec![n, d_max]);
            let scores = sr_pad.add(&sl).leaky_relu(0.2);
            let att = scores
                .softmax_rows_masked(Some(&tspn_tensor::key_padding_mask(&degrees, 1, d_max)));
            let neigh_feats = hk.gather_rows_padded(&groups, d_max); // [N·D, out]
            let ones = vec![1usize; n];
            let msg = att.bmm_ragged(&neigh_feats, n, None, &ones, &degrees); // [N, out]
            message = Some(match message {
                Some(acc) => acc.add(&msg),
                None => msg,
            });
        }
        let combined = match message {
            Some(m) => m.add(&self_term),
            None => self_term,
        };
        combined.tanh()
    }
}

impl Module for HgatLayer {
    fn params(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        p.extend(self.type_weights.iter().cloned());
        p.extend(self.attn_left.iter().cloned());
        p.extend(self.attn_right.iter().cloned());
        p.push(self.self_weight.clone());
        p
    }
}

/// A stack of `n` HGAT layers — the paper iterates aggregation `n` times to
/// produce the final node embeddings.
pub struct Hgat {
    /// The layers, applied in order.
    pub layers: Vec<HgatLayer>,
}

impl Hgat {
    /// `num_layers` layers of width `dim → dim`.
    pub fn new(rng: &mut impl Rng, dim: usize, num_layers: usize) -> Self {
        assert!(num_layers >= 1, "need at least one HGAT layer");
        Hgat {
            layers: (0..num_layers)
                .map(|_| HgatLayer::new(rng, dim, dim))
                .collect(),
        }
    }

    /// Runs all layers.
    pub fn forward(&self, graph: &QrpGraph, h0: &Tensor) -> Tensor {
        self.forward_union(&[graph], h0)
    }

    /// Runs all layers over a disjoint union of graphs (see
    /// [`HgatLayer::forward_union`]): `h0` stacks the graphs' initial
    /// feature blocks in order.
    pub fn forward_union(&self, graphs: &[&QrpGraph], h0: &Tensor) -> Tensor {
        let mut h = h0.clone();
        for layer in &self.layers {
            h = layer.forward_union(graphs, &h);
        }
        h
    }
}

impl Module for Hgat {
    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qrp::{build_qrp, QrpOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;
    use tspn_data::presets::nyc_mini;
    use tspn_data::synth::generate_dataset;
    use tspn_data::Visit;
    use tspn_geo::{QuadTree, QuadTreeConfig};
    use tspn_tensor::optim;

    fn small_graph() -> QrpGraph {
        let mut cfg = nyc_mini(0.12);
        cfg.days = 10;
        let (ds, _) = generate_dataset(cfg);
        let tree = QuadTree::build(
            ds.region,
            &ds.poi_locations(),
            QuadTreeConfig {
                max_depth: 5,
                leaf_capacity: 10,
            },
        );
        let leaves = tree.leaves();
        let mut road = BTreeSet::new();
        for w in leaves.windows(2) {
            road.insert((w[0].min(w[1]), w[0].max(w[1])));
        }
        let visits: Vec<Visit> = ds.users[0]
            .trajectories
            .iter()
            .flat_map(|t| t.visits.iter().copied())
            .collect();
        build_qrp(&tree, &road, &visits, &ds, QrpOptions::default())
    }

    #[test]
    fn forward_shape_and_bounds() {
        let g = small_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = HgatLayer::new(&mut rng, 8, 8);
        let h = init::normal(&mut rng, 0.0, 1.0, vec![g.num_nodes(), 8]);
        let out = layer.forward(&g, &h);
        assert_eq!(out.rows(), g.num_nodes());
        assert_eq!(out.cols(), 8);
        for v in out.to_vec() {
            assert!((-1.0..=1.0).contains(&v), "tanh output out of range: {v}");
        }
    }

    #[test]
    fn gradients_flow_to_all_param_groups() {
        let g = small_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let layer = HgatLayer::new(&mut rng, 6, 6);
        let h = init::normal(&mut rng, 0.0, 1.0, vec![g.num_nodes(), 6]);
        let loss = layer.forward(&g, &h).square().sum_all();
        loss.backward();
        let with_grad = layer
            .params()
            .iter()
            .filter(|p| p.grad().iter().any(|x| x.abs() > 0.0))
            .count();
        // Self weight + at least the type weights of edge types present.
        assert!(with_grad >= 4, "only {with_grad} params received gradient");
    }

    #[test]
    fn stack_runs_multiple_layers() {
        let g = small_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let net = Hgat::new(&mut rng, 8, 2);
        let h = init::normal(&mut rng, 0.0, 1.0, vec![g.num_nodes(), 8]);
        let out = net.forward(&g, &h);
        assert_eq!(out.rows(), g.num_nodes());
        assert_eq!(net.params().len(), 2 * (3 + 3 + 3 + 1));
    }

    #[test]
    fn information_propagates_along_edges() {
        // Perturbing one node's input must change its neighbours' outputs.
        let g = small_graph();
        // Find a node with at least one neighbour of any type.
        let (node, neighbor) = (0..g.num_nodes())
            .find_map(|i| {
                EdgeType::ALL
                    .iter()
                    .find_map(|&t| g.neighbors(t, i).first().map(|&j| (i, j)))
            })
            .expect("graph has at least one edge");
        let mut rng = StdRng::seed_from_u64(6);
        let layer = HgatLayer::new(&mut rng, 4, 4);
        let base = init::normal(&mut rng, 0.0, 1.0, vec![g.num_nodes(), 4]);
        let out_a = layer.forward(&g, &base).to_vec();
        // Perturb `node`'s features.
        let mut data = base.to_vec();
        for c in 0..4 {
            data[node * 4 + c] += 3.0;
        }
        let perturbed = Tensor::from_vec(data, vec![g.num_nodes(), 4]);
        let out_b = layer.forward(&g, &perturbed).to_vec();
        let diff: f32 = (0..4)
            .map(|c| (out_a[neighbor * 4 + c] - out_b[neighbor * 4 + c]).abs())
            .sum();
        assert!(
            diff > 1e-6,
            "neighbour output unchanged — no message passing"
        );
    }

    #[test]
    fn learns_to_match_targets() {
        // Tiny optimisation sanity: HGAT output can fit random targets.
        let g = small_graph();
        let mut rng = StdRng::seed_from_u64(7);
        let layer = HgatLayer::new(&mut rng, 4, 4);
        let h = init::normal(&mut rng, 0.0, 0.5, vec![g.num_nodes(), 4]).detach();
        let target = init::normal(&mut rng, 0.0, 0.5, vec![g.num_nodes(), 4]).detach();
        let params = layer.params();
        let mut opt = optim::Adam::new(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            optim::zero_grad(&params);
            let loss = layer.forward(&g, &h).sub(&target).square().mean_all();
            last = loss.item();
            first.get_or_insert(last);
            loss.backward();
            opt.step(&params);
        }
        let first = first.expect("ran at least one step");
        assert!(
            last < first * 0.9,
            "loss did not decrease: {first} → {last}"
        );
    }
}
