//! Property tests for QR-P graph construction over randomised trajectories
//! and road adjacencies.

use std::collections::{BTreeSet, HashSet};

use proptest::prelude::*;
use tspn_data::{CategoryId, LbsnDataset, Poi, PoiId, UserId, Visit};
use tspn_geo::{BBox, GeoPoint, NodeId, QuadTree, QuadTreeConfig};
use tspn_graph::{build_qrp, EdgeType, QrpNode, QrpOptions};

fn dataset_with_pois(locs: &[(f64, f64)]) -> LbsnDataset {
    let region = BBox::new(0.0, 0.0, 1.0, 1.0);
    let pois: Vec<Poi> = locs
        .iter()
        .enumerate()
        .map(|(i, &(lat, lon))| Poi {
            id: PoiId(i),
            loc: GeoPoint::new(lat, lon),
            cate: CategoryId(i % 5),
        })
        .collect();
    LbsnDataset {
        name: "prop".into(),
        region,
        pois,
        num_categories: 5,
        users: vec![tspn_data::UserHistory {
            user: UserId(0),
            trajectories: Vec::new(),
        }],
    }
}

fn arb_world() -> impl Strategy<Value = (Vec<(f64, f64)>, Vec<usize>, u64)> {
    (
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..60),
        proptest::collection::vec(0usize..1000, 2..40),
        any::<u64>(),
    )
        .prop_map(|(locs, visit_raw, seed)| (locs, visit_raw, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn qrp_structure_invariants((locs, visit_raw, seed) in arb_world()) {
        let ds = dataset_with_pois(&locs);
        let tree = QuadTree::build(
            ds.region,
            &ds.poi_locations(),
            QuadTreeConfig { max_depth: 6, leaf_capacity: 4 },
        );
        // Random road adjacency among leaves.
        let leaves = tree.leaves();
        let mut road: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut x = seed | 1;
        for _ in 0..leaves.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = leaves[(x as usize >> 3) % leaves.len()];
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = leaves[(x as usize >> 3) % leaves.len()];
            if a != b {
                road.insert((a.min(b), a.max(b)));
            }
        }
        let visits: Vec<Visit> = visit_raw
            .iter()
            .enumerate()
            .map(|(i, &r)| Visit { poi: PoiId(r % locs.len()), time: i as i64 * 3600 })
            .collect();
        let g = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());

        // 1. POI nodes = distinct visited POIs.
        let distinct: HashSet<PoiId> = visits.iter().map(|v| v.poi).collect();
        prop_assert_eq!(g.poi_nodes().count(), distinct.len());

        // 2. Exactly one contain edge per POI node, landing on its leaf.
        for (i, p) in g.poi_nodes() {
            let n = g.neighbors(EdgeType::Contain, i);
            prop_assert_eq!(n.len(), 1);
            match g.nodes[n[0]] {
                QrpNode::Tile(t) => {
                    prop_assert_eq!(t, tree.leaf_for(&ds.poi_loc(p)));
                }
                QrpNode::Poi(_) => prop_assert!(false, "contain edge must reach a tile"),
            }
        }

        // 3. Branch edges form a spanning tree of the tile nodes.
        let tiles = g.tile_nodes().count();
        prop_assert_eq!(g.num_edges(EdgeType::Branch), tiles.saturating_sub(1));

        // 4. Road edges only between leaf tiles that are road-adjacent.
        for (i, t) in g.tile_nodes() {
            for &j in g.neighbors(EdgeType::Road, i) {
                match g.nodes[j] {
                    QrpNode::Tile(o) => {
                        let key = (t.min(o), t.max(o));
                        prop_assert!(road.contains(&key), "road edge not in adjacency");
                    }
                    QrpNode::Poi(_) => prop_assert!(false, "road edge to POI"),
                }
            }
        }

        // 5. Adjacency symmetry for every edge type.
        for ty in EdgeType::ALL {
            for i in 0..g.num_nodes() {
                for &j in g.neighbors(ty, i) {
                    prop_assert!(
                        g.neighbors(ty, j).contains(&i),
                        "edge {:?} {}→{} not symmetric", ty, i, j
                    );
                }
            }
        }
    }

    #[test]
    fn visit_order_does_not_change_structure((locs, visit_raw, _seed) in arb_world()) {
        let ds = dataset_with_pois(&locs);
        let tree = QuadTree::build(
            ds.region,
            &ds.poi_locations(),
            QuadTreeConfig { max_depth: 5, leaf_capacity: 4 },
        );
        let road = BTreeSet::new();
        let visits: Vec<Visit> = visit_raw
            .iter()
            .enumerate()
            .map(|(i, &r)| Visit { poi: PoiId(r % locs.len()), time: i as i64 })
            .collect();
        let mut reversed = visits.clone();
        reversed.reverse();
        for (i, v) in reversed.iter_mut().enumerate() {
            v.time = i as i64; // keep times sorted
        }
        let a = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());
        let b = build_qrp(&tree, &road, &reversed, &ds, QrpOptions::default());
        prop_assert_eq!(a.num_nodes(), b.num_nodes());
        prop_assert_eq!(
            a.num_edges(EdgeType::Contain),
            b.num_edges(EdgeType::Contain)
        );
        prop_assert_eq!(a.num_edges(EdgeType::Branch), b.num_edges(EdgeType::Branch));
    }
}
