//! Cross-process bitwise-determinism regression test for QR-P construction.
//!
//! Every process seeds `std::collections` hashing differently (SipHash with
//! a per-process random key), so any hash-order iteration that leaks into
//! the QR-P graph shows up as two processes disagreeing on the serialized
//! graph. PR 10 moved the road-adjacency plumbing to `BTreeSet` exactly to
//! close that hole; this test spawns the test binary twice as child
//! processes, has each build and serialize the same graph, and asserts the
//! two outputs are byte-for-byte identical.
//!
//! `tspn-lint`'s `hash-order` rule catches reintroductions statically; this
//! is the dynamic backstop for iteration orders the lexer heuristics miss.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::process::Command;

use tspn_data::{CategoryId, LbsnDataset, Poi, PoiId, UserId, Visit};
use tspn_geo::{BBox, GeoPoint, NodeId, QuadTree, QuadTreeConfig};
use tspn_graph::{build_qrp, EdgeType, QrpNode, QrpOptions};

const CHILD_OUT_ENV: &str = "TSPN_XPROC_OUT";

fn fixture_dataset() -> LbsnDataset {
    // Deterministic LCG world: same bits in every process.
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let pois: Vec<Poi> = (0..48)
        .map(|i| Poi {
            id: PoiId(i),
            loc: GeoPoint::new(next(), next()),
            cate: CategoryId(i % 7),
        })
        .collect();
    LbsnDataset {
        name: "xproc".into(),
        region: BBox::new(0.0, 0.0, 1.0, 1.0),
        pois,
        num_categories: 7,
        users: vec![tspn_data::UserHistory {
            user: UserId(0),
            trajectories: Vec::new(),
        }],
    }
}

/// Builds the fixture graph and serializes it canonically: node table in
/// dense-index order, then each edge family's adjacency in index order.
fn serialized_graph() -> String {
    let ds = fixture_dataset();
    let tree = QuadTree::build(
        ds.region,
        &ds.poi_locations(),
        QuadTreeConfig {
            max_depth: 6,
            leaf_capacity: 4,
        },
    );
    let leaves = tree.leaves();
    let mut road: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut x = 0xdeadbeefu64 | 1;
    for _ in 0..(leaves.len() * 2) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = leaves[(x as usize >> 3) % leaves.len()];
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = leaves[(x as usize >> 3) % leaves.len()];
        if a != b {
            road.insert((a.min(b), a.max(b)));
        }
    }
    let visits: Vec<Visit> = (0..30)
        .map(|i| Visit {
            poi: PoiId((i * 17 + 5) % 48),
            time: i as i64 * 1800,
        })
        .collect();
    let g = build_qrp(&tree, &road, &visits, &ds, QrpOptions::default());

    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.num_nodes());
    for (i, id) in g.tile_nodes() {
        let _ = writeln!(out, "tile {} {}", i, id.0);
    }
    for (i, p) in g.poi_nodes() {
        let _ = writeln!(out, "poi {} {}", i, p.0);
    }
    for ty in EdgeType::ALL {
        let _ = writeln!(out, "edges {:?} {}", ty, g.num_edges(ty));
        for i in 0..g.num_nodes() {
            let ns = g.neighbors(ty, i);
            if !ns.is_empty() {
                let strs: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
                let _ = writeln!(out, "adj {:?} {} {}", ty, i, strs.join(","));
            }
        }
    }
    // Exercise index lookups too — they route through a HashMap whose
    // *lookups* are order-free; this line only moves if the node table does.
    let probe = g.index_of(QrpNode::Poi(PoiId(5)));
    let _ = writeln!(out, "probe {:?}", probe);
    out
}

/// Child mode: invoked by the parent test below in a fresh process (fresh
/// SipHash key). Writes the serialized graph to the path in `TSPN_XPROC_OUT`.
/// A no-op when run as part of the ordinary test sweep.
#[test]
fn child_emit() {
    let Ok(path) = std::env::var(CHILD_OUT_ENV) else {
        return;
    };
    std::fs::write(&path, serialized_graph()).expect("write child output");
}

#[test]
fn qrp_graph_is_bitwise_identical_across_processes() {
    // Guard against recursing when this test runs inside a child.
    if std::env::var(CHILD_OUT_ENV).is_ok() {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir();
    let outputs: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            let path = dir.join(format!("tspn_xproc_qrp_{}_{}.txt", std::process::id(), i));
            let status = Command::new(&exe)
                .args(["child_emit", "--exact", "--test-threads=1"])
                .env(CHILD_OUT_ENV, &path)
                .status()
                .expect("spawn child test process");
            assert!(status.success(), "child process {i} failed: {status}");
            let bytes = std::fs::read(&path).expect("child output written");
            let _ = std::fs::remove_file(&path);
            bytes
        })
        .collect();
    assert!(
        !outputs[0].is_empty(),
        "child produced an empty serialization"
    );
    assert_eq!(
        outputs[0], outputs[1],
        "QR-P serialization differs across processes — a hash-seeded \
         iteration order is leaking into graph construction"
    );
    // The in-process build must agree with the children as well.
    assert_eq!(serialized_graph().into_bytes(), outputs[0]);
}
